"""Benchmark bootstrap: import path, shared fixtures, and report printing.

Each benchmark regenerates one table/figure of the paper and registers a
formatted report; the reports are printed in the terminal summary so
``pytest benchmarks/ --benchmark-only`` shows the regenerated rows next to
pytest-benchmark's timing table.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

_REPORTS = []
_RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def register_report(title: str, body: str) -> None:
    """Queue a table for the end-of-run summary and persist it to disk.

    Each table is also written to ``benchmarks/results/<slug>.txt`` so the
    regenerated rows survive the pytest session (EXPERIMENTS.md quotes
    them).
    """
    _REPORTS.append((title, body))
    _RESULTS_DIR.mkdir(exist_ok=True)
    head = title.split("(")[0].strip().lower()
    slug = "-".join("".join(c if c.isalnum() else " " for c in head).split())[:60]
    (_RESULTS_DIR / f"{slug}.txt").write_text(f"{title}\n\n{body}\n")


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "regenerated paper tables & figures")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in body.splitlines():
            terminalreporter.write_line(line)
