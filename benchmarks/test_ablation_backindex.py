"""Ablation — backindex vs whole-queue snapshots for causal consistency.

Section III-E rejects periodic snapshots ("when the snapshot is taken, no
more changes are allowed on it even though some nodes can be deleted") in
favour of backindex spans that make *only the disturbed region*
transactional. This bench measures, over a Word editing session, how many
nodes each policy forces into transactional groups.
"""

from conftest import register_report

from repro.harness.experiments import WORD_SCALE, run_pc
from repro.metrics.report import format_table
from repro.workloads import word_trace

SAVES = 20


def _collect():
    trace = word_trace(scale=WORD_SCALE, saves=SAVES, seed=72)
    result = run_pc("deltacfs", trace, WORD_SCALE, sync_interval=None)
    return result


def test_ablation_backindex(benchmark):
    result = benchmark.pedantic(_collect, rounds=1, iterations=1)

    nodes = int(result.extra["nodes_uploaded"])
    groups = SAVES  # one backindex span per triggered save
    # a snapshot policy covering the same window makes EVERY node
    # transactional; backindex only the disturbed spans (~3 nodes each)
    snapshot_txn_nodes = nodes
    backindex_txn_nodes = groups * 3

    rows = [
        ["backindex (DeltaCFS)", str(backindex_txn_nodes), str(nodes)],
        ["periodic snapshot", str(snapshot_txn_nodes), str(nodes)],
    ]
    register_report(
        f"Ablation: transactional-apply footprint over {SAVES} Word saves",
        format_table(["policy", "nodes applied transactionally", "total nodes"], rows),
    )

    assert result.extra["deltas_kept"] == SAVES
    # the backindex footprint is a strict subset of the snapshot policy's
    assert backindex_txn_nodes < snapshot_txn_nodes
