"""Ablation — bitwise comparison vs MD5 strong checksums in local rsync.

The paper's core rsync optimization (Section III-A): with both file
versions local, candidate matches are confirmed by memcmp instead of MD5.
This bench isolates that choice on a Word-sized editing step and reports
the CPU split.
"""

from conftest import register_report

from repro.common.rng import DeterministicRandom
from repro.cost.meter import CostMeter
from repro.delta.bitwise import bitwise_delta
from repro.delta.patch import apply_delta
from repro.delta.rsync import rsync_delta
from repro.metrics.report import format_table

FILE_SIZE = 2 * 1024 * 1024
BLOCK = 4096


def _files():
    rng = DeterministicRandom(77)
    old = rng.random_bytes(FILE_SIZE)
    new = old[: FILE_SIZE // 3] + rng.random_bytes(2048) + old[FILE_SIZE // 3 + 1024 :]
    return old, new


def _collect():
    old, new = _files()
    strong_meter = CostMeter()
    strong_delta = rsync_delta(old, new, BLOCK, meter=strong_meter, remote=True)
    bitwise_meter = CostMeter()
    local_delta = bitwise_delta(old, new, BLOCK, meter=bitwise_meter)
    assert apply_delta(old, strong_delta) == new
    assert apply_delta(old, local_delta) == new
    return strong_meter, bitwise_meter, strong_delta, local_delta


def test_ablation_bitwise(benchmark):
    strong_meter, bitwise_meter, strong_delta, local_delta = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )

    rows = [
        ["MD5-confirmed rsync", f"{strong_meter.total:.2f}",
         f"{strong_meter.by_category.get('strong_checksum', 0):.2f}",
         f"{strong_meter.by_category.get('bitwise_compare', 0):.2f}"],
        ["bitwise rsync (DeltaCFS)", f"{bitwise_meter.total:.2f}",
         f"{bitwise_meter.by_category.get('strong_checksum', 0):.2f}",
         f"{bitwise_meter.by_category.get('bitwise_compare', 0):.2f}"],
    ]
    register_report(
        "Ablation: bitwise vs MD5 match confirmation (2MB file, 1 edit)",
        format_table(["variant", "total ticks", "md5 ticks", "memcmp ticks"], rows),
    )

    # identical network result...
    assert local_delta.literal_bytes == strong_delta.literal_bytes
    # ...at a fraction of the CPU
    assert bitwise_meter.total < 0.5 * strong_meter.total
    assert bitwise_meter.by_category.get("strong_checksum", 0) == 0
