"""Ablation — NFS-like RPC vs delta encoding as write size sweeps.

The paper's footnote 3: "The delta is at least one data block (e.g., 4KB
in rsync) even though only 1 byte is modified" — so for sub-block writes,
shipping the raw write beats delta encoding, and above block size the two
converge. This sweep locates the crossover.
"""

from conftest import register_report

from repro.common.rng import DeterministicRandom
from repro.delta.bitwise import bitwise_delta
from repro.metrics.report import format_table
from repro.net.messages import UploadDelta, UploadWrite

FILE_SIZE = 512 * 1024
BLOCK = 4096
SIZES = [64, 256, 1024, 4096, 16384, 65536]


def _collect():
    rng = DeterministicRandom(73)
    base = rng.random_bytes(FILE_SIZE)
    rows = []
    for size in SIZES:
        offset = (FILE_SIZE // 2) + 13  # deliberately unaligned
        payload = rng.random_bytes(size)
        new = base[:offset] + payload + base[offset + size :]

        rpc_bytes = UploadWrite(path="/f", offset=offset, data=payload).wire_size()
        delta = bitwise_delta(base, new, BLOCK)
        delta_bytes = UploadDelta(path="/f", delta=delta).wire_size()
        rows.append((size, rpc_bytes, delta_bytes))
    return rows


def test_ablation_crossover(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    register_report(
        "Ablation: RPC vs delta wire bytes by write size (4KB blocks)",
        format_table(
            ["write size", "RPC bytes", "delta bytes", "winner"],
            [
                [s, r, d, "RPC" if r <= d else "delta"]
                for s, r, d in rows
            ],
        ),
    )

    by_size = {s: (r, d) for s, r, d in rows}
    # below the block size, RPC wins decisively
    for size in (64, 256, 1024):
        rpc, delta = by_size[size]
        assert rpc < delta, size
    # a sub-block write costs the delta path a whole block (+ a spare for
    # the unaligned spill), i.e. delta bytes ~ 2 blocks for a 64B write
    rpc64, delta64 = by_size[64]
    assert delta64 >= BLOCK
    # by 16x the block size the two are within 25%
    rpc_big, delta_big = by_size[65536]
    assert abs(rpc_big - delta_big) < 0.25 * rpc_big
