"""Ablation — relation-triggered vs event-triggered delta encoding.

The paper attributes much of Dropbox's Word-trace CPU to its trigger:
"its delta encoding is triggered by file modification events (i.e.,
inotify) which occurs much more frequently than our relation triggered
delta encoding." This bench counts encoding runs and CPU for both trigger
policies on the same Word trace.
"""

from conftest import register_report

from repro.harness.experiments import WORD_SCALE, run_pc
from repro.metrics.report import format_table
from repro.workloads import word_trace

SAVES = 30


def _collect():
    trace = word_trace(scale=WORD_SCALE, saves=SAVES, seed=70)
    deltacfs = run_pc("deltacfs", trace, WORD_SCALE, sync_interval=None)
    dropbox = run_pc("dropbox", trace, WORD_SCALE, sync_interval=None)
    return deltacfs, dropbox


def test_ablation_trigger(benchmark):
    deltacfs, dropbox = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            "relation-triggered (DeltaCFS)",
            str(int(deltacfs.extra["deltas_triggered"])),
            f"{deltacfs.client_ticks:.1f}",
        ],
        [
            "event-triggered (Dropbox-style)",
            str(int(dropbox.extra["sync_rounds"])),
            f"{dropbox.client_ticks:.1f}",
        ],
    ]
    register_report(
        f"Ablation: delta-encoding trigger policy ({SAVES} Word saves)",
        format_table(["policy", "encoding runs", "client ticks"], rows),
    )

    # relation trigger fires exactly once per save; events fire far more
    assert deltacfs.extra["deltas_triggered"] == SAVES
    assert dropbox.extra["sync_rounds"] > 1.5 * SAVES
    assert deltacfs.client_ticks < dropbox.client_ticks
