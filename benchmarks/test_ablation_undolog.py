"""Ablation — undo-log-assisted local delta for large in-place updates.

Section III-A's extension: when an in-place update rewrites more than half
the file with mostly-unchanged data, the undo log lets delta encoding run
locally and compress the upload. This bench compares traffic with the undo
log on versus off for such a workload.
"""

from conftest import register_report

from repro.common.clock import VirtualClock
from repro.common.config import DeltaCFSConfig
from repro.common.rng import DeterministicRandom
from repro.core.client import DeltaCFSClient
from repro.metrics.report import format_bytes, format_table
from repro.net.transport import Channel
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import MemoryFileSystem

FILE_SIZE = 2 * 1024 * 1024


def _run(enable_undo: bool):
    clock = VirtualClock()
    server = CloudServer()
    channel = Channel()
    client = DeltaCFSClient(
        MemoryFileSystem(),
        server=server,
        channel=channel,
        clock=clock,
        config=DeltaCFSConfig(enable_undo_log=enable_undo),
    )
    rng = DeterministicRandom(71)
    base = rng.random_bytes(FILE_SIZE)
    client.create("/db")
    client.write("/db", 0, base)
    client.close("/db")
    for _ in range(6):
        clock.advance(1.0)
        client.pump()
    client.flush()
    measured_from = channel.stats.up_bytes

    # the "checkpoint rewrite": 80% of the file re-written, 1% truly new
    region = bytearray(base[: int(FILE_SIZE * 0.8)])
    for pos in range(0, len(region), len(region) // 16):
        region[pos : pos + 512] = rng.random_bytes(512)
    client.write("/db", 0, bytes(region))
    client.close("/db")
    for _ in range(6):
        clock.advance(1.0)
        client.pump()
    client.flush()
    assert server.file_content("/db") == bytes(region) + base[len(region):]
    return channel.stats.up_bytes - measured_from, client.stats.inplace_deltas


def _collect():
    return _run(True), _run(False)


def test_ablation_undolog(benchmark):
    (with_undo, deltas_on), (without_undo, deltas_off) = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )

    rows = [
        ["undo log ON", format_bytes(with_undo), str(deltas_on)],
        ["undo log OFF", format_bytes(without_undo), str(deltas_off)],
    ]
    register_report(
        "Ablation: undo-log local delta for a 80%-rewrite in-place update",
        format_table(["variant", "upload", "in-place deltas"], rows),
    )

    assert deltas_on == 1 and deltas_off == 0
    assert with_undo < 0.5 * without_undo
