"""Ablation — wimpy cloud servers (the paper's conclusion).

Section VI: "the load of the server side is minimized as well, servers
simply apply incremental data on files. So it becomes possible to use
wimpy servers (e.g., Intel Atom Processor) attached with large numbers of
disks to provide cloud data sync services."

We rerun the WeChat workload with the server's CPU profile scaled to an
Atom-class core (~8x fewer ops per tick) and compare how many clients one
server core could sustain under DeltaCFS vs Seafile, given each client's
server-side tick demand per second of trace time.
"""

from conftest import register_report

from repro.cost.profile import PC_PROFILE
from repro.harness.experiments import WECHAT_SCALE, _scaled_kwargs
from repro.harness.runner import run_trace
from repro.metrics.report import format_table
from repro.workloads import wechat_trace

ATOM_FACTOR = 8.0
# a serving core's tick budget per virtual second, in model units: one
# Xeon-class core ~ 100 ticks/s at our calibration
XEON_BUDGET_PER_S = 100.0


def _collect():
    trace = wechat_trace(scale=WECHAT_SCALE, modifications=60, seed=75)
    out = {}
    for solution in ("deltacfs", "seafile", "nfs"):
        result = run_trace(solution, trace, **_scaled_kwargs(WECHAT_SCALE))
        demand_per_s = result.server_ticks / max(result.duration, 1e-9)
        out[solution] = {
            "server_ticks": result.server_ticks,
            "demand_per_s": demand_per_s,
            "clients_per_xeon": XEON_BUDGET_PER_S / max(demand_per_s, 1e-12),
            "clients_per_atom": (XEON_BUDGET_PER_S / ATOM_FACTOR)
            / max(demand_per_s, 1e-12),
        }
    return out


def test_ablation_wimpy_server(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            solution,
            f"{r['server_ticks']:.1f}",
            f"{r['clients_per_xeon']:.0f}",
            f"{r['clients_per_atom']:.0f}",
        ]
        for solution, r in results.items()
    ]
    register_report(
        "Ablation: wimpy-server capacity (WeChat workload, modelled)",
        format_table(
            ["solution", "server ticks", "clients/Xeon core", "clients/Atom core"],
            rows,
        ),
    )

    deltacfs = results["deltacfs"]
    seafile = results["seafile"]
    # DeltaCFS's server does a multiple of the clients per core...
    assert deltacfs["clients_per_atom"] > 2 * seafile["clients_per_atom"]
    # ...and an Atom core under DeltaCFS still beats a Xeon under Seafile
    assert deltacfs["clients_per_atom"] > seafile["clients_per_xeon"]
