"""Fleet-scaling bench: server work as the client count grows.

Quantifies the paper's Section VI claim ("servers simply apply incremental
data on files", enabling wimpy hardware): per-client server demand must be
flat as the fleet grows — the server does no per-client delta computation,
only increment application.
"""

from conftest import register_report

from repro.harness.capacity import run_capacity
from repro.metrics.report import format_bytes, format_table

FLEETS = (1, 4, 16)


def _collect():
    return {
        n: run_capacity(n, writes_per_client=10, file_size=128 * 1024)
        for n in FLEETS
    }


def test_capacity_scaling(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            n,
            f"{r.server_ticks:.2f}",
            f"{r.server_ticks_per_client:.3f}",
            format_bytes(r.total_up_bytes),
        ]
        for n, r in results.items()
    ]
    register_report(
        "Fleet scaling: DeltaCFS server work vs client count",
        format_table(
            ["clients", "server ticks", "ticks/client", "total upload"], rows
        ),
    )

    per_client = [r.server_ticks_per_client for r in results.values()]
    assert max(per_client) < 1.3 * min(per_client)  # linear scaling
    assert results[16].server_ticks < 16 * 1.3 * results[1].server_ticks
