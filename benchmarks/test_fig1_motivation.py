"""Figure 1 — the motivating experiment: client resource consumption.

A 12 MB Word document saved 23 times and a chat-history SQLite database
modified 4 times (dozens of page writes), synced by Dropbox and Seafile.
Reports client CPU, traffic, and disk reads.

Shape assertions (Section I / II-A):
- on the SQLite workload, Dropbox burns far more CPU than Seafile (rsync
  re-scans the whole database per change) but transmits far less (4KB
  blocks vs 1MB chunks);
- both systems read the whole file per sync round ("Dropbox issues over
  700MB data read in that test" against a 130MB database) — read volume is
  a large multiple of the database size;
- on the Word workload both burn CPU; Seafile ships more bytes.
"""

from conftest import register_report

from repro.harness.experiments import fig1_motivation
from repro.metrics.report import format_bytes, format_table


def _collect():
    return fig1_motivation(fast=False)


def test_fig1(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            r.trace,
            r.solution,
            f"{r.client_ticks:.1f}",
            format_bytes(r.up_bytes),
            format_bytes(r.extra["read_bytes"]),
        ]
        for r in results
    ]
    register_report(
        "Figure 1: motivation — client CPU / upload / disk reads",
        format_table(["workload", "solution", "cpu", "upload", "reads"], rows),
    )
    by_key = {(r.trace, r.solution): r for r in results}

    # SQLite workload: Dropbox CPU >> Seafile CPU; Dropbox traffic << Seafile
    chat_dropbox = by_key[("wechat", "dropbox")]
    chat_seafile = by_key[("wechat", "seafile")]
    assert chat_dropbox.client_ticks > 1.5 * chat_seafile.client_ticks
    assert chat_dropbox.up_bytes < 0.5 * chat_seafile.up_bytes

    # the IO observation: reads are a multiple of the database size
    db_size = 131 * 1024 * 1024 // 16  # WECHAT_SCALE
    assert chat_dropbox.extra["read_bytes"] > 2 * db_size

    # Word workload: Seafile ships more than Dropbox
    word_dropbox = by_key[("word", "dropbox")]
    word_seafile = by_key[("word", "seafile")]
    assert word_seafile.up_bytes > 0.8 * word_dropbox.up_bytes
    assert word_dropbox.client_ticks > 0

    # the CPU timeline is spiky: activity concentrates in save windows
    # ("the frequent spikes in CPU usage keep the device staying in high
    # power-consumption mode")
    timeline = word_dropbox.extra["cpu_timeline"]
    assert len(timeline) > 5
    active = word_dropbox.extra["cpu_active_windows"]
    assert 0 < active < len(timeline)  # bursts, not a flat line
    peak = max(timeline)
    mean = sum(timeline) / len(timeline)
    assert peak > 2 * mean  # pronounced spikes
