"""Figure 2 — WeChat synced through Dropsync on a mobile device.

Replays the WeChat trace through the full-upload client on the mobile
network/CPU profiles and reports total traffic, TUE (Traffic Usage
Efficiency = total sync traffic / data update size), CPU, and the
cumulative-upload timeline.

Shape assertions:
- TUE is terrible (the paper's Figure 2 shows the traffic dwarfing the
  update size — whole-database uploads for message-sized changes);
- the client stays busy: CPU per update byte is orders of magnitude above
  DeltaCFS's on the same workload.
"""

from conftest import register_report

from repro.harness.experiments import (
    WECHAT_SCALE,
    fig2_dropsync_mobile,
    run_mobile,
)
from repro.metrics.report import format_bytes, format_table
from repro.workloads import wechat_trace


def _collect():
    return fig2_dropsync_mobile(fast=False)


def test_fig2(benchmark):
    result = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        ["total sync traffic", format_bytes(result.total_traffic)],
        ["data update size", format_bytes(result.update_bytes)],
        ["TUE", f"{result.tue:.1f}"],
        ["client CPU ticks", f"{result.cpu_ticks:.1f}"],
        ["timeline samples", str(len(result.traffic_timeline))],
    ]
    register_report("Figure 2: WeChat via Dropsync on mobile", format_table(["metric", "value"], rows))

    # TUE far above 1: the abuse the paper opens with
    assert result.tue > 20

    # cumulative upload is monotone (sanity of the timeline series)
    values = [v for _, v in result.traffic_timeline]
    assert values == sorted(values)

    # DeltaCFS on the same workload: TUE near 1
    trace = wechat_trace(scale=WECHAT_SCALE, modifications=120, seed=32)
    deltacfs = run_mobile("deltacfs", trace, WECHAT_SCALE)
    assert deltacfs.tue < 3
    assert result.cpu_ticks > 5 * deltacfs.client_ticks
