"""Figure 8 — network transmission of experiments on PC.

Regenerates the four subplots (append, random, Word, WeChat): upload and
download bytes per solution.

Shape assertions (paper's findings):
- append: Dropbox, NFSv4, DeltaCFS similar; Seafile clearly higher;
- random: DeltaCFS ~ NFS ~ logical update; Dropbox above them (4KB block
  granularity); Seafile enormous (1MB chunks);
- Word: DeltaCFS << Dropbox < Seafile < NFS, and NFS downloads about as
  much as it uploads (cache invalidation);
- WeChat: DeltaCFS ~ NFS (slightly higher: version overhead); Dropbox low
  (dedup works, no shift); Seafile enormous; NFS has some download traffic
  (fetch-before-write).
"""

from conftest import register_report

from repro.harness.experiments import fig8_network_pc
from repro.metrics.report import format_bytes, format_table


def _collect():
    return fig8_network_pc(fast=False)


def test_fig8(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [r.trace, r.solution, format_bytes(r.up_bytes), format_bytes(r.down_bytes)]
        for r in results
    ]
    register_report(
        "Figure 8: network transmission on PC (upload / download)",
        format_table(["trace", "solution", "upload", "download"], rows),
    )
    by_key = {(r.trace, r.solution): r for r in results}

    # append: all within 2x of each other except Seafile above
    append = {s: by_key[("append_write", s)] for s in ("dropbox", "seafile", "nfs", "deltacfs")}
    assert append["seafile"].up_bytes > 1.4 * append["deltacfs"].up_bytes
    assert append["dropbox"].up_bytes < 2 * append["deltacfs"].up_bytes
    assert abs(append["nfs"].up_bytes - append["deltacfs"].up_bytes) < 0.2 * append["deltacfs"].up_bytes

    # random: deltacfs ~ nfs ~ update size; dropbox above; seafile >> all
    random = {s: by_key[("random_write", s)] for s in ("dropbox", "seafile", "nfs", "deltacfs")}
    update = random["deltacfs"].update_bytes
    assert random["deltacfs"].up_bytes < 1.5 * update
    assert random["dropbox"].up_bytes > 2 * random["deltacfs"].up_bytes
    assert random["seafile"].up_bytes > 50 * random["deltacfs"].up_bytes

    # word: DeltaCFS << Dropbox < Seafile < NFS; NFS downloads ~ uploads
    word = {s: by_key[("word", s)] for s in ("dropbox", "seafile", "nfs", "deltacfs")}
    assert word["deltacfs"].up_bytes < 0.35 * word["dropbox"].up_bytes
    assert word["dropbox"].up_bytes < word["seafile"].up_bytes
    assert word["seafile"].up_bytes < word["nfs"].up_bytes
    assert word["nfs"].down_bytes > 0.8 * word["nfs"].up_bytes
    assert word["deltacfs"].down_bytes < 0.01 * word["deltacfs"].up_bytes

    # wechat: deltacfs ~ nfs (slightly above); seafile enormous;
    # dropbox below nfs (dedup + compression work; no data shift)
    wechat = {s: by_key[("wechat", s)] for s in ("dropbox", "seafile", "nfs", "deltacfs")}
    assert wechat["deltacfs"].up_bytes >= wechat["nfs"].up_bytes * 0.95
    assert wechat["deltacfs"].up_bytes < wechat["nfs"].up_bytes * 1.3
    assert wechat["seafile"].up_bytes > 10 * wechat["deltacfs"].up_bytes
    assert wechat["dropbox"].up_bytes < wechat["nfs"].up_bytes
    assert wechat["nfs"].down_bytes >= 0  # fetch-before-write traffic
