"""Figure 9 — network traffic of experiments on mobile.

Dropsync (full-file upload over a slow WAN) versus DeltaCFS, upload and
download, for the four traces.

Shape assertions:
- Dropsync's upload dwarfs DeltaCFS on every trace (whole-file uploads);
- DeltaCFS's mobile traffic matches its PC traffic ("DeltaCFS shows
  similar numbers on mobile to that on PC");
- download traffic is small for both; DeltaCFS has almost none.
"""

from conftest import register_report

from repro.harness.experiments import bench_traces, fig9_network_mobile, run_pc
from repro.metrics.report import format_bytes, format_table


def _collect():
    return fig9_network_mobile(fast=False)


def test_fig9(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [r.trace, r.solution, format_bytes(r.up_bytes), format_bytes(r.down_bytes)]
        for r in results
    ]
    register_report(
        "Figure 9: network traffic on mobile (upload / download)",
        format_table(["trace", "solution", "upload", "download"], rows),
    )
    by_key = {(r.trace, r.solution): r for r in results}

    for trace in ("append_write", "random_write", "word", "wechat"):
        dropsync = by_key[(trace, "fullsync")]
        deltacfs = by_key[(trace, "deltacfs")]
        assert dropsync.up_bytes > 2 * deltacfs.up_bytes, trace
        # DeltaCFS: almost no download traffic
        assert deltacfs.down_bytes < 0.05 * max(1, deltacfs.up_bytes), trace

    # random write: the gap is extreme (whole 5MB file per 1010B write,
    # modulo link-saturation batching)
    assert (
        by_key[("random_write", "fullsync")].up_bytes
        > 30 * by_key[("random_write", "deltacfs")].up_bytes
    )

    # DeltaCFS mobile ~ DeltaCFS PC (the design goal: nothing about the
    # client's sync behaviour depends on the platform)
    for trace_name, (trace, scale) in bench_traces(fast=False).items():
        pc = run_pc("deltacfs", trace, scale, False)
        mobile = by_key[(trace_name, "deltacfs")]
        assert abs(mobile.up_bytes - pc.up_bytes) < 0.15 * max(pc.up_bytes, 1), trace_name
