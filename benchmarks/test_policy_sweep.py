"""Policy sweep — what mechanism selection buys, bracketed by its bounds.

Runs every benchmark trace under the four sync policies and checks the
acceptance bars of the policy work:

- ``static`` reproduces the fig8 DeltaCFS rows *exactly* (byte- and
  tick-identical) — the refactor is invisible under the default policy;
- ``cost-model`` never pays more uplink than the better of the two
  bounding policies plus 5%;
- the bounds actually bracket: ``always-rpc`` is catastrophic on the
  delta-friendly Word trace.

A second test joins one instrumented cost-model run against the offline
cost attribution (the ISSUE-4 machinery): the attribution reconciles
byte-exactly and the ``policy.*`` telemetry is present.
"""

import json

from conftest import register_report

from repro.common.config import DeltaCFSConfig
from repro.harness.experiments import (
    PC_NETWORK,
    PC_PROFILE,
    SWEEP_POLICIES,
    fig8_network_pc,
    policy_sweep,
)
from repro.harness.runner import run_trace
from repro.metrics.report import format_bytes, format_table
from repro.obs import Observability
from repro.obs.analyze import attribute_uplink, load_trace_lines
from repro.obs.export import snapshot_record
from repro.workloads import word_trace


def _collect():
    return policy_sweep(fast=False)


def test_policy_sweep(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            r.extra["setting"].removeprefix("policy-"),
            r.trace,
            format_bytes(r.up_bytes),
            f"{r.client_ticks:,.0f}",
        ]
        for r in results
    ]
    register_report(
        "Policy sweep: uplink and client CPU by mechanism policy",
        format_table(["policy", "trace", "upload", "client ticks"], rows),
    )

    by_key = {(r.extra["setting"], r.trace): r for r in results}
    traces = sorted({r.trace for r in results})
    assert {r.extra["setting"] for r in results} == {
        f"policy-{p}" for p in SWEEP_POLICIES
    }

    # static == the committed fig8 deltacfs rows, byte- and tick-identical
    fig8 = {r.trace: r for r in fig8_network_pc(fast=False) if r.solution == "deltacfs"}
    for trace in traces:
        static = by_key[("policy-static", trace)]
        assert static.up_bytes == fig8[trace].up_bytes, trace
        assert static.client_ticks == fig8[trace].client_ticks, trace

    # cost-model <= min(bounds) + 5% on every trace, and static <= always-rpc
    for trace in traces:
        cost_model = by_key[("policy-cost-model", trace)].up_bytes
        rpc = by_key[("policy-always-rpc", trace)].up_bytes
        delta = by_key[("policy-always-delta", trace)].up_bytes
        assert cost_model <= min(rpc, delta) * 1.05, trace
        assert by_key[("policy-static", trace)].up_bytes <= rpc, trace

    # the bounds genuinely bracket: Word is where delta sync pays off
    assert (
        by_key[("policy-always-rpc", "word")].up_bytes
        > 5 * by_key[("policy-static", "word")].up_bytes
    )


def test_cost_model_attribution_join():
    # One instrumented cost-model run joined against the offline uplink
    # attribution: every uplink byte lands in a mechanism bucket and the
    # policy telemetry is present in the same trace.
    obs = Observability()
    config = DeltaCFSConfig(enable_checksums=False, sync_policy="cost-model")
    result = run_trace(
        "deltacfs",
        word_trace(scale=8, saves=8),
        profile=PC_PROFILE,
        network=PC_NETWORK,
        config=config,
        obs=obs,
    )
    lines = obs.tracer.to_jsonl().splitlines()
    lines.append(json.dumps(snapshot_record(obs.metrics, obs.clock.now())))
    doc = load_trace_lines(lines)

    attribution = attribute_uplink(doc)
    attribution.reconcile(expected_up_bytes=result.up_bytes)  # byte-exact

    decisions = [
        e for e in doc.point_events() if e.get("name") == "policy.decision"
    ]
    assert decisions, "cost-model run emitted no policy decisions"
    assert all(e["attrs"]["policy"] == "cost-model" for e in decisions)
    # the Word save dance is delta-friendly: the policy must pick the
    # backend (not rpc) at least once, and estimates must be accounted
    assert any(e["attrs"]["mechanism"] != "rpc" for e in decisions)
    snapshot = doc.snapshot["metrics"]
    assert any(k.startswith("policy.estimate.rpc_bytes") for k in snapshot)
    assert any(k.startswith("policy.estimate.delta_bytes") for k in snapshot)
