"""Loss sweep — byte-identical convergence over a faulty link.

Replays the Word trace through DeltaCFS with the reliable transport while
the link drops / duplicates / reorders messages, and checks that the run
still converges byte-identically with zero spurious conflict copies —
the paper's delta-sync savings (Fig. 8/9 shape) must survive packet loss,
paid for only in bounded retransmission overhead.

Set ``RELIABILITY_SMOKE=1`` to run the sweep at reduced scale (the CI
smoke job does).
"""

import os

from conftest import register_report

from repro.harness.reliability import loss_convergence_test
from repro.harness.runner import build_system
from repro.metrics.report import format_bytes, format_table
from repro.workloads.word import word_trace
from repro.workloads.traces import replay

LOSS_POINTS = (0.0, 0.05, 0.10, 0.20)

_SMOKE = os.environ.get("RELIABILITY_SMOKE") == "1"
_SCALE = 128 if _SMOKE else 64
_SAVES = 4 if _SMOKE else 8


def _sweep():
    outcomes = []
    for loss in LOSS_POINTS:
        outcomes.append(
            loss_convergence_test(
                loss,
                dup_rate=loss / 4,
                reorder_rate=loss / 4,
                seed=7,
                saves=_SAVES,
                scale=_SCALE,
            )
        )
    return outcomes


def _fullsync_lossless_up_bytes():
    """Full-upload (Dropsync) uplink bytes, same trace, perfect link."""
    trace = word_trace(scale=_SCALE, saves=_SAVES)
    system = build_system("fullsync")
    for path, content in sorted(trace.preload.items()):
        system.fs.create(path)
        if content:
            system.fs.write(path, 0, content)
        system.fs.close(path)
    for _ in range(12):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()
    system.reset_counters()
    replay(trace, system.fs, system.clock, pump=system.pump)
    for _ in range(10):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()
    return system.channel.stats.up_bytes


def test_loss_sweep(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{o.loss_rate:.0%}",
            "yes" if o.converged else "NO",
            str(o.conflict_copies),
            str(o.retries),
            str(o.dedup_drops),
            format_bytes(o.up_bytes),
            format_bytes(o.down_bytes),
        ]
        for o in outcomes
    ]
    register_report(
        "Loss sweep: DeltaCFS convergence over a lossy link (Word trace)",
        format_table(
            ["loss", "converged", "conflict copies", "retries",
             "dedup drops", "up", "down"],
            rows,
        ),
    )

    for o in outcomes:
        assert o.converged, (
            f"{o.loss_rate:.0%} loss: mismatched={o.mismatched}, "
            f"conflict_copies={o.conflict_copies}"
        )
        assert o.conflict_copies == 0

    lossless = outcomes[0]
    assert lossless.retries == 0
    assert lossless.dedup_drops == 0

    worst = outcomes[-1]
    # Retransmission overhead stays bounded: 20% loss (+5% dup/reorder)
    # must not inflate the uplink past ~2x the lossless run.
    assert worst.up_bytes < 2.0 * lossless.up_bytes

    # Fig. 8 shape preserved: even at 20% loss DeltaCFS's delta uplink
    # undercuts the full-content baseline's lossless uplink on the same
    # trace — loss taxes the deltas, it does not forfeit delta sync.
    fullsync_up = _fullsync_lossless_up_bytes()
    assert worst.up_bytes < fullsync_up
