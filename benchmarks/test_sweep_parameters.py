"""Sensitivity sweeps over DeltaCFS's design parameters.

DESIGN.md calls out three empirically-chosen constants; these sweeps show
the behaviour the paper's choices sit on:

- **relation timeout** (1-3 s, default 2 s): too short and transactional
  updates stop triggering delta encoding (saves take real time); longer
  buys nothing but stale entries.
- **upload delay** (3 s): the coalescing window. Near zero, write nodes
  ship before the rename dance completes and delta replacement finds
  nothing to replace; large delays only add staleness.
- **rsync block size** (4 KB): small blocks shrink deltas but multiply
  per-block work; the sweep shows the traffic/CPU tradeoff.
"""

from conftest import register_report

from repro.common.clock import VirtualClock
from repro.common.config import DeltaCFSConfig
from repro.core.client import DeltaCFSClient
from repro.cost.meter import CostMeter
from repro.metrics.report import format_bytes, format_table
from repro.net.transport import Channel
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import MemoryFileSystem
from repro.workloads import word_trace
from repro.workloads.traces import replay

SAVES = 10
SCALE = 16


def _run_word(config: DeltaCFSConfig):
    trace = word_trace(scale=SCALE, saves=SAVES, seed=74)
    clock = VirtualClock()
    server = CloudServer()
    meter = CostMeter()
    channel = Channel(client_meter=meter)
    client = DeltaCFSClient(
        MemoryFileSystem(),
        server=server,
        channel=channel,
        clock=clock,
        meter=meter,
        config=config,
    )
    for path, content in trace.preload.items():
        client.create(path)
        client.write(path, 0, content)
        client.close(path)
    for _ in range(8):
        clock.advance(1.0)
        client.pump()
    client.flush()
    channel.stats.up_bytes = 0
    meter.reset()
    replay(trace, client, clock, pump=lambda now: client.pump(now), pump_interval=0.25)
    for _ in range(8):
        clock.advance(1.0)
        client.pump()
    client.flush()
    return channel.stats.up_bytes, meter.total, client.stats.deltas_kept


def _collect_timeout():
    rows = []
    for timeout in (0.2, 0.5, 2.0, 10.0):
        up, ticks, deltas = _run_word(DeltaCFSConfig(relation_timeout=timeout))
        rows.append((timeout, up, ticks, deltas))
    return rows


def _collect_delay():
    rows = []
    for delay in (0.0, 3.0, 10.0):
        up, ticks, deltas = _run_word(DeltaCFSConfig(upload_delay=delay))
        rows.append((delay, up, ticks, deltas))
    return rows


def _collect_block_size():
    rows = []
    for block in (1024, 4096, 16384, 65536):
        up, ticks, deltas = _run_word(DeltaCFSConfig(block_size=block))
        rows.append((block, up, ticks, deltas))
    return rows


def test_sweep_relation_timeout(benchmark):
    rows = benchmark.pedantic(_collect_timeout, rounds=1, iterations=1)
    register_report(
        "Sweep: relation-table timeout (Word trace)",
        format_table(
            ["timeout (s)", "upload", "client ticks", "deltas kept"],
            [[t, format_bytes(u), f"{c:.1f}", d] for t, u, c, d in rows],
        ),
    )
    by_timeout = {t: (u, c, d) for t, u, c, d in rows}
    # a timeout shorter than the save duration misses every trigger
    assert by_timeout[0.2][2] == 0
    assert by_timeout[0.2][0] > 3 * by_timeout[2.0][0]
    # the paper's 2s choice captures all saves; 10s adds nothing
    assert by_timeout[2.0][2] == SAVES
    assert by_timeout[10.0][2] == SAVES
    assert abs(by_timeout[10.0][0] - by_timeout[2.0][0]) < 0.1 * by_timeout[2.0][0]


def test_sweep_upload_delay(benchmark):
    rows = benchmark.pedantic(_collect_delay, rounds=1, iterations=1)
    register_report(
        "Sweep: Sync Queue upload delay (Word trace)",
        format_table(
            ["delay (s)", "upload", "client ticks", "deltas kept"],
            [[t, format_bytes(u), f"{c:.1f}", d] for t, u, c, d in rows],
        ),
    )
    by_delay = {t: (u, c, d) for t, u, c, d in rows}
    # zero delay ships write nodes before delta replacement can happen
    assert by_delay[0.0][0] > 2 * by_delay[3.0][0]
    # the paper's 3s delay achieves full replacement
    assert by_delay[3.0][2] == SAVES


def test_sweep_block_size(benchmark):
    rows = benchmark.pedantic(_collect_block_size, rounds=1, iterations=1)
    register_report(
        "Sweep: rsync block size (Word trace)",
        format_table(
            ["block", "upload", "client ticks", "deltas kept"],
            [[b, format_bytes(u), f"{c:.1f}", d] for b, u, c, d in rows],
        ),
    )
    uploads = [u for _, u, _, _ in rows]
    # traffic grows monotonically with block size (delta granularity)
    assert uploads == sorted(uploads)
    # every block size still triggers all the saves
    assert all(d == SAVES for _, _, _, d in rows)
