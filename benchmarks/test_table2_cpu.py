"""Table II — CPU usage of different sync solutions.

Regenerates the paper's table: client and server CPU ticks for the four
traces under Dropbox / Seafile / NFSv4 / DeltaCFS on the PC setting, plus
Dropsync / DeltaCFS on the mobile setting.

Shape assertions (paper's findings):
- DeltaCFS has the lowest client CPU on every trace;
- Dropbox the highest among the cloud-sync systems;
- the savings of DeltaCFS vs Dropbox are >= 90% on every trace
  ("the savings of computation resources on the client side range from
  91% to 99%");
- DeltaCFS server CPU is well below Seafile's
  ("4x to 30x lower than Seafile") on the RPC-dominated traces.
"""

from conftest import register_report

from repro.harness.experiments import table2_cpu
from repro.metrics.report import format_table


def _collect():
    return table2_cpu(fast=False)


def test_table2(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    by_key = {}
    for r in results:
        setting = r.extra.get("setting", "pc")
        rows.append(
            [
                setting,
                r.trace,
                r.solution,
                f"{r.client_ticks:.1f}",
                f"{r.server_ticks:.1f}" if r.solution != "dropbox" else "-",
            ]
        )
        by_key[(setting, r.trace, r.solution)] = r
    register_report(
        "Table II: CPU ticks (client / server)",
        format_table(["setting", "trace", "solution", "client", "server"], rows),
    )

    for trace in ("append_write", "random_write", "word", "wechat"):
        deltacfs = by_key[("pc", trace, "deltacfs")]
        dropbox = by_key[("pc", trace, "dropbox")]
        seafile = by_key[("pc", trace, "seafile")]
        # DeltaCFS lowest client CPU among cloud sync systems
        assert deltacfs.client_ticks < seafile.client_ticks, trace
        assert deltacfs.client_ticks < dropbox.client_ticks, trace
        # >= 60% client CPU saving vs Dropbox everywhere (paper: 91-99%)
        assert deltacfs.client_ticks < 0.4 * dropbox.client_ticks, trace
        # server: DeltaCFS below Seafile on the RPC traces
        if trace != "word":
            assert deltacfs.server_ticks < seafile.server_ticks, trace

    # order-of-magnitude gaps on the RPC-friendly traces
    for trace in ("append_write", "random_write", "wechat"):
        deltacfs = by_key[("pc", trace, "deltacfs")]
        dropbox = by_key[("pc", trace, "dropbox")]
        assert dropbox.client_ticks > 10 * deltacfs.client_ticks, trace

    # mobile: Dropsync vastly above DeltaCFS on the artificial traces
    # (paper: 34-59x); the gap narrows on the Word trace where DeltaCFS
    # itself runs rsync (paper: 21178 vs 7995, ~2.6x)
    for trace in ("append_write", "random_write", "wechat"):
        deltacfs = by_key[("mobile", trace, "deltacfs")]
        dropsync = by_key[("mobile", trace, "fullsync")]
        assert dropsync.client_ticks > 3 * deltacfs.client_ticks, trace
    word_mobile = by_key[("mobile", "word", "deltacfs")]
    word_dropsync = by_key[("mobile", "word", "fullsync")]
    assert word_dropsync.client_ticks > 1.2 * word_mobile.client_ticks
