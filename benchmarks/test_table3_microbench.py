"""Table III — local read/write performance on microbenchmarks.

filebench-style fileserver / varmail / webserver streams through four
stacks: native, loopback FUSE, DeltaCFS, DeltaCFS+checksums. The unit is
MB/s under the documented latency model (see
``repro.harness.microbench.LatencyModel``).

Shape assertions (Table III):
- fileserver: native ~ FUSE > DeltaCFS > DeltaCFSc;
- varmail: FUSE > native (cache/writeback); DeltaCFS ~30% below FUSE;
  checksums free (hidden under fsync);
- webserver: FUSE ~ DeltaCFS ~ DeltaCFSc >= native.
"""

from conftest import register_report

from repro.harness.microbench import STACKS, run_microbench
from repro.metrics.report import format_table
from repro.workloads.filebench import fileserver_ops, varmail_ops, webserver_ops


def _collect():
    out = {}
    for name, ops in [
        ("fileserver", fileserver_ops(operations=800)),
        ("varmail", varmail_ops(operations=800)),
        ("webserver", webserver_ops(operations=800)),
    ]:
        out[name] = {stack: run_microbench(name, ops, stack) for stack in STACKS}
    return out


def test_table3(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [workload] + [f"{results[workload][s].mb_per_s:.1f}" for s in STACKS]
        for workload in ("fileserver", "varmail", "webserver")
    ]
    register_report(
        "Table III: microbenchmark throughput (MB/s)",
        format_table(["workload"] + list(STACKS), rows),
    )

    fileserver = results["fileserver"]
    assert abs(fileserver["fuse"].mb_per_s - fileserver["native"].mb_per_s) < 0.15 * fileserver["native"].mb_per_s
    assert fileserver["deltacfs"].mb_per_s < 0.85 * fileserver["fuse"].mb_per_s
    assert fileserver["deltacfsc"].mb_per_s < fileserver["deltacfs"].mb_per_s

    varmail = results["varmail"]
    assert varmail["fuse"].mb_per_s > varmail["native"].mb_per_s
    assert 0.5 < varmail["deltacfs"].mb_per_s / varmail["fuse"].mb_per_s < 0.9
    assert varmail["deltacfsc"].mb_per_s > 0.95 * varmail["deltacfs"].mb_per_s

    webserver = results["webserver"]
    assert webserver["fuse"].mb_per_s > webserver["native"].mb_per_s
    assert abs(webserver["deltacfs"].mb_per_s - webserver["fuse"].mb_per_s) < 0.05 * webserver["fuse"].mb_per_s
    assert webserver["deltacfsc"].mb_per_s > 0.9 * webserver["fuse"].mb_per_s
