"""Table IV — results of reliability tests.

Three scenarios per service: silently corrupted data, crash-inconsistent
data, and causal upload ordering. The expected table (the paper's):

    Dropbox   upload   upload   N
    Seafile   upload   upload   N
    DeltaCFS  detect   detect   Y
"""

from conftest import register_report

from repro.harness.experiments import table4_reliability
from repro.metrics.report import format_table


def _collect():
    return table4_reliability()


def test_table4(benchmark):
    outcomes = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [[o.service, o.corrupted, o.inconsistent, o.causal_order] for o in outcomes]
    register_report(
        "Table IV: reliability tests (corrupted / inconsistent / causal)",
        format_table(["service", "corrupted", "inconsistent", "causal"], rows),
    )

    by_service = {o.service: o for o in outcomes}
    for baseline in ("dropbox", "seafile"):
        assert by_service[baseline].corrupted == "upload"
        assert by_service[baseline].inconsistent == "upload"
        assert by_service[baseline].causal_order == "N"
    deltacfs = by_service["deltacfs"]
    assert deltacfs.corrupted == "detect"
    assert deltacfs.inconsistent == "detect"
    assert deltacfs.causal_order == "Y"
