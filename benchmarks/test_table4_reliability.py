"""Table IV — results of reliability tests, plus the crash round trip.

Three scenarios per service: silently corrupted data, crash-inconsistent
data, and causal upload ordering. The expected table (the paper's):

    Dropbox   upload   upload   N
    Seafile   upload   upload   N
    DeltaCFS  detect   detect   Y

The second half is a *real* crash→recover→verify round trip through the
crash-recovery journal: a journaled client dies mid-burst (fresh client
instance, WAL-backed KVs closed and reopened), damage is injected beneath
the file system, and ``recover()`` must converge client and cloud
byte-identically with recovery traffic bounded by the dirty burst plus
the damaged span — never a whole-file re-upload.

Set ``RELIABILITY_SMOKE=1`` to run at reduced scale (the CI smoke job
does).
"""

import os

from conftest import register_report

from repro.harness.experiments import table4_reliability
from repro.harness.reliability import crash_recovery_roundtrip
from repro.kvstore.kv import LogStructuredKV
from repro.metrics.report import format_bytes, format_table

_SMOKE = os.environ.get("RELIABILITY_SMOKE") == "1"
_SEEDS = (7,) if _SMOKE else (7, 11, 23)


def _collect():
    return table4_reliability()


def test_table4(benchmark):
    outcomes = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [[o.service, o.corrupted, o.inconsistent, o.causal_order] for o in outcomes]
    register_report(
        "Table IV: reliability tests (corrupted / inconsistent / causal)",
        format_table(["service", "corrupted", "inconsistent", "causal"], rows),
    )

    by_service = {o.service: o for o in outcomes}
    for baseline in ("dropbox", "seafile"):
        assert by_service[baseline].corrupted == "upload"
        assert by_service[baseline].inconsistent == "upload"
        assert by_service[baseline].causal_order == "N"
    deltacfs = by_service["deltacfs"]
    assert deltacfs.corrupted == "detect"
    assert deltacfs.inconsistent == "detect"
    assert deltacfs.causal_order == "Y"


def test_crash_recovery_roundtrip(benchmark, tmp_path):
    def _sweep():
        outcomes = []
        for seed in _SEEDS:
            wal_dir = tmp_path / f"seed{seed}"
            wal_dir.mkdir()
            outcomes.append(
                crash_recovery_roundtrip(
                    seed=seed,
                    kv_factory=lambda name: LogStructuredKV(
                        str(wal_dir / f"{name}.wal"), sync=(name == "journal")
                    ),
                )
            )
        return outcomes

    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            seed,
            "Y" if o.converged else "N",
            format_bytes(o.dirty_bytes),
            format_bytes(o.damaged_span),
            format_bytes(o.recovery_up_bytes),
            format_bytes(o.recovery_down_bytes),
            o.nodes_replayed,
            o.blocks_repaired,
            o.full_file_fallbacks,
        ]
        for seed, o in zip(_SEEDS, outcomes)
    ]
    register_report(
        "Table IV addendum: crash->recover->verify round trip "
        "(256KB file, WAL-backed journal, real restart)",
        format_table(
            ["seed", "converged", "dirty", "damaged", "up", "down",
             "replayed", "blk fixed", "fallbacks"],
            rows,
        ),
    )

    for o in outcomes:
        assert o.converged, o.mismatched
        assert o.full_file_fallbacks == 0
        # recovery traffic is bounded by the dirty burst + damaged span
        # (plus framing) — far below the 256KB a naive re-upload would cost
        assert o.recovery_up_bytes < 64 * 1024
        assert o.recovery_down_bytes < 64 * 1024
        assert o.nodes_replayed >= 1
        assert o.blocks_repaired >= 1
