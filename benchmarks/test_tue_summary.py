"""TUE summary across every (trace, system) pair.

TUE — Traffic Usage Efficiency, total sync traffic divided by update size
(the metric of the paper's ref [2], shown in its Figure 2) — condenses
network efficiency into one number per cell: 1.0 is perfect, large values
are the abuse the paper attacks.
"""

from conftest import register_report

from repro.harness.experiments import PC_SOLUTIONS, bench_traces, run_mobile, run_pc
from repro.metrics.report import format_table


def _collect():
    cells = {}
    for trace_name, (trace, scale) in bench_traces(fast=False).items():
        for solution in PC_SOLUTIONS:
            cells[(trace_name, solution)] = run_pc(solution, trace, scale)
        cells[(trace_name, "dropsync(mobile)")] = run_mobile("fullsync", trace, scale)
    return cells


def test_tue_summary(benchmark):
    cells = benchmark.pedantic(_collect, rounds=1, iterations=1)

    systems = list(PC_SOLUTIONS) + ["dropsync(mobile)"]
    traces = ("append_write", "random_write", "word", "wechat")
    rows = []
    for trace in traces:
        row = [trace]
        for system in systems:
            result = cells[(trace, system)]
            row.append(f"{result.tue:.2f}")
        rows.append(row)
    register_report(
        "TUE summary (total sync traffic / update size; 1.0 is perfect)",
        format_table(["trace"] + systems, rows),
    )

    for trace in traces:
        deltacfs = cells[(trace, "deltacfs")].tue
        # DeltaCFS stays within small constant factors of perfect...
        assert deltacfs < 4.0, trace
        # ...and is never beaten by the delta-sync baselines
        assert deltacfs <= cells[(trace, "seafile")].tue * 1.05, trace
        # full-file mobile sync is catastrophic on in-place workloads
    assert cells[("random_write", "dropsync(mobile)")].tue > 100
    assert cells[("wechat", "dropsync(mobile)")].tue > 20
