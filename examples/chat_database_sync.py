#!/usr/bin/env python3
"""Scenario: continuously syncing a chat application's SQLite database.

This is the paper's motivating workload (Figures 1, 2 and the WeChat
trace): a large tabular file receiving frequent, small, journaled updates.
The script replays a synthesized WeChat trace through all five sync
systems and prints the Figure-8(d)-style comparison — traffic, CPU, and
TUE — showing the "abuse of delta sync" and how DeltaCFS avoids it.

Run:  python examples/chat_database_sync.py [--scale N] [--mods N]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.experiments import _scaled_kwargs
from repro.harness.runner import SOLUTIONS, run_trace
from repro.metrics.report import format_bytes, format_table
from repro.workloads import wechat_trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=32,
                        help="divide the paper's 131MB database by this")
    parser.add_argument("--mods", type=int, default=60,
                        help="number of journaled modifications to replay")
    args = parser.parse_args()

    trace = wechat_trace(scale=args.scale, modifications=args.mods)
    db_size = len(trace.preload["/chat.sqlite"])
    print(f"database: {format_bytes(db_size)}, "
          f"{args.mods} modifications, "
          f"{format_bytes(trace.stats.update_bytes)} of real updates\n")

    rows = []
    for solution in SOLUTIONS:
        result = run_trace(solution, trace, **_scaled_kwargs(args.scale))
        rows.append([
            solution,
            f"{result.client_ticks:.1f}",
            f"{result.server_ticks:.1f}",
            format_bytes(result.up_bytes),
            format_bytes(result.down_bytes),
            f"{result.tue:.2f}",
        ])
    print(format_table(
        ["solution", "client CPU", "server CPU", "upload", "download", "TUE"],
        rows,
    ))
    print(
        "\nTUE = total sync traffic / update size; 1.0 is perfect.\n"
        "Watch: Dropbox's CPU (rsync re-scans the whole database per\n"
        "change), Seafile's traffic (1MB chunks for 4KB page writes), and\n"
        "DeltaCFS matching NFS's traffic at a fraction of everyone's CPU."
    )


if __name__ == "__main__":
    main()
