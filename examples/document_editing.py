#!/usr/bin/env python3
"""Scenario: an editing session on an office document.

Replays the Word transactional-save trace (Figure 3's rename dance) and
shows the relation table at work: every save rewrites the whole document
under a temporary name, yet DeltaCFS ships only a delta — while the
event-driven baselines re-scan and re-upload.

Run:  python examples/document_editing.py [--saves N]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.experiments import WORD_SCALE, _scaled_kwargs
from repro.harness.runner import run_trace
from repro.metrics.report import format_bytes, format_table
from repro.workloads import word_trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--saves", type=int, default=20)
    args = parser.parse_args()

    trace = word_trace(scale=WORD_SCALE, saves=args.saves)
    doc_size = len(trace.preload["/report.docx"])
    print(
        f"document: {format_bytes(doc_size)}, saved {args.saves} times\n"
        f"bytes the editor wrote:   {format_bytes(trace.stats.bytes_written)}\n"
        f"bytes actually changed:   {format_bytes(trace.stats.update_bytes)}\n"
    )

    rows = []
    deltacfs_extra = {}
    for solution in ("deltacfs", "dropbox", "seafile", "nfs"):
        result = run_trace(solution, trace, **_scaled_kwargs(WORD_SCALE))
        rows.append([
            solution,
            format_bytes(result.up_bytes),
            format_bytes(result.down_bytes),
            f"{result.client_ticks:.1f}",
        ])
        if solution == "deltacfs":
            deltacfs_extra = result.extra
    print(format_table(["solution", "upload", "download", "client CPU"], rows))

    print(
        f"\nDeltaCFS triggered delta encoding "
        f"{int(deltacfs_extra.get('deltas_triggered', 0))} times "
        f"(once per save) and kept {int(deltacfs_extra.get('deltas_kept', 0))} "
        "deltas — the relation table recognized every rename dance.\n"
        "NFS's download column is the cache-invalidation pathology: the\n"
        "client re-fetches the document it just wrote, byte for byte."
    )


if __name__ == "__main__":
    main()
