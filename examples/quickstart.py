#!/usr/bin/env python3
"""Quickstart: a DeltaCFS client syncing to a simulated cloud.

Walks through the three update patterns from the paper's Figure 3 —
in-place (WeChat/SQLite), transactional rename (Word), and transactional
link (gedit) — and shows how little crosses the network for each.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import CloudServer, DeltaCFSClient, MemoryFileSystem, VirtualClock
from repro.cost import CostMeter
from repro.metrics.report import format_bytes
from repro.net.transport import Channel


def settle(clock, client, seconds=6):
    """Advance virtual time so the Sync Queue's upload delay elapses."""
    for _ in range(seconds):
        clock.advance(1.0)
        client.pump()
    client.flush()


def main():
    clock = VirtualClock()
    client_meter, server_meter = CostMeter(), CostMeter()
    server = CloudServer(meter=server_meter)
    channel = Channel(client_meter=client_meter, server_meter=server_meter)
    fs = DeltaCFSClient(
        MemoryFileSystem(),
        server=server,
        channel=channel,
        clock=clock,
        meter=client_meter,
    )

    # ------------------------------------------------------------------
    # 1. Initial upload: a 256 KB document
    # ------------------------------------------------------------------
    document = bytes(i % 251 for i in range(256 * 1024))
    fs.create("/report.doc")
    fs.write("/report.doc", 0, document)
    fs.close("/report.doc")
    settle(clock, fs)
    assert server.file_content("/report.doc") == document
    print(f"initial upload:        {format_bytes(channel.stats.up_bytes):>10}")

    # ------------------------------------------------------------------
    # 2. In-place update (the SQLite pattern): NFS-like file RPC
    #    Only the written bytes travel.
    # ------------------------------------------------------------------
    mark = channel.stats.up_bytes
    fs.write("/report.doc", 1000, b"a tiny in-place edit")
    fs.close("/report.doc")
    settle(clock, fs)
    print(f"20B in-place edit:     {format_bytes(channel.stats.up_bytes - mark):>10}"
          "   (NFS-like RPC: just the write + versions)")

    # ------------------------------------------------------------------
    # 3. Transactional update (the Word pattern): triggered delta encoding
    #    The editor rewrites the WHOLE file under a temp name, but the
    #    relation table recognizes the rename dance and ships a delta.
    # ------------------------------------------------------------------
    new_version = document[:100_000] + b"<<REVISED>>" + document[100_000:]
    mark = channel.stats.up_bytes
    fs.rename("/report.doc", "/report.doc~tmp0")   # 1 preserve old version
    fs.create("/report.doc.new")                   # 2 write new version...
    fs.write("/report.doc.new", 0, new_version)    #   ...in full
    fs.close("/report.doc.new")
    fs.rename("/report.doc.new", "/report.doc")    # 4 atomic replace
    fs.unlink("/report.doc~tmp0")                  # 5 drop old version
    settle(clock, fs)
    assert server.file_content("/report.doc") == new_version
    print(f"256KB rewrite, 11B new:{format_bytes(channel.stats.up_bytes - mark):>10}"
          f"   (delta encoding triggered {fs.stats.deltas_kept}x)")

    # ------------------------------------------------------------------
    # 4. Where did the CPU go?
    # ------------------------------------------------------------------
    print("\nclient CPU by category (ticks):")
    for category, ticks in sorted(
        client_meter.by_category.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {category:20s} {ticks:8.2f}")
    print(f"server total: {server_meter.total:.2f} ticks "
          "(the cloud only applies incremental data)")


if __name__ == "__main__":
    main()
