#!/usr/bin/env python3
"""Scenario: two devices sharing a folder — forwarding, conflicts, recovery.

Demonstrates Sections III-C/D/E end to end:

1. device B receives device A's updates as verbatim forwards;
2. a concurrent edit loses first-write-wins and becomes a conflict copy;
3. silent corruption on one device is detected by the checksum store and
   repaired from the cloud.

Run:  python examples/shared_folder.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import CloudServer, DeltaCFSClient, MemoryFileSystem, VirtualClock
from repro.net.transport import Channel


def settle(clock, *clients, seconds=6):
    for _ in range(seconds):
        clock.advance(1.0)
        for client in clients:
            client.pump()
    for client in clients:
        client.flush()


def main():
    clock = VirtualClock()
    server = CloudServer()
    laptop = DeltaCFSClient(
        MemoryFileSystem(), server=server, channel=Channel(), clock=clock, client_id=1
    )
    phone = DeltaCFSClient(
        MemoryFileSystem(), server=server, channel=Channel(), clock=clock, client_id=2
    )

    # -- 1. forwarding -------------------------------------------------
    laptop.create("/notes.md")
    laptop.write("/notes.md", 0, b"# Shopping\n- milk\n- bread\n")
    laptop.close("/notes.md")
    settle(clock, laptop, phone)
    print("phone sees laptop's file:")
    print(phone.read("/notes.md", 0, None).decode(), end="")
    print(f"(delivered via {phone.stats.forwards_applied} forwards)\n")

    # -- 2. concurrent edit: first write wins --------------------------
    laptop.write("/notes.md", 27, b"- eggs (laptop)\n")
    laptop.close("/notes.md")
    phone.write("/notes.md", 27, b"- jam (phone)\n")
    phone.close("/notes.md")
    settle(clock, laptop)  # laptop's update reaches the cloud first
    settle(clock, phone)   # phone's update is now stale -> conflict
    print("cloud content after the race (laptop won):")
    print(server.file_content("/notes.md").decode())
    conflict_copies = [p for p in server.store.paths() if "conflicted copy" in p]
    print(f"conflict copies kept on the cloud: {conflict_copies}")
    print(f"phone was notified of {phone.stats.conflicts} conflict(s)\n")

    # -- 3. corruption detection and recovery --------------------------
    settle(clock, laptop, phone)
    phone.inner.corrupt("/notes.md", 5)  # a bit rots beneath the stack
    data = phone.read("/notes.md", 0, None)  # read verifies + repairs
    print(
        f"corruption detected: {phone.stats.corruptions_detected}, "
        f"recovered from cloud: {phone.stats.recoveries}"
    )
    assert data == server.file_content("/notes.md")
    print("phone's copy verified byte-identical to the cloud again")


if __name__ == "__main__":
    main()
