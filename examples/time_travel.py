#!/usr/bin/env python3
"""Scenario: fine-grained version control — browsing and restoring history.

Section III-C: versions are stamped per Sync Queue node ("a neat tradeoff"
between open-to-close and per-write granularity) and the cloud keeps recent
snapshots, so any of them can be restored — even across the Word-style
rename dance, which would break naive per-path histories.

Run:  python examples/time_travel.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import CloudServer, DeltaCFSClient, MemoryFileSystem, VirtualClock
from repro.net.transport import Channel


def settle(clock, client, seconds=6):
    for _ in range(seconds):
        clock.advance(1.0)
        client.pump()
    client.flush()


def main():
    clock = VirtualClock()
    server = CloudServer()
    fs = DeltaCFSClient(
        MemoryFileSystem(), server=server, channel=Channel(), clock=clock
    )

    # three editing sessions, the last one via the transactional dance
    drafts = [
        b"Draft 1: an idea.\n",
        b"Draft 2: the idea, refined over several paragraphs.\n",
        b"Draft 3: FINAL (typo'd the conclusion, oops).\n",
    ]
    fs.create("/paper.txt")
    fs.write("/paper.txt", 0, drafts[0])
    fs.close("/paper.txt")
    settle(clock, fs)

    fs.truncate("/paper.txt", 0)
    fs.write("/paper.txt", 0, drafts[1])
    fs.close("/paper.txt")
    settle(clock, fs)

    # save #3 through the editor's rename dance (history must survive it)
    fs.rename("/paper.txt", "/.paper.bak")
    fs.create("/.paper.new")
    fs.write("/.paper.new", 0, drafts[2])
    fs.close("/.paper.new")
    fs.rename("/.paper.new", "/paper.txt")
    fs.unlink("/.paper.bak")
    settle(clock, fs)

    print("current content:", fs.read("/paper.txt", 0, None).decode().strip())
    history = fs.version_history("/paper.txt")
    print(f"\nrestorable versions ({len(history)}):")
    for stamp in history:
        snapshot = server.store.snapshot(stamp)
        preview = (snapshot or b"")[:40].decode(errors="replace").strip()
        print(f"  {stamp}  {len(snapshot or b''):4d}B  {preview!r}")

    # the conclusion was better in draft 2 — roll back
    target = next(s for s in history if server.store.snapshot(s) == drafts[1])
    fs.restore_version("/paper.txt", target)
    settle(clock, fs)
    print("\nafter restore:", fs.read("/paper.txt", 0, None).decode().strip())
    assert server.file_content("/paper.txt") == drafts[1]
    print("local and cloud agree; the restore synced like any other update")


if __name__ == "__main__":
    main()
