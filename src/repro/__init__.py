"""DeltaCFS — a reproduction of "DeltaCFS: Boosting Delta Sync for Cloud
Storage Services by Learning from NFS" (Zhang et al., ICDCS 2017).

The package implements the paper's adaptive file-sync framework and every
substrate it depends on, plus the baselines it is evaluated against.

Quickstart::

    from repro import DeltaCFSClient, CloudServer, MemoryFileSystem, VirtualClock

    clock = VirtualClock()
    server = CloudServer()
    fs = DeltaCFSClient(MemoryFileSystem(), server=server, clock=clock)

    fs.create("/hello.txt")
    fs.write("/hello.txt", 0, b"hello, cloud")
    fs.close("/hello.txt")
    clock.advance(5)
    fs.pump()          # upload-delay elapsed: the write ships as file RPC
    assert server.file_content("/hello.txt") == b"hello, cloud"

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.common.clock import VirtualClock
from repro.common.config import BaselineConfig, DeltaCFSConfig
from repro.common.version import VersionCounter, VersionStamp
from repro.core.client import DeltaCFSClient
from repro.cost.meter import CostMeter
from repro.cost.profile import MOBILE_PROFILE, PC_PROFILE
from repro.net.transport import Channel, NetworkModel
from repro.obs import NULL_OBS, Observability
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import MemoryFileSystem

__version__ = "1.1.0"

__all__ = [
    "VirtualClock",
    "Observability",
    "NULL_OBS",
    "BaselineConfig",
    "DeltaCFSConfig",
    "DeltaCFSClient",
    "VersionCounter",
    "VersionStamp",
    "CostMeter",
    "MOBILE_PROFILE",
    "PC_PROFILE",
    "Channel",
    "NetworkModel",
    "CloudServer",
    "MemoryFileSystem",
    "__version__",
]
