"""Baseline sync systems the paper compares against (Section IV-A).

All four are re-implementations of the *algorithms* the commercial systems
use, with the parameters the paper documents:

- :mod:`repro.baselines.dropbox` — rsync with 4 KB blocks applied within
  4 MB deduplication units, inotify-triggered, client-side checksum
  recalculation, network compression (Dropbox Linux client behaviour).
- :mod:`repro.baselines.seafile` — content-defined chunking with 1 MB
  average chunks and fingerprint-based chunk dedup (Seafile).
- :mod:`repro.baselines.nfs` — NFSv4-like write RPCs with page caching,
  fetch-before-write on unaligned writes, and cache invalidation on rename.
- :mod:`repro.baselines.fullsync` — whole-file upload on change with
  link-idle gating (Dropsync / Google-Drive-style, and the mobile baseline).
"""

from repro.baselines.base import WatcherSyncClient
from repro.baselines.dropbox import DropboxClient
from repro.baselines.seafile import SeafileClient
from repro.baselines.nfs import NFSClient
from repro.baselines.fullsync import FullUploadClient

__all__ = [
    "WatcherSyncClient",
    "DropboxClient",
    "SeafileClient",
    "NFSClient",
    "FullUploadClient",
]
