"""Shared machinery for watcher-driven sync clients (Dropbox, Seafile,
Dropsync).

These systems sit *above* the file system: they learn about changes from
inotify-style events (path only, no data) and must re-derive what changed by
scanning files. That asymmetry versus DeltaCFS's in-path interception is the
paper's central point.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cost.meter import CostMeter, NULL_METER
from repro.net.transport import Channel
from repro.vfs.filesystem import FileSystemAPI, MemoryFileSystem
from repro.vfs.watcher import InotifyEvent, WatchedFileSystem, Watcher


class WatcherSyncClient:
    """Base class: event subscription, dirty tracking, sync scheduling.

    Args:
        backing: local file system holding the sync folder (created if not
            given).
        channel: accounting link to the cloud.
        meter: client CPU meter.
        sync_interval: minimum seconds between sync rounds for one file
            (the event-debounce the real clients apply).
        wait_for_idle_link: skip sync rounds while the uplink is still
            transmitting — on slow mobile links this produces the
            involuntary batching the paper observed with Dropsync.
    """

    name = "watcher"

    def __init__(
        self,
        backing: FileSystemAPI | None = None,
        *,
        channel: Channel | None = None,
        meter: CostMeter = NULL_METER,
        sync_interval: float = 1.0,
        wait_for_idle_link: bool = False,
    ):
        self.meter = meter
        self.channel = channel if channel is not None else Channel()
        self.sync_interval = sync_interval
        self.wait_for_idle_link = wait_for_idle_link
        self.watcher = Watcher()
        base = backing if backing is not None else MemoryFileSystem()
        self.fs = WatchedFileSystem(base, self.watcher)
        self.watcher.subscribe(self._on_event)
        self._dirty: Set[str] = set()
        self._deleted: Set[str] = set()
        self._renames: list[tuple[str, str]] = []
        self._last_sync: Dict[str, float] = {}
        self.sync_rounds = 0

    # -- event intake ------------------------------------------------------

    def _on_event(self, event: InotifyEvent) -> None:
        if event.kind in ("create", "modify"):
            self._dirty.add(event.path)
            self._deleted.discard(event.path)
        elif event.kind == "delete":
            self._dirty.discard(event.path)
            self._deleted.add(event.path)
        elif event.kind == "move":
            self._renames.append((event.path, event.dest or event.path))
            if event.path in self._dirty:
                self._dirty.discard(event.path)
            self._dirty.add(event.dest or event.path)

    # -- scheduling --------------------------------------------------------

    def pump(self, now: float) -> int:
        """Run sync rounds for files whose debounce elapsed.

        Returns the number of files synced this call.
        """
        if self.wait_for_idle_link and not self.channel.upload_idle_at(now):
            return 0
        synced = 0
        for src, dst in self._renames:
            self._sync_rename(src, dst, now)
        self._renames.clear()
        for path in sorted(self._deleted):
            self._sync_delete(path, now)
        self._deleted.clear()
        for path in sorted(self._dirty):
            last = self._last_sync.get(path, -1e18)
            if now - last < self.sync_interval:
                continue
            if not self.fs.exists(path):
                self._dirty.discard(path)
                continue
            self._sync_file(path, now)
            self._last_sync[path] = now
            self._dirty.discard(path)
            self.sync_rounds += 1
            synced += 1
        return synced

    def flush(self, now: float) -> int:
        """Sync everything pending regardless of debounce and link state."""
        idle_gate, self.wait_for_idle_link = self.wait_for_idle_link, False
        interval, self.sync_interval = self.sync_interval, -1.0
        try:
            return self.pump(now)
        finally:
            self.wait_for_idle_link = idle_gate
            self.sync_interval = interval

    # -- per-system behaviour (overridden) ----------------------------------

    def _sync_file(self, path: str, now: float) -> None:
        raise NotImplementedError

    def _sync_delete(self, path: str, now: float) -> None:
        raise NotImplementedError

    def _sync_rename(self, src: str, dst: str, now: float) -> None:
        """Default: treat rename as delete(src) + dirty(dst)."""
        self._sync_delete(src, now)
