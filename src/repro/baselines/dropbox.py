"""The Dropbox-like baseline: rsync inside 4 MB deduplication units.

Behaviour documented in the paper (Sections II-A, IV-B, IV-C and [38]):

- change detection via inotify, so every sync round re-reads and re-scans
  the whole file;
- content split into 4 MB *dedup units*, each identified by a strong hash;
  unchanged units are skipped entirely ("perfectly works for simple data
  upload");
- rsync (4 KB blocks) runs *within* each changed 4 MB unit against the same
  unit of the previous synced version — so content that shifts across a
  unit boundary defeats delta encoding (the Word-trace pathology);
- checksum recalculation is offloaded to the client: the client keeps a
  shadow copy of the last-synced content and computes both signature and
  delta locally (this is also why Dropbox has almost no download traffic);
- literals are compressed before transmission.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import WatcherSyncClient
from repro.chunking.strong import dedup_hash
from repro.delta.format import Copy, Delta, Literal
from repro.delta.rsync import compute_delta, compute_signature
from repro.net.messages import Ack, MetaOp, UploadDelta, UploadFull
from repro.server.cloud import CloudServer


class DropboxClient(WatcherSyncClient):
    """rsync + 4 MB dedup client."""

    name = "dropbox"

    def __init__(
        self,
        *args,
        server: CloudServer | None = None,
        block_size: int = 4096,
        dedup_size: int = 4 * 1024 * 1024,
        compression_ratio: float = 0.8,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.server = server
        self.block_size = block_size
        self.dedup_size = dedup_size
        self.compression_ratio = compression_ratio
        # Shadow of the last successfully synced content per path — the
        # rsync base (kept client-side because checksum work is offloaded).
        self._shadow: Dict[str, bytes] = {}
        # Fingerprints of every 4 MB unit the cloud already stores — the
        # deduplication index. A unit with any changed byte misses it.
        self._known_units: set[bytes] = set()

    # -- sync round ----------------------------------------------------------

    def _sync_file(self, path: str, now: float) -> None:
        content = self.fs.read_file(path)
        # inotify gave us no data: scan the whole file from disk.
        self.meter.charge_bytes("scan_read", len(content))
        base = self._shadow.get(path, b"")

        unit_count = max(1, (len(content) + self.dedup_size - 1) // self.dedup_size)
        changed = False
        for unit_index in range(unit_count):
            lo = unit_index * self.dedup_size
            new_unit = content[lo : lo + self.dedup_size]
            # Dedup fingerprint over every unit, every round (CPU!).
            fingerprint = dedup_hash(new_unit, self.meter)
            if fingerprint in self._known_units:
                continue  # dedup hit: the cloud has this exact unit
            changed = True
            old_unit = base[lo : lo + self.dedup_size]
            self._upload_unit(path, lo, old_unit, new_unit, now)
            self._known_units.add(fingerprint)
        if changed or path not in self._shadow or len(content) != len(base):
            self._shadow[path] = content
            self._apply_server(path, content)

    def _upload_unit(
        self, path: str, lo: int, old_unit: bytes, new_unit: bytes, now: float
    ) -> None:
        if not old_unit:
            # Nothing to delta against (fresh path — e.g. an editor's temp
            # file): ship the whole unit, compressed.
            message = UploadFull(path=f"{path}@{lo}", data=self._compressed(new_unit))
            self.channel.upload(message, now)
            return
        # rsync within the unit. Client-side signature of the OLD unit
        # (checksum offloading): rolling + MD5 over every base block.
        signature = compute_signature(
            old_unit, self.block_size, with_strong=True, meter=self.meter
        )
        delta = compute_delta(signature, new_unit, meter=self.meter)
        compressed = Delta()
        for op in delta.ops:
            if isinstance(op, Literal):
                compressed.append(Literal(self._compressed(op.data)))
            else:
                compressed.append(Copy(op.offset, op.length))
        message = UploadDelta(path=f"{path}@{lo}", delta=compressed)
        self.channel.upload(message, now)

    def _sync_delete(self, path: str, now: float) -> None:
        self._shadow.pop(path, None)
        self.channel.upload(MetaOp(kind="unlink", path=path), now)
        if self.server is not None and self.server.store.exists(path):
            self.server.store.delete(path)

    def _sync_rename(self, src: str, dst: str, now: float) -> None:
        # Dropbox detects a move and transfers metadata only. The client
        # keeps previous versions in its cache folder (.dropbox.cache), so
        # after a temp file is renamed over a tracked path, the path's own
        # previous version remains available as the rsync base — but rsync
        # is still confined to 4 MB-aligned units, which is what limits its
        # effect on the Word trace (Section IV-C, [38]).
        shadow = self._shadow.get(src)
        if dst not in self._shadow and shadow is not None:
            self._shadow[dst] = shadow
        self.channel.upload(MetaOp(kind="rename", path=src, dest=dst), now)
        if self.server is not None and self.server.store.exists(src):
            self.server.store.rename(src, dst)

    # -- helpers ------------------------------------------------------------

    def _compressed(self, data: bytes) -> bytes:
        """Model network compression: charge CPU, shrink the payload."""
        self.meter.charge_bytes("compress", len(data))
        return data[: max(1, int(len(data) * self.compression_ratio))] if data else data

    def _apply_server(self, path: str, content: bytes) -> None:
        if self.server is None:
            return
        self.server.meter.charge_bytes("apply_delta", len(content))
        self.server.store.put(path, content, None)
        self.channel.download(Ack(path=path), 0.0)
