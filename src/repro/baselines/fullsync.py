"""The full-upload baseline: Dropsync / Google-Drive-style whole-file sync.

Whenever a watched file changes, the entire file is read from disk and
transmitted. This is the mobile baseline of Section IV ("it has to load the
file from disk and transmit the whole file through network every time the
file is modified"). On a slow WAN the uplink stays saturated, which both
burns CPU continuously and *involuntarily batches* updates — the client can
only start a new round when the link drains, so several edits collapse into
one upload (the effect the paper observed in the mobile Word/WeChat runs).
"""

from __future__ import annotations

from repro.baselines.base import WatcherSyncClient
from repro.net.messages import Ack, MetaOp, UploadFull
from repro.server.cloud import CloudServer


class FullUploadClient(WatcherSyncClient):
    """Whole-file uploader with link-idle gating."""

    name = "fullsync"

    def __init__(
        self,
        *args,
        server: CloudServer | None = None,
        compression_ratio: float = 1.0,
        **kwargs,
    ):
        kwargs.setdefault("wait_for_idle_link", True)
        super().__init__(*args, **kwargs)
        self.server = server
        self.compression_ratio = compression_ratio
        self.uploads = 0

    def _sync_file(self, path: str, now: float) -> None:
        content = self.fs.read_file(path)
        # Load the whole file from disk...
        self.meter.charge_bytes("scan_read", len(content))
        payload = content
        if self.compression_ratio < 1.0:
            self.meter.charge_bytes("compress", len(content))
            payload = content[: max(1, int(len(content) * self.compression_ratio))]
        # ...and push the whole thing through the network stack.
        self.channel.upload(UploadFull(path=path, data=payload), now)
        self.uploads += 1
        if self.server is not None:
            self.server.meter.charge_bytes("apply_delta", len(content))
            self.server.store.put(path, content, None)
        self.channel.download(Ack(path=path), now)

    def _sync_delete(self, path: str, now: float) -> None:
        self.channel.upload(MetaOp(kind="unlink", path=path), now)
        if self.server is not None and self.server.store.exists(path):
            self.server.store.delete(path)

    def _sync_rename(self, src: str, dst: str, now: float) -> None:
        self.channel.upload(MetaOp(kind="rename", path=src, dest=dst), now)
        if self.server is not None and self.server.store.exists(src):
            self.server.store.rename(src, dst)
