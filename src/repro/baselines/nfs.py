"""The NFSv4-like baseline: every file operation becomes an RPC.

NFS is the other endpoint of the design space the paper learns from: it
never computes deltas (zero client CPU for sync), but it ships *every
write* — and its caching semantics produce two pathologies the paper
measures (Section IV-C):

- **fetch-before-write**: a write that does not cover whole pages must
  first fetch the containing page(s) from the server (the WeChat-trace
  download traffic);
- **cache invalidation on rename**: after ``rename tmp -> f``, ``f``'s
  cached content is stale (NFS file handles are per-inode), so the next
  read of ``f`` re-fetches the whole file from the server — even though the
  client just wrote every byte of it under the name ``tmp`` (the
  Word-trace pathology: the server sends back as much as it received).

The client is a passthrough layer like DeltaCFS (in-kernel callbacks — the
paper skips its CPU numbers for that reason); the server stores plain
files. NFS traffic is not TLS-encrypted.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cost.meter import CostMeter, NULL_METER
from repro.net.messages import FileDownload, MetaOp, UploadTruncate, UploadWrite
from repro.net.transport import Channel, NetworkModel
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import FileSystemAPI, MemoryFileSystem
from repro.vfs.interception import PassthroughFileSystem


class NFSClient(PassthroughFileSystem):
    """Write-through NFS client with page cache semantics."""

    name = "nfs"

    def __init__(
        self,
        inner: FileSystemAPI | None = None,
        *,
        server: CloudServer | None = None,
        channel: Channel | None = None,
        meter: CostMeter = NULL_METER,
        page_size: int = 4096,
    ):
        super().__init__(inner if inner is not None else MemoryFileSystem())
        self.server = server
        if channel is None:
            channel = Channel(model=NetworkModel(encrypted=False))
        self.channel = channel
        self.meter = meter
        self.page_size = page_size
        # Pages of each file the client cache holds (valid pages).
        self._cached_pages: Dict[str, Set[int]] = {}
        self._now = 0.0

    def set_time(self, now: float) -> None:
        """Advance the clock used for channel accounting."""
        self._now = now

    # -- cache helpers -------------------------------------------------------

    def _pages(self, offset: int, length: int) -> range:
        if length <= 0:
            return range(0)
        return range(offset // self.page_size, (offset + length - 1) // self.page_size + 1)

    def _server_size(self, path: str) -> int:
        if self.server is None or not self.server.store.exists(path):
            return 0
        return len(self.server.file_content(path))

    def _fetch_pages(self, path: str, pages: list[int]) -> None:
        """fetch-before-write / cache-miss read: pull pages from the server."""
        if not pages or self.server is None or not self.server.store.exists(path):
            return
        content = self.server.file_content(path)
        span = b"".join(
            content[p * self.page_size : (p + 1) * self.page_size] for p in pages
        )
        if span:
            self.channel.download(FileDownload(path=path, data=span), self._now)
        self._cached_pages.setdefault(path, set()).update(pages)

    # -- operations ------------------------------------------------------------

    def create(self, path: str) -> None:
        self.inner.create(path)
        self.channel.upload(MetaOp(kind="create", path=path), self._now)
        if self.server is not None:
            self.server.store.put(path, b"", None)
        self._cached_pages[path] = set()

    def write(self, path: str, offset: int, data: bytes) -> None:
        cached = self._cached_pages.setdefault(path, set())
        server_size = self._server_size(path)
        needed = []
        for page in self._pages(offset, len(data)):
            page_lo = page * self.page_size
            page_hi = page_lo + self.page_size
            fully_covered = offset <= page_lo and offset + len(data) >= page_hi
            beyond_server = page_lo >= server_size
            if not fully_covered and not beyond_server and page not in cached:
                needed.append(page)
        self._fetch_pages(path, needed)

        self.inner.write(path, offset, data)
        cached.update(self._pages(offset, len(data)))
        # NFS WRITE RPC: exactly the written byte range goes up.
        self.channel.upload(
            UploadWrite(path=path, offset=offset, data=data), self._now
        )
        if self.server is not None:
            self.server.meter.charge_bytes("write_io", len(data))
            stored = self.server.store.lookup(path)
            base = stored.content if stored is not None else b""
            from repro.common.bytesutil import apply_write

            self.server.store.put(path, apply_write(base, offset, data), None)

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        size = self.inner.size(path)
        end = size if length is None else min(offset + length, size)
        cached = self._cached_pages.setdefault(path, set())
        needed = [p for p in self._pages(offset, end - offset) if p not in cached]
        if needed:
            # Cache miss (or post-rename invalidation): the data comes over
            # the wire even though the local copy is byte-identical —
            # exactly the Word-trace NFS pathology.
            self._fetch_pages(path, needed)
        return self.inner.read(path, offset, length)

    def truncate(self, path: str, length: int) -> None:
        self.inner.truncate(path, length)
        self.channel.upload(UploadTruncate(path=path, length=length), self._now)
        if self.server is not None and self.server.store.exists(path):
            from repro.common.bytesutil import truncate as truncate_bytes

            stored = self.server.store.get(path)
            self.server.store.put(path, truncate_bytes(stored.content, length), None)

    def rename(self, src: str, dst: str) -> None:
        self.inner.rename(src, dst)
        self.channel.upload(MetaOp(kind="rename", path=src, dest=dst), self._now)
        if self.server is not None and self.server.store.exists(src):
            self.server.store.rename(src, dst)
        # The dst name now refers to a different inode: its cache is stale
        # (RFC 3530 volatile filehandles / data caching and file identity).
        self._cached_pages[dst] = set()
        self._cached_pages.pop(src, None)

    def link(self, src: str, dst: str) -> None:
        self.inner.link(src, dst)
        self.channel.upload(MetaOp(kind="link", path=src, dest=dst), self._now)
        if self.server is not None and self.server.store.exists(src):
            self.server.store.copy(src, dst)
        self._cached_pages[dst] = set(self._cached_pages.get(src, set()))

    def unlink(self, path: str) -> None:
        self.inner.unlink(path)
        self.channel.upload(MetaOp(kind="unlink", path=path), self._now)
        if self.server is not None and self.server.store.exists(path):
            self.server.store.delete(path)
        self._cached_pages.pop(path, None)

    def close(self, path: str) -> None:
        # close-to-open consistency: flush (we write through, so a no-op).
        self.inner.close(path)

    def mkdir(self, path: str) -> None:
        self.inner.mkdir(path)
        self.channel.upload(MetaOp(kind="mkdir", path=path), self._now)

    def rmdir(self, path: str) -> None:
        self.inner.rmdir(path)
        self.channel.upload(MetaOp(kind="rmdir", path=path), self._now)

    # -- harness hooks ---------------------------------------------------------

    def pump(self, now: float) -> int:
        """NFS is synchronous; nothing is deferred."""
        self.set_time(now)
        return 0

    def flush(self, now: float | None = None) -> int:
        return 0
