"""The Seafile-like baseline: content-defined chunking with 1 MB chunks.

Seafile's data model (paper Sections II-A, IV-B):

- on each change, the file is re-chunked with CDC (LBFS-style) at a 1 MB
  average chunk size — chosen large "for low overhead of maintaining chunk
  checksums";
- Seafile keeps a local repository of the last-committed version, so after
  re-chunking it "only needs to compute the checksums of changed blocks":
  a chunk whose bytes match the committed copy reuses its stored
  fingerprint (a cheap comparison), and only genuinely new chunks are
  SHA-hashed — this is why its client CPU sits well below Dropbox's;
- the client tells the server which fingerprints are new and uploads those
  chunk bodies; the large chunk size is why "it uploads a large amount of
  data": a 1-byte edit re-ships ~1 MB;
- server CPU is low because fingerprints arrive precomputed and the server
  just stores chunks.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.baselines.base import WatcherSyncClient
from repro.chunking.cdc import (
    _mask_for_average,
    cdc_boundaries,
    gear_hashes_incremental,
    _gear_hashes,
)
from repro.chunking.strong import dedup_hash
from repro.net.messages import Ack, ChunkData, ChunkHave, MetaOp
from repro.server.cloud import CloudServer


class SeafileClient(WatcherSyncClient):
    """CDC chunk-dedup client with a local committed-version repository."""

    name = "seafile"

    def __init__(
        self,
        *args,
        server: CloudServer | None = None,
        chunk_size: int = 1024 * 1024,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.server = server
        self.chunk_size = chunk_size
        # Chunk fingerprints the cloud is known to hold.
        self._server_chunks: Set[bytes] = set()
        # Local repository: last committed content, its gear-hash array,
        # and its chunk manifest keyed by (offset, length).
        self._repo: Dict[str, Tuple[bytes, np.ndarray, Dict[Tuple[int, int], bytes]]] = {}

    def _sync_file(self, path: str, now: float) -> None:
        content = self.fs.read_file(path)
        self.meter.charge_bytes("scan_read", len(content))
        # Re-chunk the whole file (the modeled client scans everything; the
        # simulator reuses cached hashes where content is unchanged).
        self.meter.charge_bytes("cdc_chunking", len(content))
        bits = _mask_for_average(self.chunk_size).bit_length()
        prev = self._repo.get(path)
        if prev is not None:
            hashes = gear_hashes_incremental(prev[0], content, prev[1], bits)
        else:
            hashes = _gear_hashes(content, bits=bits)
        boundaries = cdc_boundaries(content, self.chunk_size, hashes=hashes)

        prev_content = prev[0] if prev is not None else b""
        prev_manifest = prev[2] if prev is not None else {}
        manifest: Dict[Tuple[int, int], bytes] = {}
        fingerprints: List[bytes] = []
        start = 0
        for end in boundaries:
            body = content[start:end]
            key = (start, end - start)
            cached = prev_manifest.get(key)
            if cached is not None and prev_content[start:end] == body:
                # unchanged chunk: fingerprint reused, only a comparison paid
                self.meter.charge_bytes("bitwise_compare", len(body))
                fingerprint = cached
            else:
                fingerprint = dedup_hash(body, self.meter)
            manifest[key] = fingerprint
            fingerprints.append(fingerprint)
            start = end

        new_fingerprints = {f for f in fingerprints if f not in self._server_chunks}
        self.channel.upload(
            ChunkHave(path=path, fingerprints=tuple(fingerprints)), now
        )
        if new_fingerprints:
            bodies = []
            start = 0
            for end, fingerprint in zip(boundaries, fingerprints):
                if fingerprint in new_fingerprints:
                    bodies.append(content[start:end])
                start = end
            self.channel.upload(ChunkData(path=path, chunks=tuple(bodies)), now)
            self._server_chunks.update(new_fingerprints)
            if self.server is not None:
                # The server stores the new chunk bodies and updates the
                # manifest — no checksum computation of its own.
                self.server.meter.charge_bytes(
                    "apply_delta", sum(len(b) for b in bodies)
                )
        self._repo[path] = (content, hashes, manifest)
        if self.server is not None:
            self.server.store.put(path, content, None)
        self.channel.download(Ack(path=path), now)

    def _sync_delete(self, path: str, now: float) -> None:
        self._repo.pop(path, None)
        self.channel.upload(MetaOp(kind="unlink", path=path), now)
        if self.server is not None and self.server.store.exists(path):
            self.server.store.delete(path)

    def _sync_rename(self, src: str, dst: str, now: float) -> None:
        repo = self._repo.pop(src, None)
        if repo is not None:
            self._repo[dst] = repo
        self.channel.upload(MetaOp(kind="rename", path=src, dest=dst), now)
        if self.server is not None and self.server.store.exists(src):
            self.server.store.rename(src, dst)
