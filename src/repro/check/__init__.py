"""`repro check` — the two-layer analysis subsystem.

Layer 1 lints the source tree: per-file rules
(:mod:`repro.check.linter` + :mod:`repro.check.rules`) plus the
project-wide semantic pass (:mod:`repro.check.semantic`) — symbol
resolution, flow-sensitive dataflow, and wire-symmetry proofs over one
parsed view of the tree (:mod:`repro.check.project`). Layer 2
(:mod:`repro.check.invariants`) verifies protocol invariants over
recorded JSONL traces. Both report through the shared findings model in
:mod:`repro.check.findings`; results cache by content hash
(:mod:`repro.check.cache`) and export to SARIF
(:mod:`repro.check.sarif`). See ``docs/static-analysis.md`` for the rule
and invariant catalogs, the suppression syntax, and how to add a rule.
"""

from repro.check.cache import AnalysisCache, catalog_fingerprint
from repro.check.config import CheckConfig, DEFAULT_EXEMPTIONS
from repro.check.findings import (
    Finding,
    FindingSummary,
    active,
    gate,
    human_report,
    to_json,
)
from repro.check.invariants import (
    INVARIANTS,
    INVARIANTS_BY_ID,
    InvariantResult,
    InvariantSpec,
    report_results,
    results_to_findings,
    verify_trace,
)
from repro.check.linter import (
    KNOWN_SUPPRESSIBLE,
    lint_paths,
    lint_source,
)
from repro.check.rules import ALL_RULES, RULES_BY_ID, Rule
from repro.check.sarif import sarif_json, to_sarif
from repro.check.semantic import (
    SEMANTIC_RULES,
    SEMANTIC_RULES_BY_ID,
    analyze_project,
)

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "CheckConfig",
    "DEFAULT_EXEMPTIONS",
    "Finding",
    "FindingSummary",
    "INVARIANTS",
    "INVARIANTS_BY_ID",
    "InvariantResult",
    "InvariantSpec",
    "KNOWN_SUPPRESSIBLE",
    "Rule",
    "RULES_BY_ID",
    "SEMANTIC_RULES",
    "SEMANTIC_RULES_BY_ID",
    "active",
    "analyze_project",
    "catalog_fingerprint",
    "gate",
    "human_report",
    "lint_paths",
    "lint_source",
    "report_results",
    "results_to_findings",
    "sarif_json",
    "to_json",
    "to_sarif",
    "verify_trace",
]
