"""`repro check` — the two-layer analysis subsystem.

Layer 1 (:mod:`repro.check.linter` + :mod:`repro.check.rules`) lints the
source tree for determinism and protocol hygiene; layer 2
(:mod:`repro.check.invariants`) verifies protocol invariants over
recorded JSONL traces. Both report through the shared findings model in
:mod:`repro.check.findings`. See ``docs/static-analysis.md`` for the rule
and invariant catalogs, the suppression syntax, and how to add a rule.
"""

from repro.check.config import CheckConfig, DEFAULT_EXEMPTIONS
from repro.check.findings import (
    Finding,
    FindingSummary,
    active,
    gate,
    human_report,
    to_json,
)
from repro.check.invariants import (
    INVARIANTS,
    INVARIANTS_BY_ID,
    InvariantResult,
    InvariantSpec,
    report_results,
    results_to_findings,
    verify_trace,
)
from repro.check.linter import lint_paths, lint_source
from repro.check.rules import ALL_RULES, RULES_BY_ID, Rule

__all__ = [
    "ALL_RULES",
    "CheckConfig",
    "DEFAULT_EXEMPTIONS",
    "Finding",
    "FindingSummary",
    "INVARIANTS",
    "INVARIANTS_BY_ID",
    "InvariantResult",
    "InvariantSpec",
    "Rule",
    "RULES_BY_ID",
    "active",
    "gate",
    "human_report",
    "lint_paths",
    "lint_source",
    "report_results",
    "results_to_findings",
    "to_json",
    "verify_trace",
]
