"""Content-addressed result cache for `repro check`.

Linting is pure: the findings for a file depend only on its bytes, and
the semantic layer's findings depend only on the bytes of every file in
the project. That makes both perfectly cacheable by content hash:

* per file — keyed by the source digest, storing the **raw** findings
  (every rule, suppression comments already marked). Exemption globs
  and ``--only`` are applied per run on top of the cached list, so one
  cache serves any configuration.
* semantic — keyed by :meth:`Project.fingerprint` (the digest of every
  file), since a change anywhere can create or remove a cross-file
  finding.

Both sections are guarded by the **catalog fingerprint** — a digest of
the ``repro.check`` package's own sources. Editing any rule, the
dataflow engine, or this file invalidates the whole cache; stale
results from an older catalog can never leak into a run.

The on-disk format is one JSON document. A missing, corrupt, or
mismatched file loads as an empty cache — the cache can only ever make
a run faster, never change its outcome.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.check.findings import Finding

_FORMAT = 1


def catalog_fingerprint() -> str:
    """Digest of the analysis engine's own source files."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    h.update(f"format={_FORMAT}".encode("ascii"))
    try:
        names = sorted(
            n for n in os.listdir(package_dir) if n.endswith(".py")
        )
    except OSError:
        return h.hexdigest()
    for name in names:
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        try:
            with open(
                os.path.join(package_dir, name), "rb"
            ) as handle:
                h.update(hashlib.sha256(handle.read()).digest())
        except OSError:
            h.update(b"unreadable")
        h.update(b"\x00")
    return h.hexdigest()


def _encode_findings(findings: List[Finding]) -> List[dict]:
    return [asdict(f) for f in findings]


def _decode_findings(raw: object) -> Optional[List[Finding]]:
    if not isinstance(raw, list):
        return None
    out: List[Finding] = []
    for item in raw:
        if not isinstance(item, dict):
            return None
        try:
            out.append(Finding(**item))
        except TypeError:
            return None
    return out


@dataclass
class CacheStats:
    """Hit/miss counters for one run (surfaced by ``--json``)."""

    file_hits: int = 0
    file_misses: int = 0
    semantic_hits: int = 0
    semantic_misses: int = 0


@dataclass
class AnalysisCache:
    """In-memory cache state plus the load/save protocol."""

    catalog: str = field(default_factory=catalog_fingerprint)
    #: file path -> {"digest": ..., "findings": [raw dicts]}.
    files: Dict[str, dict] = field(default_factory=dict)
    #: project fingerprint -> [raw finding dicts].
    semantic: Dict[str, list] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    dirty: bool = False

    # -- lookup ------------------------------------------------------------

    def file_findings(
        self, path: str, digest: str
    ) -> Optional[List[Finding]]:
        entry = self.files.get(path)
        if entry is None or entry.get("digest") != digest:
            self.stats.file_misses += 1
            return None
        findings = _decode_findings(entry.get("findings"))
        if findings is None:
            self.stats.file_misses += 1
            return None
        self.stats.file_hits += 1
        return findings

    def store_file(
        self, path: str, digest: str, findings: List[Finding]
    ) -> None:
        self.files[path] = {
            "digest": digest,
            "findings": _encode_findings(findings),
        }
        self.dirty = True

    def semantic_findings(
        self, fingerprint: str
    ) -> Optional[List[Finding]]:
        raw = self.semantic.get(fingerprint)
        if raw is None:
            self.stats.semantic_misses += 1
            return None
        findings = _decode_findings(raw)
        if findings is None:
            self.stats.semantic_misses += 1
            return None
        self.stats.semantic_hits += 1
        return findings

    def store_semantic(
        self, fingerprint: str, findings: List[Finding]
    ) -> None:
        # One project fingerprint is live at a time; drop older entries
        # so the cache file does not grow without bound.
        self.semantic = {fingerprint: _encode_findings(findings)}
        self.dirty = True

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "AnalysisCache":
        """Load from disk; any problem yields a fresh empty cache."""
        cache = cls()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(data, dict):
            return cache
        if data.get("catalog") != cache.catalog:
            return cache  # the engine changed: every result is stale
        files = data.get("files")
        if isinstance(files, dict):
            cache.files = {
                str(k): v for k, v in files.items() if isinstance(v, dict)
            }
        semantic = data.get("semantic")
        if isinstance(semantic, dict):
            cache.semantic = {
                str(k): v
                for k, v in semantic.items()
                if isinstance(v, list)
            }
        return cache

    def save(self, path: str) -> None:
        if not self.dirty:
            return
        payload = {
            "catalog": self.catalog,
            "files": self.files,
            "semantic": self.semantic,
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
