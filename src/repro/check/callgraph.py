"""Project-wide function table, call resolution, and summaries.

The semantic rules need three interprocedural facts, each shallow
enough to compute in one pass per function:

* **calls-its-parameter** — a function that invokes one of its own
  parameters (``def sample(now): t = now()``). A caller passing a
  wall-clock function into that parameter is a DET001 violation at the
  call site, even though neither function alone reads the clock.
* **parameter-is-an-obs-name** — a function that forwards a parameter
  into the name slot of an obs facade call (``def note(obs, name):
  obs.inc(name)``). Callers passing string literals get those literals
  checked against the catalog (OBS001), closing the "hide the name in
  a helper" hole.
* **returns-a-set** — a function whose return value is a ``set``.
  Iterating such a return value into an order-sensitive sink is the
  same DET004 hazard as iterating a local set.

Calls resolve syntactically: bare names to same-module functions or
``from``-imported project functions; ``module.func`` attributes through
import aliases. Method calls (``self.x()``, ``obj.x()``) are out of
scope — the dataflow layer handles the receiver-local patterns that
matter for the rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.check.project import ModuleInfo, Project
from repro.check.symbols import SymbolTable, build_symbol_table

#: Receiver tails that look like the obs facade (mirrors ObsNameRule).
OBS_RECEIVERS = {"obs", "_obs", "metrics", "tracer", "registry"}
METRIC_METHODS = {"inc", "set_gauge", "observe"}
EVENT_METHODS = {"event", "span"}


@dataclass
class FunctionInfo:
    """One function or method definition, with its summary."""

    module: ModuleInfo
    qualname: str  # "encode_node" or "Delta.encode"
    node: ast.FunctionDef
    param_names: Tuple[str, ...] = ()
    #: Parameters the body calls as functions.
    calls_params: Set[str] = field(default_factory=set)
    #: Parameters forwarded into a metric-name slot (obs.inc & co).
    metric_name_params: Set[str] = field(default_factory=set)
    #: Parameters forwarded into an event/span-name slot.
    event_name_params: Set[str] = field(default_factory=set)
    #: The function's return value is (sometimes) a set.
    returns_set: bool = False


def _param_names(node: ast.FunctionDef) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return tuple(n for n in names if n not in ("self", "cls"))


def _positional_index(names: Tuple[str, ...], name: str) -> Optional[int]:
    try:
        return names.index(name)
    except ValueError:
        return None


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def summarize_function(info: FunctionInfo) -> None:
    """Fill in the summary fields of ``info`` (idempotent)."""
    params = set(info.param_names)
    set_names: Set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in params:
                info.calls_params.add(func.id)
            if isinstance(func, ast.Attribute) and node.args:
                receiver = func.value
                tail = (
                    receiver.id
                    if isinstance(receiver, ast.Name)
                    else getattr(receiver, "attr", None)
                )
                first = node.args[0]
                if (
                    tail in OBS_RECEIVERS
                    and isinstance(first, ast.Name)
                    and first.id in params
                ):
                    if func.attr in METRIC_METHODS:
                        info.metric_name_params.add(first.id)
                    elif func.attr in EVENT_METHODS:
                        info.event_name_params.add(first.id)
        elif isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_set_expr(node.value, set_names)
            ):
                set_names.add(node.targets[0].id)
        elif isinstance(node, ast.Return) and node.value is not None:
            if _is_set_expr(node.value, set_names):
                info.returns_set = True


@dataclass
class CallGraph:
    """Function table plus symbol tables for every parsed module."""

    project: Project
    tables: Dict[str, SymbolTable] = field(default_factory=dict)
    #: (module name, qualname) -> FunctionInfo.
    functions: Dict[Tuple[str, str], FunctionInfo] = field(
        default_factory=dict
    )

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project=project)
        for module in project.parsed():
            assert module.tree is not None
            table = build_symbol_table(module.tree, module.name)
            graph.tables[module.name] = table
            for stmt in module.tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    graph._add(module, stmt.name, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if isinstance(sub, ast.FunctionDef):
                            graph._add(
                                module, f"{stmt.name}.{sub.name}", sub
                            )
        return graph

    def _add(
        self, module: ModuleInfo, qualname: str, node: ast.FunctionDef
    ) -> None:
        info = FunctionInfo(
            module=module,
            qualname=qualname,
            node=node,
            param_names=_param_names(node),
        )
        summarize_function(info)
        self.functions[(module.name, qualname)] = info

    def table(self, module: ModuleInfo) -> SymbolTable:
        return self.tables[module.name]

    def resolve_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The project function a call targets, when statically clear."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self.functions.get((module.name, func.id))
            if local is not None:
                return local
            table = self.tables.get(module.name)
            if table is None:
                return None
            origin = table.resolve_name(func.id)
            if origin is None or "." not in origin:
                return None
            mod_name, _, fn_name = origin.rpartition(".")
            target = self.project.resolve_module(mod_name)
            if target is None:
                return None
            return self.functions.get((target.name, fn_name))
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            table = self.tables.get(module.name)
            if table is None:
                return None
            mod_origin = table.resolve_name(func.value.id)
            if mod_origin is None:
                return None
            target = self.project.resolve_module(mod_origin)
            if target is None:
                return None
            return self.functions.get((target.name, func.attr))
        return None

    def positional_param(
        self, info: FunctionInfo, index: int
    ) -> Optional[str]:
        if 0 <= index < len(info.param_names):
            return info.param_names[index]
        return None

    def argument_for_param(
        self, info: FunctionInfo, call: ast.Call, param: str
    ) -> Optional[ast.expr]:
        """The argument expression a call binds to ``param``, if spelled."""
        index = _positional_index(info.param_names, param)
        if index is not None and index < len(call.args):
            return call.args[index]
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        return None

    def functions_in(self, module: ModuleInfo) -> List[FunctionInfo]:
        return [
            info
            for (mod, _), info in sorted(self.functions.items())
            if mod == module.name
        ]
