"""Rule configuration: per-path exemptions and suppression comments.

Two mechanisms keep the linter's defaults strict without turning real
design decisions into noise:

* **Per-path exemptions** — rule ids mapped to ``fnmatch`` glob patterns
  over *package-relative* paths (``cli.py``, ``obs/render.py``). The CLI
  is allowed to ``print``; the seeded RNG helper is allowed to import
  :mod:`random`. These live in :data:`DEFAULT_EXEMPTIONS` and callers can
  extend or replace them.

* **Suppression comments** — inline opt-outs for one-off cases, parsed
  from source text (the AST does not carry comments):

  - ``# reprolint: disable=DET001`` suppresses the named rule(s) on that
    line only;
  - ``# reprolint: disable-file=DET001`` anywhere in the file suppresses
    them for the whole file.

  Suppressed findings are still reported (``suppressed=True``), they just
  never fail the run.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Iterable, Sequence, Set, Tuple

#: Rules that whole areas of the tree legitimately break. Patterns match
#: against the path relative to the ``repro`` package root.
DEFAULT_EXEMPTIONS: Dict[str, Tuple[str, ...]] = {
    # User-facing entry points talk to stdout by design.
    "PY003": ("cli.py", "__main__.py", "obs/render.py", "check/*"),
    # The deterministic clock shim is one place wall-clock may live; the
    # wall-clock benchmark lane is the other — measuring real time is its
    # entire point, and its output never feeds simulation state.
    "DET001": ("common/clock.py", "harness/wallclock.py"),
    # The seeded RNG wrapper is the one place `random` may be imported.
    "DET002": ("common/rng.py",),
}

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s-]+)"
)


@dataclass(frozen=True)
class SuppressionComment:
    """One ``# reprolint:`` comment, as written: where and what."""

    lineno: int
    kind: str  # "disable" | "disable-file"
    rules: Tuple[str, ...]


@dataclass
class Suppressions:
    """Parsed suppression comments for one file."""

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    #: Every comment in source order — the hygiene checks (unknown rule
    #: ids, suppressions that no longer match anything) audit these.
    comments: List[SuppressionComment] = field(default_factory=list)

    def covers(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, set())


def _iter_comments(source: str):
    """(lineno, text) of every real comment token.

    Tokenizing (rather than scanning lines) keeps docstrings that merely
    *mention* the suppression syntax from activating suppressions. A
    source that fails to tokenize yields whatever was seen before the
    error — such a file fails to parse anyway (the ``PARSE`` finding).
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_suppressions(source: str) -> Suppressions:
    """Scan a file's comments for ``# reprolint:`` directives."""
    supp = Suppressions()
    for lineno, text in _iter_comments(source):
        for kind, raw_rules in _SUPPRESS_RE.findall(text):
            rules = {r.strip() for r in raw_rules.split(",") if r.strip()}
            supp.comments.append(
                SuppressionComment(
                    lineno=lineno, kind=kind, rules=tuple(sorted(rules))
                )
            )
            if kind == "disable-file":
                supp.file_rules.update(rules)
            else:
                supp.line_rules.setdefault(lineno, set()).update(rules)
    return supp


@dataclass
class CheckConfig:
    """Which rules run where.

    ``exemptions`` maps rule id -> glob patterns (package-relative paths)
    where the rule is silenced entirely. ``only`` restricts the run to a
    subset of rule ids (empty = all registered rules).
    """

    exemptions: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPTIONS)
    )
    only: Tuple[str, ...] = ()

    def rule_enabled(self, rule: str) -> bool:
        return not self.only or rule in self.only

    def exempt(self, rule: str, rel_path: str) -> bool:
        """True when ``rule`` is configured off for this file."""
        rel = rel_path.replace("\\", "/")
        return any(
            fnmatch(rel, pattern)
            for pattern in self.exemptions.get(rule, ())
        )

    def with_exemptions(
        self, extra: Dict[str, Iterable[str]]
    ) -> "CheckConfig":
        merged = {k: tuple(v) for k, v in self.exemptions.items()}
        for rule, patterns in extra.items():
            merged[rule] = merged.get(rule, ()) + tuple(patterns)
        return CheckConfig(exemptions=merged, only=self.only)


def relative_to_package(path: str, package_roots: Sequence[str]) -> str:
    """Path relative to the nearest ``repro`` package root.

    ``src/repro/core/sync_queue.py`` -> ``core/sync_queue.py``. Falls back
    to the path unchanged when no root matches, so globs against absolute
    paths still work for out-of-tree files.
    """
    norm = path.replace("\\", "/")
    for root in package_roots:
        root_norm = root.replace("\\", "/").rstrip("/") + "/"
        if norm.startswith(root_norm):
            return norm[len(root_norm):]
    marker = "/repro/"
    idx = norm.rfind(marker)
    if idx != -1:
        return norm[idx + len(marker):]
    return norm
