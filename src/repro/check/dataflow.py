"""Flow-sensitive intraprocedural dataflow for the semantic rules.

One forward pass per function (and per module top level) tracks a
small abstract domain — just rich enough for the determinism rules:

==============  ========================================================
abstract value  meaning
==============  ========================================================
``MODULE``      the name is bound to a module (``t = time``)
``CLOCK_FN``    a *reference* to a banned wall-clock callable
                (``now = time.time`` — note: not called yet)
``RNG_ROOT``    an un-forked ``DeterministicRandom`` instance
``RNG_FORKED``  the result of ``.fork(label)`` — an independent stream
``SET``         an unordered collection (set/frozenset, and values that
                merely re-shape one: ``list(s)`` keeps the taint,
                ``sorted(s)`` clears it)
``STR``         a known string constant
``STR_CHOICE``  one of several known strings (a dict-literal subscript
                whose values are all string constants)
==============  ========================================================

Branches analyze both arms from a copy of the environment and merge by
agreement (conflicting bindings drop to unknown); loop bodies are
analyzed once with an ``in_loop`` flag — enough precision for the
rules, which all key on "was this value *created* unordered/unforked",
not on loop fixpoints.

The pass does not report findings itself; it collects typed
*observations* that :mod:`repro.check.semantic` turns into findings.
Each observation carries ``via_flow`` where the distinction matters, so
the semantic DET001 rule can skip call sites the per-file
:class:`~repro.check.rules.WallClockRule` already reports (import-alias
resolution alone) and only add the flow-derived ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.callgraph import (
    EVENT_METHODS,
    METRIC_METHODS,
    OBS_RECEIVERS,
    CallGraph,
    FunctionInfo,
)
from repro.check.project import ModuleInfo
from repro.check.rules import WallClockRule
from repro.check.symbols import SymbolTable

BANNED_CLOCKS = WallClockRule._BANNED

#: Builtins whose result forgets iteration order (clears SET taint).
_ORDER_FIXERS = {"sorted", "min", "max", "sum", "len", "any", "all"}
#: Builtins that re-shape a collection but keep its iteration order.
_ORDER_KEEPERS = {"list", "tuple", "iter", "reversed"}

_HEAP_SINKS = {"heapq.heappush", "heapq.heappush_max", "heapq.heapify"}


@dataclass(frozen=True)
class Value:
    kind: str  # MODULE | CLOCK_FN | RNG_ROOT | RNG_FORKED | SET | STR | STR_CHOICE
    payload: Tuple[str, ...] = ()
    via_flow: bool = True


@dataclass
class ClockCall:
    node: ast.AST
    origin: str
    via_flow: bool


@dataclass
class ClockArg:
    node: ast.AST
    origin: str
    callee: str
    param: str


@dataclass
class RngShare:
    node: ast.AST
    var: str
    sites: int
    in_loop: bool


@dataclass
class SetSink:
    node: ast.AST
    iterable: str
    sink: str


@dataclass
class ObsName:
    node: ast.AST
    kind: str  # "metric" | "event"
    values: Tuple[str, ...]


@dataclass
class Observations:
    clock_calls: List[ClockCall] = field(default_factory=list)
    clock_args: List[ClockArg] = field(default_factory=list)
    rng_shares: List[RngShare] = field(default_factory=list)
    set_sinks: List[SetSink] = field(default_factory=list)
    obs_names: List[ObsName] = field(default_factory=list)


def analyze_module(module: ModuleInfo, graph: CallGraph) -> Observations:
    """Run the dataflow pass over every scope of one module."""
    obs = Observations()
    if module.tree is None:
        return obs
    table = graph.table(module)
    # Module top level is a scope of its own (script-style test beds).
    _FlowPass(module, graph, table, obs, params=(),
              self_attrs={}).run(module.tree.body)
    for stmt in module.tree.body:
        if isinstance(stmt, ast.FunctionDef):
            _analyze_function(module, graph, table, obs, stmt, {})
        elif isinstance(stmt, ast.ClassDef):
            self_attrs = _class_attr_env(stmt, table)
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    _analyze_function(
                        module, graph, table, obs, sub, self_attrs
                    )
    return obs


def _analyze_function(
    module: ModuleInfo,
    graph: CallGraph,
    table: SymbolTable,
    obs: Observations,
    node: ast.FunctionDef,
    self_attrs: Dict[str, Value],
) -> None:
    args = node.args
    params = tuple(
        a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
    )
    _FlowPass(
        module, graph, table, obs, params=params, self_attrs=self_attrs
    ).run(node.body)


def _class_attr_env(
    cls: ast.ClassDef, table: SymbolTable
) -> Dict[str, Value]:
    """``self.X`` bindings that carry clock/RNG values, class-wide."""
    attrs: Dict[str, Value] = {}
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            if isinstance(value, (ast.Name, ast.Attribute)):
                origin = table.resolve_expr(value)
                if origin in BANNED_CLOCKS:
                    attrs[target.attr] = Value("CLOCK_FN", (origin,))
            elif _is_rng_ctor(value, table):
                attrs[target.attr] = Value("RNG_ROOT", (target.attr,))
    return attrs


def _is_rng_ctor(node: ast.expr, table: SymbolTable) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "DeterministicRandom":
        return True
    origin = table.resolve_expr(func)
    return origin is not None and origin.endswith(".DeterministicRandom")


class _FlowPass:
    """One scope's forward pass."""

    def __init__(
        self,
        module: ModuleInfo,
        graph: CallGraph,
        table: SymbolTable,
        obs: Observations,
        params: Tuple[str, ...],
        self_attrs: Dict[str, Value],
    ) -> None:
        self.module = module
        self.graph = graph
        self.table = table
        self.obs = obs
        self.params = set(params)
        self.self_attrs = self_attrs
        # var -> [(call node, in_loop)] — RNG_ROOT values handed away.
        self.rng_sites: Dict[str, List[Tuple[ast.AST, bool]]] = {}
        self.rng_flagged: set = set()

    # -- entry -------------------------------------------------------------

    def run(self, body: List[ast.stmt]) -> None:
        env: Dict[str, Value] = {}
        self._exec(body, env, in_loop=False)
        # Un-forked RNG instances shared across >= 2 sites (or one site
        # that a loop re-executes) — report once per variable.
        for var, sites in self.rng_sites.items():
            if var in self.rng_flagged:
                continue
            looped = [s for s in sites if s[1]]
            if len(sites) >= 2:
                self.obs.rng_shares.append(
                    RngShare(sites[1][0], var, len(sites), False)
                )
            elif looped:
                self.obs.rng_shares.append(
                    RngShare(looped[0][0], var, len(sites), True)
                )

    # -- statement walk ----------------------------------------------------

    def _exec(
        self, stmts: List[ast.stmt], env: Dict[str, Value], in_loop: bool
    ) -> None:
        for stmt in stmts:
            self._stmt(stmt, env, in_loop)

    def _stmt(
        self, stmt: ast.stmt, env: Dict[str, Value], in_loop: bool
    ) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is None:
                return
            self._expr(value, env, in_loop)
            abstract = self._classify(value, env)
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if abstract is not None:
                        env[target.id] = abstract
                    else:
                        env.pop(target.id, None)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, env, in_loop)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, env, in_loop)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, env, in_loop)
        elif isinstance(stmt, ast.If):
            then_env = dict(env)
            else_env = dict(env)
            self._expr(stmt.test, env, in_loop)
            self._exec(stmt.body, then_env, in_loop)
            self._exec(stmt.orelse, else_env, in_loop)
            env.clear()
            env.update(_merge(then_env, else_env))
        elif isinstance(stmt, ast.For):
            self._expr(stmt.iter, env, in_loop)
            self._check_set_iteration(stmt, env)
            body_env = dict(env)
            if isinstance(stmt.target, ast.Name):
                body_env.pop(stmt.target.id, None)
            self._exec(stmt.body, body_env, in_loop=True)
            self._exec(stmt.orelse, env, in_loop)
            merged = _merge(body_env, env)  # loop may run zero times
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, env, in_loop)
            body_env = dict(env)
            self._exec(stmt.body, body_env, in_loop=True)
            self._exec(stmt.orelse, env, in_loop)
        elif isinstance(stmt, (ast.With,)):
            for item in stmt.items:
                self._expr(item.context_expr, env, in_loop)
            self._exec(stmt.body, env, in_loop)
        elif isinstance(stmt, ast.Try):
            self._exec(stmt.body, env, in_loop)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec(handler.body, handler_env, in_loop)
            self._exec(stmt.orelse, env, in_loop)
            self._exec(stmt.finalbody, env, in_loop)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested scopes get their own pass (functions) or none
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc, env, in_loop)

    # -- expression walk ---------------------------------------------------

    def _expr(
        self, node: ast.expr, env: Dict[str, Value], in_loop: bool
    ) -> None:
        """Visit an expression for *effects* (calls), recursively."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call(sub, env, in_loop)

    def _call(
        self, call: ast.Call, env: Dict[str, Value], in_loop: bool
    ) -> None:
        func = call.func
        origin, via_flow = self._origin_of(func, env)
        # 1. Wall-clock call through an alias or stored reference
        #    (_origin_of already sees env-bound CLOCK_FN values).
        if origin in BANNED_CLOCKS:
            self.obs.clock_calls.append(ClockCall(call, origin, via_flow))
        # 2. Obs facade call with a non-literal, resolvable name.
        self._check_obs_call(call, env)
        # 3. Interprocedural: arguments flowing into summarized params.
        callee = self.graph.resolve_call(self.module, call)
        if callee is not None:
            self._check_callee_args(call, callee, env)
        # 4. RNG sharing: an un-forked root handed to any callee.
        self._note_rng_args(call, env, in_loop)

    def _check_obs_call(
        self, call: ast.Call, env: Dict[str, Value]
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and call.args):
            return
        receiver = func.value
        tail = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else getattr(receiver, "attr", None)
        )
        if tail not in OBS_RECEIVERS:
            return
        if func.attr in METRIC_METHODS:
            kind = "metric"
        elif func.attr in EVENT_METHODS:
            kind = "event"
        else:
            return
        first = call.args[0]
        if isinstance(first, ast.Constant):
            return  # literal names are the per-file rule's job
        values = self._string_values(first, env)
        if values:
            self.obs.obs_names.append(ObsName(first, kind, values))

    def _check_callee_args(
        self, call: ast.Call, callee: FunctionInfo, env: Dict[str, Value]
    ) -> None:
        for param in callee.calls_params:
            arg = self.graph.argument_for_param(callee, call, param)
            if arg is None or not isinstance(arg, (ast.Name, ast.Attribute)):
                continue
            origin, _ = self._origin_of(arg, env)
            if origin is None and isinstance(arg, ast.Name):
                bound = env.get(arg.id)
                if bound is not None and bound.kind == "CLOCK_FN":
                    origin = bound.payload[0]
            if origin in BANNED_CLOCKS:
                self.obs.clock_args.append(
                    ClockArg(call, origin, callee.qualname, param)
                )
        for param in callee.metric_name_params | callee.event_name_params:
            arg = self.graph.argument_for_param(callee, call, param)
            if arg is None:
                continue
            values = self._string_values(arg, env)
            if values:
                kind = (
                    "metric"
                    if param in callee.metric_name_params
                    else "event"
                )
                self.obs.obs_names.append(ObsName(arg, kind, values))

    def _note_rng_args(
        self, call: ast.Call, env: Dict[str, Value], in_loop: bool
    ) -> None:
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            if not isinstance(arg, ast.Name):
                continue
            bound = env.get(arg.id)
            if bound is not None and bound.kind == "RNG_ROOT":
                self.rng_sites.setdefault(arg.id, []).append(
                    (call, in_loop)
                )

    def _check_set_iteration(
        self, stmt: ast.For, env: Dict[str, Value]
    ) -> None:
        value = self._classify(stmt.iter, env)
        if value is None or value.kind != "SET":
            return
        sink = self._find_order_sink(stmt.body)
        if sink is not None:
            self.obs.set_sinks.append(
                SetSink(stmt, _describe(stmt.iter), sink)
            )

    def _find_order_sink(self, body: List[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                origin = self.table.resolve_expr(func)
                if origin in _HEAP_SINKS:
                    return origin
                if isinstance(func, ast.Name):
                    if func.id in ("heappush", "heapify"):
                        return f"heapq.{func.id}"
                    if func.id == "conflict_path" or (
                        origin is not None
                        and origin.endswith(".conflict_path")
                    ):
                        return "conflict_path"
                if isinstance(func, ast.Attribute) and func.attr in (
                    "encode", "encode_node", "encode_record"
                ):
                    return f"wire encoder .{func.attr}()"
        return None

    # -- classification ----------------------------------------------------

    def _origin_of(
        self, node: ast.expr, env: Dict[str, Value]
    ) -> Tuple[Optional[str], bool]:
        """Dotted origin of a Name/Attribute chain, and how it resolved.

        ``via_flow`` is False when import aliases alone explain the
        origin (the per-file rules already see those sites).
        """
        if isinstance(node, ast.Name):
            bound = env.get(node.id)
            if bound is not None:
                if bound.kind == "MODULE":
                    return bound.payload[0], True
                if bound.kind == "CLOCK_FN":
                    return bound.payload[0], True
                return None, True
            direct = self.table.from_alias.get(
                node.id
            ) or self.table.module_alias.get(node.id)
            if direct is not None:
                return direct, False
            resolved = self.table.resolve_name(node.id)
            if resolved is not None:
                return resolved, True  # via value_alias chains
            return None, False
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            ):
                bound = self.self_attrs[node.attr]
                if bound.kind == "CLOCK_FN":
                    return bound.payload[0], True
                return None, True
            base, via_flow = self._origin_of(node.value, env)
            if base is not None:
                return f"{base}.{node.attr}", via_flow
        return None, False

    def _classify(
        self, node: ast.expr, env: Dict[str, Value]
    ) -> Optional[Value]:
        if isinstance(node, ast.Name):
            bound = env.get(node.id)
            if bound is not None:
                return bound
            if node.id in self.params:
                return None
            origin = self.table.resolve_name(node.id)
            if origin in BANNED_CLOCKS:
                return Value("CLOCK_FN", (origin,))
            if origin is not None and origin in self.table.module_alias.values():
                return Value("MODULE", (origin,))
            const = self.table.constant_value(node.id)
            if isinstance(const, str):
                return Value("STR", (const,))
            choice = self.table.str_choice(node.id)
            if choice is not None:
                return Value("STR_CHOICE", choice)
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return Value("STR", (node.value,))
            return None
        if isinstance(node, (ast.Set, ast.SetComp)):
            return Value("SET")
        if isinstance(node, ast.Attribute):
            origin = self.table.resolve_expr(node)
            if origin in BANNED_CLOCKS:
                return Value("CLOCK_FN", (origin,), via_flow=False)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            ):
                return self.self_attrs[node.attr]
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._classify(node.left, env)
            right = self._classify(node.right, env)
            if (left is not None and left.kind == "SET") or (
                right is not None and right.kind == "SET"
            ):
                return Value("SET")
            return None
        if isinstance(node, ast.Subscript):
            base = self._classify(node.value, env)
            if base is not None and base.kind == "STR_CHOICE":
                return base
            return None
        if isinstance(node, ast.Dict):
            values: List[str] = []
            for v in node.values:
                if isinstance(v, ast.Constant) and isinstance(v.value, str):
                    values.append(v.value)
                else:
                    return None
            if values:
                return Value("STR_CHOICE", tuple(values))
            return None
        if isinstance(node, ast.IfExp):
            then = self._classify(node.body, env)
            other = self._classify(node.orelse, env)
            if then is not None and other is not None:
                strs = _string_payloads(then) + _string_payloads(other)
                if strs and len(strs) == len(then.payload) + len(
                    other.payload
                ):
                    return Value("STR_CHOICE", tuple(strs))
                if then.kind == other.kind:
                    return then
            return None
        if isinstance(node, ast.Call):
            return self._classify_call(node, env)
        return None

    def _classify_call(
        self, call: ast.Call, env: Dict[str, Value]
    ) -> Optional[Value]:
        func = call.func
        if _is_rng_ctor(call, self.table):
            return Value("RNG_ROOT")
        if isinstance(func, ast.Attribute) and func.attr == "fork":
            receiver = self._classify(func.value, env)
            if receiver is not None and receiver.kind in (
                "RNG_ROOT", "RNG_FORKED"
            ):
                return Value("RNG_FORKED")
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return Value("SET")
            if func.id in _ORDER_FIXERS:
                return None
            if func.id in _ORDER_KEEPERS and call.args:
                inner = self._classify(call.args[0], env)
                if inner is not None and inner.kind == "SET":
                    return Value("SET")
                return None
        if isinstance(func, ast.Attribute) and func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
            "copy",
        ):
            receiver = self._classify(func.value, env)
            if receiver is not None and receiver.kind == "SET":
                return Value("SET")
        callee = self.graph.resolve_call(self.module, call)
        if callee is not None and callee.returns_set:
            return Value("SET")
        return None

    def _string_values(
        self, node: ast.expr, env: Dict[str, Value]
    ) -> Tuple[str, ...]:
        value = self._classify(node, env)
        if value is None:
            return ()
        if value.kind in ("STR", "STR_CHOICE"):
            return value.payload
        return ()


def _string_payloads(value: Value) -> List[str]:
    if value.kind in ("STR", "STR_CHOICE"):
        return list(value.payload)
    return []


def _merge(a: Dict[str, Value], b: Dict[str, Value]) -> Dict[str, Value]:
    """Join two branch environments: keep only agreeing bindings."""
    out: Dict[str, Value] = {}
    for name, value in a.items():
        if b.get(name) == value:
            out[name] = value
    return out


def _describe(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on real ASTs
        return "<expression>"
