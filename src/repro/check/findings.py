"""The shared findings model for both `repro check` layers.

The static AST linter (:mod:`repro.check.linter`) and the trace invariant
verifier (:mod:`repro.check.invariants`) report through one
:class:`Finding` shape, so CI, the CLI, and tests consume a single JSON
schema and one human report regardless of which layer produced a result.

Severities form a ladder (``advice`` < ``warning`` < ``error``); the
caller picks a *gate* severity and :func:`gate` answers whether the run
should fail. Suppressed findings (``# reprolint: disable=RULE`` comments)
are carried through with ``suppressed=True`` so a ``--show-suppressed``
style consumer can still display them, but they never trip the gate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Sequence

#: Severity ladder, weakest first. Index = rank.
SEVERITIES = ("advice", "warning", "error")


def severity_rank(severity: str) -> int:
    """Position on the ladder; raises ``ValueError`` for unknown names."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; pick one of {SEVERITIES}"
        ) from None


@dataclass
class Finding:
    """One problem found by a rule or an invariant check.

    ``rule`` is the stable id (``DET001``, ``INV-EXACTLY-ONCE``, ...);
    ``path`` is the file (source file for lint, trace file for
    invariants); ``line`` is 1-based (0 = the whole file); ``hint`` is the
    rule's autofix hint — what a fix usually looks like, not a promise.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    hint: str = ""
    suppressed: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path


@dataclass
class FindingSummary:
    """Counts backing the one-line verdict at the end of a report."""

    total: int = 0
    suppressed: int = 0
    by_severity: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, findings: Iterable[Finding]) -> "FindingSummary":
        summary = cls()
        for finding in findings:
            summary.total += 1
            if finding.suppressed:
                summary.suppressed += 1
                continue
            summary.by_severity[finding.severity] = (
                summary.by_severity.get(finding.severity, 0) + 1
            )
        return summary


def active(findings: Iterable[Finding]) -> List[Finding]:
    """The findings that count (suppressions dropped)."""
    return [f for f in findings if not f.suppressed]


def gate(findings: Iterable[Finding], fail_on: str = "warning") -> bool:
    """True when any unsuppressed finding is at or above ``fail_on``."""
    threshold = severity_rank(fail_on)
    return any(
        severity_rank(f.severity) >= threshold for f in active(findings)
    )


def to_json(findings: Sequence[Finding]) -> str:
    """The findings as a JSON document (stable key order)."""
    return json.dumps(
        {
            "findings": [asdict(f) for f in findings],
            "summary": asdict(FindingSummary.of(findings)),
        },
        indent=2,
        sort_keys=True,
    )


def human_report(
    findings: Sequence[Finding], *, show_suppressed: bool = False
) -> str:
    """A terminal-friendly report, one line per finding plus a verdict."""
    lines: List[str] = []
    shown = [f for f in findings if show_suppressed or not f.suppressed]
    for finding in sorted(
        shown, key=lambda f: (f.path, f.line, f.rule, f.message)
    ):
        mark = " [suppressed]" if finding.suppressed else ""
        lines.append(
            f"{finding.location()}: {finding.severity} "
            f"{finding.rule}{mark}: {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = FindingSummary.of(findings)
    if summary.by_severity:
        counts = ", ".join(
            f"{summary.by_severity[s]} {s}"
            for s in reversed(SEVERITIES)
            if s in summary.by_severity
        )
        verdict = f"{counts}"
        if summary.suppressed:
            verdict += f" ({summary.suppressed} suppressed)"
    else:
        verdict = "clean" + (
            f" ({summary.suppressed} suppressed)" if summary.suppressed else ""
        )
    lines.append(verdict)
    return "\n".join(lines)
