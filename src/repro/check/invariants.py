"""Layer 2: protocol invariants verified over recorded JSONL traces.

Where the AST linter (layer 1) checks what the *code* says, this module
checks what a *run* actually did. Each invariant is declared as an
:class:`InvariantSpec` — id, prose statement, the witness events that
make it applicable — plus a checker that scans a loaded
:class:`~repro.obs.analyze.TraceDoc` in emission order and returns
violations. A trace that never emits an invariant's witness events gets
status ``skipped`` (e.g. a fault-free replay has no transport and thus no
envelope stream), never a false ``ok``.

The catalog (ids are stable; CI and the docs reference them):

==================  =====================================================
id                  statement
==================  =====================================================
INV-EXACTLY-ONCE    the server applies each (client, msg_id) at most once;
                    retransmits surface as ``duplicate=true`` drops
INV-CAUSAL-FIFO     per client, fresh envelopes apply in msg_id order with
                    no gaps: 1, 2, 3, ... (causal FIFO delivery)
INV-VERSION-MONO    per client, accepted version counters strictly
                    increase (the ``<CliID, VerCnt>`` stamp order)
INV-JOURNAL-ORDER   a node's journal record is durable before the node
                    ships (write-ahead: ``journal.write`` precedes
                    ``queue.node.shipped`` for the same seq)
INV-PACKED-FROZEN   a packed write node is never mutated again (no
                    ``queue.node.coalesced`` after ``queue.node.packed``)
INV-RELATION-LIFE   every relation-table consume (match / expire /
                    invalidate) hits an entry a prior insert created and
                    that was not already consumed
INV-SHARD-HOME      envelope witness events are emitted by the origin
                    client's home shard (``shard`` == ``home`` on every
                    ``server.envelope``), so dedup state never splits
INV-MIGRATE-SAFE    every ``server.shard.detach`` re-attaches exactly
                    once with no version loss, and no version is
                    accepted for the path while the bundle is in flight
==================  =====================================================

Scope note: journal and relation events carry no client attribute, so
those two invariants key on seq / src globally. That is exact for the
single-client smoke traces CI verifies; a multi-client trace with
colliding seq spaces should be verified per client trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.check.findings import Finding
from repro.obs.analyze import TraceDoc


@dataclass(frozen=True)
class InvariantSpec:
    """One declarative invariant: identity plus applicability."""

    id: str
    statement: str
    #: Event names whose presence makes the invariant applicable. A trace
    #: containing none of them yields status "skipped".
    witnesses: Tuple[str, ...]
    check: Callable[["TraceDoc"], List[str]]
    #: Attrs at least one witness event must carry for the invariant to
    #: apply. Traces recorded before an event grew an attribute (or by
    #: emitters that never stamp it) are "skipped", never a vacuous "ok".
    requires_attrs: Tuple[str, ...] = ()


@dataclass
class InvariantResult:
    """Outcome of evaluating one invariant over one trace."""

    id: str
    statement: str
    status: str  # "ok" | "violated" | "skipped"
    violations: List[str] = field(default_factory=list)
    witnesses_seen: int = 0


def _events(doc: TraceDoc, *names: str) -> List[dict]:
    wanted = set(names)
    return [r for r in doc.point_events() if r.get("name") in wanted]


def _check_exactly_once(doc: TraceDoc) -> List[str]:
    """At most one duplicate=False server.envelope per (client, msg_id)."""
    violations: List[str] = []
    applied: Dict[Tuple[object, object], int] = {}
    for record in _events(doc, "server.envelope"):
        attrs = record.get("attrs", {})
        if attrs.get("duplicate"):
            continue
        key = (attrs.get("client"), attrs.get("msg_id"))
        applied[key] = applied.get(key, 0) + 1
        if applied[key] == 2:  # report once per offending key
            violations.append(
                f"server applied msg_id {key[1]} from client {key[0]!r} "
                f"more than once (second fresh apply at ts={record.get('ts')}"
                f", attempt={attrs.get('attempt')}) — dedup failed"
            )
    return violations


def _check_causal_fifo(doc: TraceDoc) -> List[str]:
    """Fresh msg_ids per client form the exact sequence 1, 2, 3, ..."""
    violations: List[str] = []
    next_expected: Dict[object, int] = {}
    flagged: Set[object] = set()
    for record in _events(doc, "server.envelope"):
        attrs = record.get("attrs", {})
        if attrs.get("duplicate"):
            continue
        client = attrs.get("client")
        msg_id = int(attrs.get("msg_id", -1))
        expected = next_expected.get(client, 1)
        if msg_id != expected and client not in flagged:
            flagged.add(client)
            kind = "gap" if msg_id > expected else "reordering"
            violations.append(
                f"client {client!r} applied msg_id {msg_id} where "
                f"{expected} was due (ts={record.get('ts')}) — FIFO "
                f"delivery broke ({kind})"
            )
        next_expected[client] = max(expected, msg_id + 1)
    return violations


def _check_version_monotone(doc: TraceDoc) -> List[str]:
    """Accepted version counters strictly increase per client."""
    violations: List[str] = []
    last: Dict[object, int] = {}
    for record in _events(doc, "server.version.accepted"):
        attrs = record.get("attrs", {})
        client = attrs.get("client")
        counter = int(attrs.get("counter", -1))
        prev = last.get(client)
        if prev is not None and counter <= prev:
            violations.append(
                f"client {client!r} accepted counter {counter} after {prev} "
                f"for path {attrs.get('path')!r} (ts={record.get('ts')}) — "
                "version stamps must strictly increase"
            )
        last[client] = max(prev if prev is not None else counter, counter)
    return violations


def _check_journal_order(doc: TraceDoc) -> List[str]:
    """Every shipped seq has an earlier journal.write kind=node record."""
    violations: List[str] = []
    journaled: Set[str] = set()
    for record in _events(
        doc, "journal.write", "queue.node.shipped"
    ):
        attrs = record.get("attrs", {})
        if record.get("name") == "journal.write":
            if attrs.get("kind") == "node":
                journaled.add(str(attrs.get("ref")))
        else:
            seq = str(attrs.get("seq"))
            if seq not in journaled:
                violations.append(
                    f"node seq {seq} (path {attrs.get('path')!r}) shipped "
                    f"at ts={record.get('ts')} with no prior journal.write "
                    "— the write-ahead contract broke"
                )
    return violations


def _check_packed_frozen(doc: TraceDoc) -> List[str]:
    """No queue.node.coalesced for a seq after its queue.node.packed."""
    violations: List[str] = []
    packed: Set[object] = set()
    for record in _events(
        doc, "queue.node.packed", "queue.node.coalesced"
    ):
        attrs = record.get("attrs", {})
        seq = attrs.get("seq")
        if record.get("name") == "queue.node.packed":
            packed.add(seq)
        elif seq in packed:
            violations.append(
                f"node seq {seq} (path {attrs.get('path')!r}) coalesced a "
                f"write at ts={record.get('ts')} after it was packed — "
                "packed nodes are immutable"
            )
    return violations


def _check_shard_home(doc: TraceDoc) -> List[str]:
    """Envelope witness events are emitted by the client's home shard.

    The dedup table lives on the home shard; an envelope noted anywhere
    else means exactly-once is being judged against a partial stream.
    ``shard`` (the emitting server's identity) and ``home`` (the
    router's derivation) are stamped independently, so either drifting
    shows up as a mismatch.
    """
    violations: List[str] = []
    flagged: Set[object] = set()
    for record in _events(doc, "server.envelope"):
        attrs = record.get("attrs", {})
        if "shard" not in attrs or "home" not in attrs:
            continue  # old-format event: requires_attrs already gated
        shard, home = attrs.get("shard"), attrs.get("home")
        client = attrs.get("client")
        if shard != home and client not in flagged:
            flagged.add(client)
            violations.append(
                f"client {client!r}'s envelope (msg_id "
                f"{attrs.get('msg_id')}) was noted on shard {shard} but "
                f"the router homes the client on shard {home} "
                f"(ts={record.get('ts')}) — dedup state is split across "
                "shards"
            )
    return violations


def _check_migration_safety(doc: TraceDoc) -> List[str]:
    """Every detach is matched by an attach, loss-free and write-free.

    A detached bundle must re-home exactly once (no double-detach, no
    attach out of nowhere), the destination's post-merge lineage must be
    at least the lineage that left the source, and no version may be
    accepted for the path while it is in flight. A trace ending with a
    pending detach is a violation — the file vanished.
    """
    violations: List[str] = []
    #: path -> (detach versions, detach ts) while in flight.
    pending: Dict[object, Tuple[int, object]] = {}
    for record in _events(
        doc,
        "server.shard.detach",
        "server.shard.attach",
        "server.version.accepted",
    ):
        name = record.get("name")
        attrs = record.get("attrs", {})
        path = attrs.get("path")
        ts = record.get("ts")
        if name == "server.shard.detach":
            if path in pending:
                violations.append(
                    f"path {path!r} detached again at ts={ts} while "
                    "still in flight — the first bundle was lost"
                )
            pending[path] = (int(attrs.get("versions", 0)), ts)
        elif name == "server.shard.attach":
            if path not in pending:
                violations.append(
                    f"path {path!r} attached at ts={ts} with no prior "
                    "detach — a bundle materialized out of nowhere"
                )
                continue
            detached, _ = pending.pop(path)
            attached = int(attrs.get("versions", 0))
            if attached < detached:
                violations.append(
                    f"path {path!r} lost history in flight: detached "
                    f"with {detached} versions, attached with "
                    f"{attached} (ts={ts})"
                )
        else:  # server.version.accepted
            if path in pending:
                violations.append(
                    f"path {path!r} accepted a version at ts={ts} while "
                    "mid-migration — writes must not land between "
                    "detach and attach"
                )
    for path, (_, ts) in sorted(
        pending.items(), key=lambda item: str(item[0])
    ):
        violations.append(
            f"path {path!r} was detached at ts={ts} and never "
            "re-attached — the file vanished with the trace"
        )
    return violations


def _check_relation_lifecycle(doc: TraceDoc) -> List[str]:
    """Consumes (match/expire/invalidate) hit a live inserted entry.

    An insert over a live entry is a legal supersede; an entry still live
    when the trace ends is legal too (crash-cut traces stop mid-run).
    """
    violations: List[str] = []
    live: Set[object] = set()
    for record in _events(
        doc,
        "relation.insert",
        "relation.match",
        "relation.expire",
        "relation.invalidate",
    ):
        attrs = record.get("attrs", {})
        src = attrs.get("src")
        if record.get("name") == "relation.insert":
            live.add(src)
        elif src in live:
            live.discard(src)
        else:
            violations.append(
                f"{record.get('name')} for src {src!r} at "
                f"ts={record.get('ts')} hit no live entry — entries must "
                "be consumed exactly once after an insert"
            )
    return violations


#: The declarative catalog, in report order.
INVARIANTS: Tuple[InvariantSpec, ...] = (
    InvariantSpec(
        id="INV-EXACTLY-ONCE",
        statement="the server applies each (client, msg_id) at most once",
        witnesses=("server.envelope",),
        check=_check_exactly_once,
    ),
    InvariantSpec(
        id="INV-CAUSAL-FIFO",
        statement="per client, fresh envelopes apply in msg_id order, gap-free",
        witnesses=("server.envelope",),
        check=_check_causal_fifo,
    ),
    InvariantSpec(
        id="INV-VERSION-MONO",
        statement="per client, accepted version counters strictly increase",
        witnesses=("server.version.accepted",),
        check=_check_version_monotone,
    ),
    InvariantSpec(
        id="INV-JOURNAL-ORDER",
        statement="a node's journal record precedes its ship (write-ahead)",
        witnesses=("journal.write",),
        check=_check_journal_order,
    ),
    InvariantSpec(
        id="INV-PACKED-FROZEN",
        statement="a packed write node is never coalesced again",
        witnesses=("queue.node.packed",),
        check=_check_packed_frozen,
    ),
    InvariantSpec(
        id="INV-RELATION-LIFE",
        statement="relation entries are consumed at most once, after an insert",
        witnesses=("relation.insert", "relation.match", "relation.expire",
                   "relation.invalidate"),
        check=_check_relation_lifecycle,
    ),
    InvariantSpec(
        id="INV-SHARD-HOME",
        statement=(
            "envelope witness events are emitted by the origin client's "
            "home shard (dedup state never splits across shards)"
        ),
        witnesses=("server.envelope",),
        check=_check_shard_home,
        requires_attrs=("shard", "home"),
    ),
    InvariantSpec(
        id="INV-MIGRATE-SAFE",
        statement=(
            "every shard detach re-attaches exactly once, loses no "
            "version history, and no write lands mid-flight"
        ),
        witnesses=("server.shard.detach", "server.shard.attach"),
        check=_check_migration_safety,
    ),
)

INVARIANTS_BY_ID: Dict[str, InvariantSpec] = {
    spec.id: spec for spec in INVARIANTS
}


def verify_trace(doc: TraceDoc) -> List[InvariantResult]:
    """Evaluate the whole catalog over one loaded trace."""
    results: List[InvariantResult] = []
    present: Dict[str, int] = {}
    for record in doc.point_events():
        name = str(record.get("name"))
        present[name] = present.get(name, 0) + 1
    for spec in INVARIANTS:
        seen = sum(present.get(w, 0) for w in spec.witnesses)
        if seen and spec.requires_attrs:
            # Old-format traces whose witness events predate the attrs
            # the checker needs must skip, not vacuously pass.
            seen = sum(
                1
                for record in _events(doc, *spec.witnesses)
                if all(
                    attr in record.get("attrs", {})
                    for attr in spec.requires_attrs
                )
            )
        if seen == 0:
            results.append(
                InvariantResult(
                    id=spec.id,
                    statement=spec.statement,
                    status="skipped",
                )
            )
            continue
        violations = spec.check(doc)
        results.append(
            InvariantResult(
                id=spec.id,
                statement=spec.statement,
                status="violated" if violations else "ok",
                violations=violations,
                witnesses_seen=seen,
            )
        )
    return results


def results_to_findings(
    results: List[InvariantResult], trace_path: str
) -> List[Finding]:
    """Violated invariants as findings (shared report model with lint)."""
    findings: List[Finding] = []
    for result in results:
        for violation in result.violations:
            findings.append(
                Finding(
                    rule=result.id,
                    severity="error",
                    path=trace_path,
                    line=0,
                    message=violation,
                    hint=result.statement,
                )
            )
    return findings


def report_results(
    results: List[InvariantResult], trace_path: str
) -> str:
    """Human summary: one line per invariant, then the violations."""
    lines = [f"trace {trace_path}:"]
    for result in results:
        if result.status == "skipped":
            lines.append(
                f"  SKIP {result.id}: no witness events in this trace"
            )
        elif result.status == "ok":
            lines.append(
                f"  ok   {result.id}: {result.statement} "
                f"({result.witnesses_seen} witness events)"
            )
        else:
            lines.append(f"  FAIL {result.id}: {result.statement}")
            for violation in result.violations:
                lines.append(f"         {violation}")
    return "\n".join(lines)
