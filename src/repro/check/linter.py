"""The lint engine: run the rule catalog over files or source text.

:func:`lint_source` is the unit — parse once, run every enabled rule's
visitor, then mark findings covered by ``# reprolint:`` comments as
suppressed. :func:`lint_paths` walks files and directories, computes
package-relative paths for the exemption globs, and concatenates results
in a deterministic (sorted) order.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.check.config import (
    CheckConfig,
    parse_suppressions,
    relative_to_package,
)
from repro.check.findings import Finding
from repro.check.rules import ALL_RULES


def lint_source(
    source: str,
    path: str = "<string>",
    rel_path: Optional[str] = None,
    config: Optional[CheckConfig] = None,
) -> List[Finding]:
    """Lint one file's source text; returns findings (incl. suppressed)."""
    config = config or CheckConfig()
    rel = rel_path if rel_path is not None else path
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                severity="error",
                path=path,
                line=exc.lineno or 0,
                message=f"syntax error: {exc.msg}",
                hint="the file must parse before any rule can run",
            )
        ]
    findings: List[Finding] = []
    for rule_cls in ALL_RULES:
        if not config.rule_enabled(rule_cls.id):
            continue
        if config.exempt(rule_cls.id, rel):
            continue
        rule = rule_cls(path=path)
        rule.visit(tree)
        findings.extend(rule.findings)
    suppressions = parse_suppressions(source)
    for finding in findings:
        if suppressions.covers(finding.rule, finding.line):
            finding.suppressed = True
    findings.sort(key=lambda f: (f.line, f.rule, f.message))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git"}
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Sequence[str],
    config: Optional[CheckConfig] = None,
    package_roots: Sequence[str] = (),
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``.

    ``package_roots`` are directories whose children are package-relative
    for exemption matching (e.g. ``src/repro``); by default the segment
    after the last ``/repro/`` in each path is used.
    """
    config = config or CheckConfig()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        rel = relative_to_package(file_path, package_roots)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="IO",
                    severity="error",
                    path=file_path,
                    line=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(
            lint_source(source, path=file_path, rel_path=rel, config=config)
        )
    return findings
