"""The lint engine: run the rule catalog over files or source text.

The engine is split so every expensive result is a pure function of
file contents and therefore cacheable (:mod:`repro.check.cache`):

* :func:`raw_lint_source` — parse once, run **every** rule, mark
  ``# reprolint:`` suppressions. Depends only on the file's bytes.
* config filtering — ``--only`` and the exemption globs select from
  the raw findings per run (``PARSE``/``IO`` always survive).
* suppression hygiene — each ``# reprolint:`` comment is audited:
  unknown rule ids are ``CFG001`` warnings, comments that match no
  finding are ``CFG002`` (stale) warnings. Skipped under ``--only``,
  where most rules did not run and staleness cannot be judged.
* the semantic layer (:mod:`repro.check.semantic`) — project-wide
  dataflow and wire-symmetry findings, keyed by the whole-project
  fingerprint in the cache. :func:`lint_paths` runs it by default;
  :func:`lint_source` stays per-file.
"""

from __future__ import annotations

import ast
import hashlib
import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.check.cache import AnalysisCache
from repro.check.config import (
    CheckConfig,
    SuppressionComment,
    Suppressions,
    parse_suppressions,
    relative_to_package,
)
from repro.check.findings import Finding
from repro.check.invariants import INVARIANTS_BY_ID
from repro.check.rules import ALL_RULES, RULES_BY_ID
from repro.check.semantic import (
    SEMANTIC_RULES_BY_ID,
    analyze_project,
    apply_config,
)

#: Findings the engine synthesizes without a catalog rule class.
ENGINE_FINDINGS = ("PARSE", "IO", "CFG001", "CFG002")

#: Every id a ``# reprolint: disable=`` comment may legitimately name.
KNOWN_SUPPRESSIBLE = (
    frozenset(RULES_BY_ID)
    | frozenset(SEMANTIC_RULES_BY_ID)
    | frozenset(INVARIANTS_BY_ID)
    | frozenset(ENGINE_FINDINGS)
)

_SORT_KEY = lambda f: (f.line, f.rule, f.message)  # noqa: E731


def raw_lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Every rule's findings for one file, suppressions marked.

    The result depends only on ``source`` — no configuration — which is
    what makes it safe to cache by content digest.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                severity="error",
                path=path,
                line=exc.lineno or 0,
                message=f"syntax error: {exc.msg}",
                hint="the file must parse before any rule can run",
            )
        ]
    findings: List[Finding] = []
    for rule_cls in ALL_RULES:
        rule = rule_cls(path=path)
        rule.visit(tree)
        findings.extend(rule.findings)
    suppressions = parse_suppressions(source)
    for finding in findings:
        if suppressions.covers(finding.rule, finding.line):
            finding.suppressed = True
    findings.sort(key=_SORT_KEY)
    return findings


def filter_findings(
    findings: Iterable[Finding], config: CheckConfig, rel_path: str
) -> List[Finding]:
    """Select the raw findings this run's configuration keeps."""
    out: List[Finding] = []
    for finding in findings:
        if finding.rule in ("PARSE", "IO"):
            out.append(finding)
            continue
        if not config.rule_enabled(finding.rule):
            continue
        if config.exempt(finding.rule, rel_path):
            continue
        out.append(finding)
    return out


def _comment_matches(
    finding: Finding, comment: SuppressionComment, rule: str
) -> bool:
    if finding.rule != rule:
        return False
    if comment.kind == "disable-file":
        return True
    return finding.line == comment.lineno


def hygiene_findings(
    path: str,
    suppressions: Suppressions,
    raw_findings: Sequence[Finding],
) -> List[Finding]:
    """Audit the suppression comments of one file.

    ``raw_findings`` must be the *unfiltered* findings for the file
    (per-file plus any semantic ones), so a comment is judged against
    everything the catalog can say about the file, not against what the
    current configuration happens to keep.
    """
    findings: List[Finding] = []
    for comment in suppressions.comments:
        for rule in comment.rules:
            if rule not in KNOWN_SUPPRESSIBLE:
                findings.append(
                    Finding(
                        rule="CFG001",
                        severity="warning",
                        path=path,
                        line=comment.lineno,
                        message=(
                            f"suppression names unknown rule id `{rule}`"
                        ),
                        hint=(
                            "check docs/static-analysis.md for the rule "
                            "catalog; a typo here silently disables "
                            "nothing"
                        ),
                    )
                )
                continue
            if not any(
                _comment_matches(f, comment, rule) for f in raw_findings
            ):
                where = (
                    "anywhere in the file"
                    if comment.kind == "disable-file"
                    else "on this line"
                )
                findings.append(
                    Finding(
                        rule="CFG002",
                        severity="warning",
                        path=path,
                        line=comment.lineno,
                        message=(
                            f"suppression of `{rule}` matches no finding "
                            f"{where} — stale"
                        ),
                        hint=(
                            "delete the comment (or the part naming "
                            f"`{rule}`); stale suppressions hide future "
                            "regressions"
                        ),
                    )
                )
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rel_path: Optional[str] = None,
    config: Optional[CheckConfig] = None,
) -> List[Finding]:
    """Lint one file's source text; returns findings (incl. suppressed).

    Per-file rules plus suppression hygiene; the project-wide semantic
    rules need the whole tree and only run under :func:`lint_paths`.
    """
    config = config or CheckConfig()
    rel = rel_path if rel_path is not None else path
    raw = raw_lint_source(source, path=path)
    findings = filter_findings(raw, config, rel)
    if not config.only:
        suppressions = parse_suppressions(source)
        if suppressions.comments:
            findings = findings + hygiene_findings(path, suppressions, raw)
    findings.sort(key=_SORT_KEY)
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git"}
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(dict.fromkeys(out))


def _source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def lint_paths(
    paths: Sequence[str],
    config: Optional[CheckConfig] = None,
    package_roots: Sequence[str] = (),
    semantic: bool = True,
    cache: Optional[AnalysisCache] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``.

    ``package_roots`` are directories whose children are package-relative
    for exemption matching (e.g. ``src/repro``); by default the segment
    after the last ``/repro/`` in each path is used. ``semantic`` adds
    the project-wide dataflow and wire-symmetry rules; ``cache`` (an
    :class:`AnalysisCache`) skips re-analysis of unchanged content.
    """
    config = config or CheckConfig()
    findings: List[Finding] = []
    sources: Dict[str, str] = {}
    raw_by_path: Dict[str, List[Finding]] = {}
    files = iter_python_files(paths)
    for file_path in files:
        rel = relative_to_package(file_path, package_roots)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="IO",
                    severity="error",
                    path=file_path,
                    line=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        sources[file_path] = source
        digest = _source_digest(source)
        raw = (
            cache.file_findings(file_path, digest)
            if cache is not None
            else None
        )
        if raw is None:
            raw = raw_lint_source(source, path=file_path)
            if cache is not None:
                cache.store_file(file_path, digest, raw)
        raw_by_path[file_path] = raw
        findings.extend(filter_findings(raw, config, rel))

    semantic_raw: List[Finding] = []
    if semantic and sources:
        from repro.check.project import load_project

        project = load_project(
            [p for p in files if p in sources],
            package_roots=package_roots,
            sources=sources,
        )
        fingerprint = project.fingerprint()
        cached = (
            cache.semantic_findings(fingerprint)
            if cache is not None
            else None
        )
        if cached is None:
            semantic_raw = analyze_project(project)
            if cache is not None:
                cache.store_semantic(fingerprint, semantic_raw)
        else:
            semantic_raw = cached
        findings.extend(apply_config(semantic_raw, project, config))

    if not config.only:
        for file_path, source in sources.items():
            suppressions = parse_suppressions(source)
            if not suppressions.comments:
                continue
            raw_all = raw_by_path.get(file_path, []) + [
                f for f in semantic_raw if f.path == file_path
            ]
            findings.extend(
                hygiene_findings(file_path, suppressions, raw_all)
            )
    return findings
