"""Whole-project loading for the semantic analysis layer.

The per-file rules in :mod:`repro.check.rules` see one AST at a time;
the semantic rules (:mod:`repro.check.semantic`,
:mod:`repro.check.wiresym`) reason across files — aliased clocks that
cross a function boundary, wire encoders whose decoder lives three
helpers away. This module gives them one parsed view of the tree:
every ``.py`` file read and parsed exactly once, addressable both by
filesystem path and by dotted module name, with the import graph
resolved far enough to map ``from repro.common import wire`` back to
the loaded module it names.

The loader is deliberately tolerant: a file that does not parse is
recorded with ``tree=None`` (the per-file engine already reports the
``PARSE`` finding); semantic rules simply skip it.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check.config import relative_to_package


@dataclass
class ModuleInfo:
    """One loaded source file."""

    #: Dotted module name (``repro.core.recovery``) when derivable from
    #: the path, else the package-relative path with slashes.
    name: str
    path: str
    rel_path: str
    source: str
    tree: Optional[ast.Module]

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()


def module_name_for(path: str, rel_path: str) -> str:
    """Best-effort dotted name for a file.

    ``core/recovery.py`` (package-relative) -> ``repro.core.recovery``;
    package ``__init__`` files name the package itself. Files outside
    any recognised package root keep their relative path as the name —
    unique is what matters, prettiness is not.
    """
    rel = rel_path.replace("\\", "/")
    if rel.endswith(".py"):
        rel = rel[: -len(".py")]
    if rel.endswith("/__init__"):
        rel = rel[: -len("/__init__")]
    if rel == "__init__":
        return "repro"
    dotted = rel.replace("/", ".")
    if rel_path != path:
        # A package-relative path: anchor it under the repro package.
        return f"repro.{dotted}"
    return dotted


@dataclass
class Project:
    """Every module of one analysis run, parsed once."""

    modules: List[ModuleInfo] = field(default_factory=list)
    by_name: Dict[str, ModuleInfo] = field(default_factory=dict)
    by_path: Dict[str, ModuleInfo] = field(default_factory=dict)

    def add(self, info: ModuleInfo) -> None:
        self.modules.append(info)
        self.by_name[info.name] = info
        self.by_path[info.path] = info

    def parsed(self) -> List[ModuleInfo]:
        """The modules whose source parsed (semantic rules scan these)."""
        return [m for m in self.modules if m.tree is not None]

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """The loaded module a dotted import name refers to, if any."""
        return self.by_name.get(dotted)

    def fingerprint(self) -> str:
        """Content hash of the whole project, for the analysis cache."""
        h = hashlib.sha256()
        for module in sorted(self.modules, key=lambda m: m.rel_path):
            h.update(module.rel_path.encode("utf-8"))
            h.update(b"\x00")
            h.update(module.digest.encode("ascii"))
            h.update(b"\x00")
        return h.hexdigest()


def load_project(
    files: Sequence[str],
    package_roots: Sequence[str] = (),
    sources: Optional[Dict[str, str]] = None,
) -> Project:
    """Parse ``files`` into a :class:`Project`.

    ``sources`` lets a caller that already read the files (the lint
    engine does) hand over the text so nothing is read twice; files
    missing from the mapping are read from disk. Unreadable files are
    skipped — the per-file engine owns the ``IO`` finding.
    """
    project = Project()
    for path in files:
        if sources is not None and path in sources:
            source = sources[path]
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                continue
        rel = relative_to_package(path, package_roots)
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=path)
        except SyntaxError:
            tree = None
        project.add(
            ModuleInfo(
                name=module_name_for(path, rel),
                path=path,
                rel_path=rel,
                source=source,
                tree=tree,
            )
        )
    return project


def project_from_sources(named_sources: Dict[str, str]) -> Project:
    """A project straight from in-memory sources (tests use this)."""
    project = Project()
    for rel, source in named_sources.items():
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=rel)
        except SyntaxError:
            tree = None
        project.add(
            ModuleInfo(
                name=module_name_for(rel, rel),
                path=rel,
                rel_path=rel,
                source=source,
                tree=tree,
            )
        )
    return project
