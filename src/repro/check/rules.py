"""The static rule catalog: one AST visitor class per rule.

Every rule is an :class:`ast.NodeVisitor` subclass with a stable ``id``,
a default ``severity``, a one-line ``description`` and an autofix
``hint``. The engine (:mod:`repro.check.linter`) instantiates a rule per
file, runs ``visit(tree)`` and collects ``rule.findings``.

The catalog enforces the determinism and protocol-hygiene contract of
this repository:

========  =========  ====================================================
id        severity   what it flags
========  =========  ====================================================
DET001    error      wall-clock reads (``time.time``, ``datetime.now``,
                     argless ``today`` ...) outside the clock shim
DET002    error      unseeded randomness (module-level ``random.*``,
                     ``os.urandom``, ``uuid.uuid1/4``, ``secrets``)
                     outside ``repro.common.rng``
PY001     error      mutable default arguments
PY002     error      bare ``except:`` clauses
PY003     warning    ``print`` in library code (CLI/render exempt)
OBS001    error      ``obs.event``/``obs.span``/metric name literals that
                     do not resolve against the catalog in
                     ``repro/obs/names.py``
WIRE001   error      ``wire_size``-bearing dataclasses with fields the
                     serializer never references
========  =========  ====================================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Type

from repro.check.findings import Finding
from repro.obs.names import EVENT_NAMES, METRIC_NAMES


class Rule(ast.NodeVisitor):
    """Base class: subclasses set the class attributes and report()."""

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def report(
        self, node: ast.AST, message: str, hint: Optional[str] = None
    ) -> None:
        self.findings.append(
            Finding(
                rule=self.id,
                severity=self.severity,
                path=self.path,
                line=getattr(node, "lineno", 0),
                message=message,
                hint=self.hint if hint is None else hint,
            )
        )


class _ImportTracking(Rule):
    """Shared import-alias bookkeeping for module-sensitive rules.

    ``self.module_alias`` maps a local name to the module it refers to
    (``import time as t`` -> ``{"t": "time"}``); ``self.from_alias`` maps
    a local name to its fully qualified origin (``from time import time
    as now`` -> ``{"now": "time.time"}``).
    """

    #: Modules the subclass cares about; others are not tracked.
    modules: Tuple[str, ...] = ()

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self.module_alias: Dict[str, str] = {}
        self.from_alias: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.modules:
                self.module_alias[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in self.modules:
            for alias in node.names:
                local = alias.asname or alias.name
                self.from_alias[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _qualify(self, func: ast.expr) -> Optional[str]:
        """Resolve a call target to a dotted origin, or None."""
        if isinstance(func, ast.Name):
            return self.from_alias.get(func.id)
        if isinstance(func, ast.Attribute):
            base = self._qualify_base(func.value)
            if base is not None:
                return f"{base}.{func.attr}"
        return None

    def _qualify_base(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in self.module_alias:
                return self.module_alias[node.id]
            return self.from_alias.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._qualify_base(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


class WallClockRule(_ImportTracking):
    """DET001 — replay-breaking wall-clock reads."""

    id = "DET001"
    severity = "error"
    description = "wall-clock call in deterministic code"
    hint = (
        "take `now` from the simulation clock (repro.common.clock) or "
        "accept a timestamp parameter instead of reading the wall clock"
    )
    modules = ("time", "datetime")

    _BANNED = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def visit_Call(self, node: ast.Call) -> None:
        origin = self._qualify(node.func)
        if origin in self._BANNED:
            self.report(node, f"wall-clock call `{origin}`")
        self.generic_visit(node)


class UnseededRandomRule(_ImportTracking):
    """DET002 — nondeterministic entropy sources."""

    id = "DET002"
    severity = "error"
    description = "unseeded randomness outside repro.common.rng"
    hint = (
        "draw from the seeded generator in repro.common.rng (or a "
        "random.Random(seed) instance) so runs replay bit-identically"
    )
    modules = ("random", "secrets", "os", "uuid")

    #: Qualified names that are fine: seeded-generator constructors.
    _ALLOWED = {"random.Random"}
    _BANNED_EXACT = {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }

    def visit_Call(self, node: ast.Call) -> None:
        origin = self._qualify(node.func)
        if origin is not None and origin not in self._ALLOWED:
            if origin in self._BANNED_EXACT:
                self.report(node, f"nondeterministic source `{origin}`")
            elif origin.startswith("random."):
                self.report(
                    node,
                    f"module-level `{origin}` uses the shared unseeded "
                    "generator",
                )
            elif origin.startswith("secrets."):
                self.report(node, f"nondeterministic source `{origin}`")
        self.generic_visit(node)


class MutableDefaultRule(Rule):
    """PY001 — mutable default arguments."""

    id = "PY001"
    severity = "error"
    description = "mutable default argument"
    hint = "default to None and create the container inside the function"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(
                func, "attr", None
            )
            return name in self._MUTABLE_CALLS
        return False

    def _check(self, node: ast.AST, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is shared across calls",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node, node.args)
        self.generic_visit(node)


class BareExceptRule(Rule):
    """PY002 — bare ``except:`` swallows KeyboardInterrupt/SystemExit."""

    id = "PY002"
    severity = "error"
    description = "bare except clause"
    hint = "catch Exception (or something narrower) explicitly"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare `except:` catches SystemExit too")
        self.generic_visit(node)


class PrintRule(Rule):
    """PY003 — print in library code; observability goes through obs."""

    id = "PY003"
    severity = "warning"
    description = "print() in library code"
    hint = (
        "emit through the obs facade (obs.event / metrics) or return the "
        "text to the CLI layer"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(node, "print() bypasses the observability layer")
        self.generic_visit(node)


class ObsNameRule(Rule):
    """OBS001 — obs name literals must exist in the names.py catalog.

    Checks calls whose receiver's last segment looks like an obs facade
    (``obs``, ``self.obs``, ``metrics``, ``tracer``, ``registry``) and
    whose method is one of the facade's five name-taking methods. Only
    string-literal first arguments are checked; dynamic names are the
    Tracer's runtime validation problem.
    """

    id = "OBS001"
    severity = "error"
    description = "obs name not declared in repro/obs/names.py"
    hint = (
        "declare the name with an EventSpec/MetricSpec in "
        "repro/obs/names.py (and document it in docs/observability.md)"
    )

    _RECEIVERS = {"obs", "_obs", "metrics", "tracer", "registry"}
    _METRIC_METHODS = {"inc", "set_gauge", "observe"}
    _EVENT_METHODS = {"event", "span"}

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            tail = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else getattr(receiver, "attr", None)
            )
            if tail in self._RECEIVERS and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    name = first.value
                    if func.attr in self._METRIC_METHODS:
                        if name not in METRIC_NAMES:
                            self.report(
                                first,
                                f"metric name `{name}` is not in the "
                                "METRICS catalog",
                            )
                    elif func.attr in self._EVENT_METHODS:
                        if name not in EVENT_NAMES:
                            self.report(
                                first,
                                f"event/span name `{name}` is not in the "
                                "EVENTS catalog",
                            )
        self.generic_visit(node)


class WireFieldRule(Rule):
    """WIRE001 — every dataclass field must appear in its serializer.

    A dataclass that defines ``wire_size`` is a wire message; a field the
    size accounting never mentions is either dead weight or a field the
    protocol silently fails to cost. The rule demands each annotated
    field name appear as ``self.<field>`` inside ``wire_size`` (helper
    calls like ``_u64(self.offset)`` count — the reference is what
    matters).
    """

    id = "WIRE001"
    severity = "error"
    description = "dataclass field missing from wire_size accounting"
    hint = (
        "reference the field in wire_size (e.g. a size helper like "
        "_u32(self.field)) or drop it from the wire dataclass"
    )

    def _is_dataclass(self, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = (
                target.id
                if isinstance(target, ast.Name)
                else getattr(target, "attr", None)
            )
            if name == "dataclass":
                return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_dataclass(node):
            fields: List[Tuple[str, ast.AnnAssign]] = []
            wire_size: Optional[ast.FunctionDef] = None
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    annotation = ast.unparse(stmt.annotation)
                    if "ClassVar" not in annotation:
                        fields.append((stmt.target.id, stmt))
                elif (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "wire_size"
                ):
                    wire_size = stmt
            if wire_size is not None:
                referenced = self._self_attrs(wire_size)
                for name, stmt in fields:
                    if name not in referenced:
                        self.report(
                            stmt,
                            f"field `{name}` of {node.name} never appears "
                            "in wire_size",
                        )
        self.generic_visit(node)

    @staticmethod
    def _self_attrs(func: ast.FunctionDef) -> Set[str]:
        attrs: Set[str] = set()
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                attrs.add(sub.attr)
        return attrs


#: Registry, in report order. The engine iterates this.
ALL_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    MutableDefaultRule,
    BareExceptRule,
    PrintRule,
    ObsNameRule,
    WireFieldRule,
)

RULES_BY_ID: Dict[str, Type[Rule]] = {rule.id: rule for rule in ALL_RULES}
