"""SARIF 2.1.0 output for `repro check` findings.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest to annotate diffs with findings. This module renders the shared
:class:`Finding` model into a single-run SARIF log:

* every rule id that appears in the findings becomes a
  ``tool.driver.rules`` entry, described from the static catalogs (the
  per-file rules, the semantic rules, the trace invariants) when the id
  is known there;
* severities map ``error`` -> ``error``, ``warning`` -> ``warning``,
  ``advice`` -> ``note``;
* suppressed findings are carried with an ``inSource`` suppression
  object — SARIF consumers hide them by default but keep the record,
  mirroring ``--show-suppressed``;
* ``line == 0`` (whole-file findings like ``IO``) omit the region, as
  SARIF regions are 1-based.

The output is deterministic: results keep the engine's sorted order and
all JSON keys are emitted sorted.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.check.findings import Finding
from repro.check.invariants import INVARIANTS_BY_ID
from repro.check.rules import RULES_BY_ID
from repro.check.semantic import SEMANTIC_RULES_BY_ID

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "advice": "note"}

#: Findings the engine itself synthesizes, described here because no
#: catalog class carries them.
_ENGINE_RULES: Dict[str, str] = {
    "PARSE": "the file must parse before any rule can run",
    "IO": "the file could not be read",
    "CFG001": "a suppression comment names an unknown rule id",
    "CFG002": "a suppression comment matches no finding (stale)",
}


def _rule_description(rule_id: str) -> str:
    rule = RULES_BY_ID.get(rule_id) or SEMANTIC_RULES_BY_ID.get(rule_id)
    if rule is not None:
        return rule.description
    spec = INVARIANTS_BY_ID.get(rule_id)
    if spec is not None:
        return spec.statement
    return _ENGINE_RULES.get(rule_id, rule_id)


def _rule_help(rule_id: str) -> str:
    rule = RULES_BY_ID.get(rule_id) or SEMANTIC_RULES_BY_ID.get(rule_id)
    return rule.hint if rule is not None else ""


def _artifact_uri(path: str) -> str:
    uri = path.replace("\\", "/")
    if uri.startswith("./"):
        uri = uri[2:]
    return uri


def to_sarif(findings: Sequence[Finding]) -> dict:
    """The findings as a SARIF 2.1.0 log (a plain dict)."""
    rule_ids: List[str] = []
    for finding in findings:
        if finding.rule not in rule_ids:
            rule_ids.append(finding.rule)
    rule_ids.sort()
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    rules = []
    for rule_id in rule_ids:
        entry = {
            "id": rule_id,
            "shortDescription": {"text": _rule_description(rule_id)},
        }
        help_text = _rule_help(rule_id)
        if help_text:
            entry["help"] = {"text": help_text}
        rules.append(entry)

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(finding.path)
                        },
                    }
                }
            ],
        }
        if finding.line > 0:
            result["locations"][0]["physicalLocation"]["region"] = {
                "startLine": finding.line
            }
        if finding.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)

    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "docs/static-analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(findings: Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
