"""Project-wide semantic rules: dataflow findings over the whole tree.

The per-file catalog (:mod:`repro.check.rules`) sees one AST at a time
and only literal spellings. This layer runs the flow-sensitive pass
(:mod:`repro.check.dataflow`) and the wire-symmetry prover
(:mod:`repro.check.wiresym`) over the loaded :class:`Project` and turns
their observations into the same :class:`Finding` shape:

========  =========  ====================================================
id        severity   what it flags
========  =========  ====================================================
DET001    error      (upgrade) wall-clock reads reached *through flow* —
                     a clock function bound to a local, an attribute, or
                     passed into a parameter the callee invokes
OBS001    error      (upgrade) obs facade names that are not literals at
                     the call site but resolve statically — module
                     constants, dict-literal lookups, parameters a
                     helper forwards into ``obs.inc``/``obs.event``
DET003    error      a ``DeterministicRandom`` instance shared across
                     construction sites without ``fork()`` — consumers
                     interleave draws on one stream, so adding a draw in
                     one component perturbs every other
DET004    error      iteration over a ``set`` flowing into an
                     order-sensitive sink (fleet event heap, wire
                     encoders, ``conflict_path``)
WIRE002   error      an encoder/decoder pair whose statically extracted
                     wire field sequences are not symmetric
========  =========  ====================================================

DET001/OBS001 findings from this layer are *disjoint* from the per-file
rules by construction: the dataflow pass only reports clock calls that
need flow to explain (``via_flow``) and obs names that are not string
literals at the call site.

:func:`analyze_project` returns **raw** findings — no exemption globs
applied, no suppression comments honoured — so the engine can cache
them against the project fingerprint and re-filter per run;
:func:`apply_config` does the filtering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.check.callgraph import CallGraph
from repro.check.config import CheckConfig, parse_suppressions
from repro.check.dataflow import Observations, analyze_module
from repro.check.findings import Finding
from repro.check.project import Project
from repro.check.wiresym import WirePairResult, verify_project
from repro.obs.names import EVENT_NAMES, METRIC_NAMES


class SemanticRule:
    """Catalog entry for one semantic rule (no visitor — descriptor only)."""

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""


class FlowClockRule(SemanticRule):
    id = "DET001"
    severity = "error"
    description = "wall-clock call reached through dataflow"
    hint = (
        "take `now` from the simulation clock (repro.common.clock) or "
        "accept a timestamp parameter instead of reading the wall clock"
    )


class FlowObsNameRule(SemanticRule):
    id = "OBS001"
    severity = "error"
    description = "statically resolvable obs name missing from the catalog"
    hint = (
        "declare the name with an EventSpec/MetricSpec in "
        "repro/obs/names.py (and document it in docs/observability.md)"
    )


class SharedRngRule(SemanticRule):
    id = "DET003"
    severity = "error"
    description = "DeterministicRandom shared across construction sites"
    hint = (
        "derive one independent stream per consumer with "
        "rng.fork(\"label\") so adding draws in one component cannot "
        "perturb another"
    )


class UnorderedIterationRule(SemanticRule):
    id = "DET004"
    severity = "error"
    description = "set iteration order flows into an order-sensitive sink"
    hint = (
        "iterate `sorted(the_set)` (or keep a list/dict, which preserve "
        "insertion order) before feeding heaps, encoders or conflict paths"
    )


class WireSymmetryRule(SemanticRule):
    id = "WIRE002"
    severity = "error"
    description = "encoder/decoder wire field sequences are not symmetric"
    hint = (
        "make the decoder read exactly the fields the encoder writes, in "
        "the same order; re-run `repro check` for the extracted layouts"
    )


#: Registry, in report order — mirrored by docs/static-analysis.md.
SEMANTIC_RULES: Tuple[type, ...] = (
    FlowClockRule,
    FlowObsNameRule,
    SharedRngRule,
    UnorderedIterationRule,
    WireSymmetryRule,
)

SEMANTIC_RULES_BY_ID: Dict[str, type] = {
    rule.id: rule for rule in SEMANTIC_RULES
}


def _finding(rule: type, path: str, line: int, message: str) -> Finding:
    return Finding(
        rule=rule.id,
        severity=rule.severity,
        path=path,
        line=line,
        message=message,
        hint=rule.hint,
    )


def _observation_findings(
    path: str, obs: Observations
) -> List[Finding]:
    findings: List[Finding] = []
    for call in obs.clock_calls:
        if not call.via_flow:
            continue  # the per-file DET001 rule owns the direct spelling
        findings.append(
            _finding(
                FlowClockRule, path, call.node.lineno,
                f"wall-clock `{call.origin}` called through a local or "
                "attribute binding",
            )
        )
    for arg in obs.clock_args:
        findings.append(
            _finding(
                FlowClockRule, path, arg.node.lineno,
                f"wall-clock `{arg.origin}` passed into parameter "
                f"`{arg.param}` of `{arg.callee}`, which calls it",
            )
        )
    for share in obs.rng_shares:
        where = (
            "inside a loop"
            if share.in_loop
            else f"across {share.sites} construction sites"
        )
        findings.append(
            _finding(
                SharedRngRule, path, share.node.lineno,
                f"DeterministicRandom `{share.var}` is passed {where} "
                "without fork(); consumers interleave draws on one stream",
            )
        )
    for sink in obs.set_sinks:
        findings.append(
            _finding(
                UnorderedIterationRule, path, sink.node.lineno,
                f"iterating set `{sink.iterable}` feeds `{sink.sink}`, "
                "whose result depends on hash order",
            )
        )
    for name in obs.obs_names:
        catalog = METRIC_NAMES if name.kind == "metric" else EVENT_NAMES
        catalog_label = "METRICS" if name.kind == "metric" else "EVENTS"
        bad = [v for v in name.values if v not in catalog]
        if bad:
            findings.append(
                _finding(
                    FlowObsNameRule, path, name.node.lineno,
                    f"{name.kind} name resolves to "
                    + ", ".join(f"`{v}`" for v in sorted(bad))
                    + f" — not in the {catalog_label} catalog",
                )
            )
    return findings


def wire_findings(
    project: Project, results: Optional[List[WirePairResult]] = None
) -> List[Finding]:
    """WIRE002 findings (mismatches only) for a project."""
    if results is None:
        results = verify_project(CallGraph.build(project))
    findings: List[Finding] = []
    by_rel = {m.rel_path: m for m in project.modules}
    for result in results:
        if result.status != "mismatch":
            continue
        module = by_rel.get(result.module)
        path = module.path if module is not None else result.module
        for problem in result.problems:
            findings.append(
                _finding(
                    WireSymmetryRule, path, result.line,
                    f"{result.name}: {problem}",
                )
            )
    return findings


def analyze_project(project: Project) -> List[Finding]:
    """Raw semantic findings for a whole project.

    Exemption globs and suppression comments are *not* applied — the
    result depends only on the project contents, so the engine can cache
    it against :meth:`Project.fingerprint`.
    """
    graph = CallGraph.build(project)
    findings: List[Finding] = []
    for module in project.parsed():
        obs = analyze_module(module, graph)
        findings.extend(_observation_findings(module.path, obs))
    findings.extend(wire_findings(project, verify_project(graph)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def apply_config(
    findings: List[Finding], project: Project, config: CheckConfig
) -> List[Finding]:
    """Filter raw semantic findings the way the per-file engine would.

    Exempt (rule, file) pairs are dropped; findings on lines covered by
    a ``# reprolint: disable`` comment are marked suppressed. Returns
    fresh Finding objects — the raw list may live in a cache.
    """
    by_path = {m.path: m for m in project.modules}
    suppressions = {}
    out: List[Finding] = []
    for finding in findings:
        if not config.rule_enabled(finding.rule):
            continue
        module = by_path.get(finding.path)
        rel = module.rel_path if module is not None else finding.path
        if config.exempt(finding.rule, rel):
            continue
        kept = Finding(**{**finding.__dict__})
        if module is not None:
            if module.path not in suppressions:
                suppressions[module.path] = parse_suppressions(
                    module.source
                )
            if suppressions[module.path].covers(kept.rule, kept.line):
                kept.suppressed = True
        out.append(kept)
    return out
