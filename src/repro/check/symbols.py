"""Per-module symbol tables for the semantic analysis layer.

One :class:`SymbolTable` per parsed module answers the questions the
dataflow and wire-symmetry engines keep asking:

* what dotted origin does this name refer to? (``import time as t`` +
  ``t.monotonic`` -> ``time.monotonic``; ``from repro.common import
  wire`` + ``wire.u64`` -> ``repro.common.wire.u64``);
* what literal value does this module-level constant hold?
  (``_KIND_WRITE = 1``, ``_COPY_TAG = 0xC0``);
* what struct format does this module-level ``struct.Struct`` instance
  carry? (``_U64 = struct.Struct(">Q")`` -> ``">Q"``);
* which functions and classes does the module define at top level?

Resolution is purely syntactic — no imports are executed. Chains of
module-level aliases (``now = time.time`` then ``later = now``) are
followed to a fixed point with a small depth bound.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Literal constant types the table records.
_CONST_TYPES = (str, int, float, bytes, bool)

_ALIAS_DEPTH = 8


@dataclass
class SymbolTable:
    """Module-level names of one module, resolved syntactically."""

    module: str = ""
    #: local name -> imported module dotted path (``import x.y as z``).
    module_alias: Dict[str, str] = field(default_factory=dict)
    #: local name -> fully qualified origin (``from m import f as g``).
    from_alias: Dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = <literal>`` bindings.
    constants: Dict[str, object] = field(default_factory=dict)
    #: module-level ``NAME = {..: "str", ..}`` all-string dict tables.
    str_choices: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: module-level ``NAME = struct.Struct("<fmt>")`` bindings.
    struct_formats: Dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = <dotted target>`` callable aliases.
    value_alias: Dict[str, str] = field(default_factory=dict)
    #: top-level function definitions.
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: top-level class definitions.
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)

    # -- resolution --------------------------------------------------------

    def resolve_name(self, name: str) -> Optional[str]:
        """Dotted origin of a bare module-level name, alias chains followed."""
        seen = 0
        current = name
        while seen < _ALIAS_DEPTH:
            seen += 1
            if current in self.from_alias:
                return self.from_alias[current]
            if current in self.module_alias:
                return self.module_alias[current]
            if current in self.value_alias:
                target = self.value_alias[current]
                if "." in target:
                    head, rest = target.split(".", 1)
                    base = self.resolve_name(head)
                    return f"{base}.{rest}" if base else target
                current = target
                continue
            return None
        return None

    def resolve_expr(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None."""
        if isinstance(node, ast.Name):
            return self.resolve_name(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve_expr(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def constant_value(self, name: str) -> Optional[object]:
        return self.constants.get(name)

    def str_choice(self, name: str) -> Optional[Tuple[str, ...]]:
        return self.str_choices.get(name)

    def struct_format(self, name: str) -> Optional[str]:
        return self.struct_formats.get(name)


def build_symbol_table(tree: ast.Module, module: str = "") -> SymbolTable:
    """Scan a module's top level into a :class:`SymbolTable`."""
    table = SymbolTable(module=module)
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    table.module_alias[alias.asname] = alias.name
                else:
                    # `import x.y` binds `x`, which refers to module `x`.
                    top = alias.name.split(".")[0]
                    table.module_alias[top] = top
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                continue  # relative imports: not resolved, stay silent
            for alias in stmt.names:
                local = alias.asname or alias.name
                table.from_alias[local] = f"{stmt.module}.{alias.name}"
        elif isinstance(stmt, ast.FunctionDef):
            table.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            table.classes[stmt.name] = stmt
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None or len(targets) != 1:
                continue
            target = targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if isinstance(value, ast.Constant) and isinstance(
                value.value, _CONST_TYPES
            ):
                table.constants[name] = value.value
            elif isinstance(value, ast.Dict) and value.values and all(
                isinstance(v, ast.Constant) and isinstance(v.value, str)
                for v in value.values
            ):
                table.str_choices[name] = tuple(
                    v.value for v in value.values  # type: ignore[union-attr]
                )
            elif _is_struct_ctor(value, table):
                fmt = value.args[0]
                if isinstance(fmt, ast.Constant) and isinstance(fmt.value, str):
                    table.struct_formats[name] = fmt.value
            elif isinstance(value, (ast.Name, ast.Attribute)):
                dotted = _dotted_of(value)
                if dotted is not None:
                    table.value_alias[name] = dotted
    return table


def _is_struct_ctor(node: ast.expr, table: SymbolTable) -> bool:
    if not (isinstance(node, ast.Call) and node.args):
        return False
    origin = table.resolve_expr(node.func)
    if origin == "struct.Struct":
        return True
    # `from struct import Struct` spells the origin the same way.
    return origin is not None and origin.endswith("struct.Struct")


def _dotted_of(node: ast.expr) -> Optional[str]:
    """The literal dotted spelling of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_of(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


#: Struct format character widths (byte-order prefixes are skipped).
STRUCT_WIDTHS: Dict[str, int] = {
    "b": 1, "B": 1, "x": 1, "c": 1, "?": 1,
    "h": 2, "H": 2,
    "i": 4, "I": 4, "l": 4, "L": 4, "f": 4,
    "q": 8, "Q": 8, "d": 8, "n": 8, "N": 8,
}


def struct_token_widths(fmt: str) -> Optional[Tuple[int, ...]]:
    """Byte widths of each field in a struct format string.

    ``"<II"`` -> ``(4, 4)``; repeat counts expand (``"3B"`` -> three
    1-byte fields). Returns None for formats with characters the wire
    grammar does not model (``s``/``p`` strings need their count kept).
    """
    widths = []
    count = ""
    for ch in fmt:
        if ch in "@=<>!":
            continue
        if ch.isdigit():
            count += ch
            continue
        if ch == "s":
            # An `Ns` run is one blob of N bytes; the wire grammar
            # models it as a fixed-width field of that many bytes.
            widths.append(int(count) if count else 1)
            count = ""
            continue
        width = STRUCT_WIDTHS.get(ch)
        if width is None:
            return None
        widths.extend([width] * (int(count) if count else 1))
        count = ""
    return tuple(widths)
