"""WIRE002 — static wire-symmetry proofs for encoder/decoder pairs.

For every paired codec (``encode``/``decode`` methods, ``encode_X`` /
``decode_X`` module functions, ``_pack_X``/``_unpack_X`` helpers, and
the WAL's ``encode_record``/``iter_records``), this module extracts the
*field sequence* each side touches and diffs them: the byte widths the
encoder writes, in order, must be exactly the widths the decoder reads.
A reordered, missing, or extra field is a finding — the class of bug a
round-trip test only catches for the inputs it happens to construct.

The extraction is a small symbolic evaluator over the codec grammar
this repository actually uses:

* ``struct.pack(fmt, ...)`` / ``_U64.pack(x)`` with module-level
  ``struct.Struct`` constants — fixed-width fields;
* ``bytes([TAG])`` and 1-byte literals — tag/flag bytes, with the tag
  value resolved through module constants so encoder branches pair
  with the decoder branch guarded by the same constant;
* helper calls (``_pack_str``/``_unpack_str``...) — one atomic token
  per call, with each helper pair proved independently;
* loops and ``b"".join(...)`` — ``repeat`` groups, compared
  structurally (a decoder's early-exit guards may truncate a repeat
  body: a strict prefix of the encoder's record is tolerated);
* branches — one path per arm; path sets must match one-to-one, tag
  constants aligning encoder arms with decoder arms.

Anything outside that grammar makes the pair ``skipped`` (reported,
never a silent pass and never a false positive). Classes that define
only ``wire_size`` (the simulated ``Envelope``/message family carries
no byte codec) are reported as ``size-only``; WIRE001 already proves
their field accounting complete. Encode-only classes whose records are
consumed inline by another decoder (``Copy``/``Literal`` inside
``Delta.decode``) are proved by tag: the arm of whichever project
decoder consumes the same leading tag byte must read the same tail.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.check.callgraph import CallGraph
from repro.check.project import ModuleInfo
from repro.check.symbols import SymbolTable, struct_token_widths

# Tokens:
#   ("fixed", width, const, cls)  cls: "i" integral, "f" float
#   ("blob",)                     raw bytes, length known elsewhere
#   ("call", base)                an atomic helper pair, e.g. "str"
#   ("repeat", alts)              alts: frozenset of paths
#   ("opaque",)                   wildcard (e.g. polymorphic op.encode())
Token = Tuple
Path = Tuple[Token, ...]

_ENC_PREFIXES = ("_encode_", "encode_", "_pack_", "pack_")
_DEC_PREFIXES = ("_decode_", "decode_", "_unpack_", "unpack_")

_MAX_PATHS = 64

_WIDTH_NAMES = {1: "u8", 2: "u16", 4: "u32", 8: "u64"}


class Unsupported(Exception):
    """The function strays outside the modelled codec grammar."""


def _has_poison(token: Token) -> bool:
    if token[0] == "poison":
        return True
    if token[0] == "repeat":
        return any(_has_poison(t) for path in token[1] for t in path)
    return False


def _helper_base(name: str) -> Optional[str]:
    stripped = name.lstrip("_")
    for prefix in ("encode_", "decode_", "pack_", "unpack_"):
        if stripped.startswith(prefix) and len(stripped) > len(prefix):
            return stripped[len(prefix):]
    return None


def _const_of(node: ast.expr, table: SymbolTable) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        value = table.constant_value(node.id)
        if isinstance(value, int):
            return value
    return None


def _fmt_tokens(fmt: str) -> List[Token]:
    widths = struct_token_widths(fmt)
    if widths is None:
        raise Unsupported(f"struct format {fmt!r}")
    cls_map = {}
    idx = 0
    for ch in fmt:
        if ch in "@=<>!" or ch.isdigit():
            continue
        cls_map[idx] = "f" if ch in "fd" else "i"
        idx += 1
    return [
        ("fixed", width, None, cls_map.get(i, "i"))
        for i, width in enumerate(widths)
    ]


# ---------------------------------------------------------------------------
# Encoder extraction: evaluate the bytes expression each return builds.
# ---------------------------------------------------------------------------


class _EncoderExtractor:
    def __init__(self, table: SymbolTable) -> None:
        self.table = table

    def extract(self, fn: ast.FunctionDef) -> List[Path]:
        paths, _ = self._exec(fn.body, {})
        if not paths:
            raise Unsupported("no return paths found")
        if len(paths) > _MAX_PATHS:
            raise Unsupported("too many paths")
        return _dedupe(paths)

    def _exec(
        self, stmts: Sequence[ast.stmt], env: Dict[str, List[Token]]
    ) -> Tuple[List[Path], bool]:
        """Run statements; returns (finished paths, fell_through)."""
        paths: List[Path] = []
        for i, stmt in enumerate(stmts):
            rest = stmts[i + 1:]
            if isinstance(stmt, ast.Return):
                if stmt.value is None:
                    raise Unsupported("bare return")
                path = tuple(self._eval(stmt.value, env))
                if any(_has_poison(token) for token in path):
                    raise Unsupported("unmodelled value in byte stream")
                paths.append(path)
                return paths, False
            if isinstance(stmt, ast.Raise):
                return paths, False
            if isinstance(stmt, ast.If):
                then_env = dict(env)
                then_paths, then_fell = self._exec(stmt.body, then_env)
                paths.extend(then_paths)
                else_env = dict(env)
                else_paths, else_fell = self._exec(
                    stmt.orelse, else_env
                ) if stmt.orelse else ([], True)
                paths.extend(else_paths)
                if then_fell and else_fell:
                    if then_env != else_env:
                        raise Unsupported("divergent branch state")
                    env.update(then_env)
                    continue
                if then_fell:
                    more, fell = self._exec(list(rest), then_env)
                    paths.extend(more)
                    return paths, fell
                if else_fell:
                    more, fell = self._exec(list(rest), else_env)
                    paths.extend(more)
                    return paths, fell
                return paths, False
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1 or not isinstance(
                    stmt.targets[0], ast.Name
                ):
                    raise Unsupported("complex assignment")
                try:
                    env[stmt.targets[0].id] = self._eval(stmt.value, env)
                except Unsupported:
                    # A scalar the byte grammar cannot model. Poison the
                    # binding: harmless while the name only feeds helper
                    # arguments, fatal (-> skipped pair, never a false
                    # proof) if it is spliced into the byte stream.
                    env[stmt.targets[0].id] = [("poison",)]
            elif isinstance(stmt, ast.AugAssign):
                if not (
                    isinstance(stmt.op, ast.Add)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id in env
                ):
                    raise Unsupported("aug-assign outside grammar")
                env[stmt.target.id] = env[stmt.target.id] + self._eval(
                    stmt.value, env
                )
            elif isinstance(stmt, ast.For):
                added: List[Token] = []
                loop_env = dict(env)
                for sub in stmt.body:
                    if (
                        isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, ast.Add)
                        and isinstance(sub.target, ast.Name)
                        and sub.target.id in env
                    ):
                        added = self._eval(sub.value, loop_env)
                        env[sub.target.id] = env[sub.target.id] + [
                            ("repeat", frozenset({tuple(added)}))
                        ]
                    elif isinstance(sub, (ast.Expr, ast.Assign)):
                        continue  # bookkeeping inside the loop
                    else:
                        raise Unsupported("loop body outside grammar")
            elif isinstance(stmt, ast.Expr):
                continue
            elif isinstance(stmt, (ast.Assert, ast.Pass)):
                continue
            else:
                raise Unsupported(
                    f"statement {type(stmt).__name__} outside grammar"
                )
        return paths, True

    def _eval(
        self, node: ast.expr, env: Dict[str, List[Token]]
    ) -> List[Token]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._eval(node.left, env) + self._eval(node.right, env)
        if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
            return [
                ("fixed", 1, byte, "i") for byte in node.value
            ]
        if isinstance(node, ast.Name):
            if node.id in env:
                return list(env[node.id])
            return [("blob",)]
        if isinstance(node, ast.Attribute):
            return [("blob",)]
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        raise Unsupported(f"expression {type(node).__name__}")

    def _eval_call(
        self, call: ast.Call, env: Dict[str, List[Token]]
    ) -> List[Token]:
        func = call.func
        # bytes([TAG]) -> one tagged byte.
        if (
            isinstance(func, ast.Name)
            and func.id in ("bytes", "bytearray")
            and len(call.args) == 1
        ):
            arg = call.args[0]
            if isinstance(arg, (ast.List, ast.Tuple)):
                tokens: List[Token] = []
                for elt in arg.elts:
                    tokens.append(
                        ("fixed", 1, _const_of(elt, self.table), "i")
                    )
                return tokens
            if isinstance(arg, ast.Call):
                return [("blob",)]  # bytes(out) finalizers
            raise Unsupported("bytes(...) outside grammar")
        # X.pack(...) on a struct.Struct constant; struct.pack(fmt, ...).
        if isinstance(func, ast.Attribute) and func.attr == "pack":
            if isinstance(func.value, ast.Name):
                fmt = self.table.struct_format(func.value.id)
                if fmt is not None:
                    return _fmt_tokens(fmt)
            origin = self.table.resolve_expr(func)
            if origin == "struct.pack" and call.args:
                fmt_node = call.args[0]
                if isinstance(fmt_node, ast.Constant) and isinstance(
                    fmt_node.value, str
                ):
                    return _fmt_tokens(fmt_node.value)
            raise Unsupported("unresolvable .pack()")
        # b"".join(op.encode() for op in ...) -> a repeat of records.
        if isinstance(func, ast.Attribute) and func.attr == "join":
            return [("repeat", frozenset({(("opaque",),)}))]
        # Paired helper call -> one atomic token.
        if isinstance(func, ast.Name):
            base = _helper_base(func.id)
            if base is not None and func.id.lstrip("_").startswith(
                ("pack_", "encode_")
            ):
                return [("call", base)]
        # str.encode() and friends: raw variable-length payload.
        if isinstance(func, ast.Attribute) and func.attr == "encode":
            return [("blob",)]
        raise Unsupported("call outside grammar")


# ---------------------------------------------------------------------------
# Decoder extraction: collect the reads each statement performs, in order.
# ---------------------------------------------------------------------------


@dataclass
class _DecState:
    tokens: List[Token] = field(default_factory=list)
    #: tag variable -> index of its 1-byte token in ``tokens``.
    tagvars: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "_DecState":
        return _DecState(list(self.tokens), dict(self.tagvars))


class _DecoderExtractor:
    def __init__(self, table: SymbolTable, fn: ast.FunctionDef) -> None:
        self.table = table
        self.buffers = self._buffer_names(fn)

    @staticmethod
    def _buffer_names(fn: ast.FunctionDef) -> Set[str]:
        """Names treated as raw buffers (indexed or re-parsed)."""
        names: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Name
            ):
                names.add(node.value.id)
            elif isinstance(node, ast.Call):
                func = node.func
                is_unpack = (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("unpack", "unpack_from")
                ) or (
                    isinstance(func, ast.Name)
                    and _helper_base(func.id) is not None
                    and func.id.lstrip("_").startswith(
                        ("unpack_", "decode_")
                    )
                )
                if is_unpack:
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            names.add(arg.id)
                            break  # the buffer is the first Name arg
        return names

    def extract(self, fn: ast.FunctionDef) -> List[Path]:
        finals = self._exec(fn.body, _DecState(), top=True)
        paths = [tuple(state.tokens) for state in finals]
        if not paths:
            raise Unsupported("no terminating paths")
        if len(paths) > _MAX_PATHS:
            raise Unsupported("too many paths")
        return _dedupe(paths)

    def _exec(
        self, stmts: Sequence[ast.stmt], state: _DecState, top: bool
    ) -> List[_DecState]:
        """Returns final (terminated) states; loop bodies also treat
        fall-through as final (handled by the caller)."""
        states = [state]
        finals: List[_DecState] = []
        for stmt in stmts:
            next_states: List[_DecState] = []
            for current in states:
                ended, cont = self._stmt(stmt, current, top)
                finals.extend(ended)
                next_states.extend(cont)
            states = next_states
            if not states:
                return finals
        finals.extend(states)  # fall off the end
        return finals

    def _stmt(
        self, stmt: ast.stmt, state: _DecState, top: bool
    ) -> Tuple[List[_DecState], List[_DecState]]:
        """-> (terminated states, continuing states)."""
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan(stmt.value, state)
            return [state], []
        if isinstance(stmt, ast.Raise):
            return [], []  # error path: not a wire layout
        if isinstance(stmt, (ast.Pass, ast.Assert, ast.Continue)):
            return [], [state]
        if isinstance(stmt, ast.Break):
            return [], [state]
        if isinstance(stmt, ast.If):
            const = self._guard_const(stmt.test, state)
            then_state = state.copy()
            if const is not None:
                var, value = const
                index = then_state.tagvars.get(var)
                if index is not None:
                    tok = then_state.tokens[index]
                    then_state.tokens[index] = (
                        "fixed", tok[1], value, tok[3]
                    )
            then_finals = []
            then_cont = [then_state]
            for sub in stmt.body:
                nxt: List[_DecState] = []
                for current in then_cont:
                    ended, cont = self._stmt(sub, current, top)
                    then_finals.extend(ended)
                    nxt.extend(cont)
                then_cont = nxt
            else_finals: List[_DecState] = []
            else_cont = [state.copy()]
            for sub in stmt.orelse:
                nxt = []
                for current in else_cont:
                    ended, cont = self._stmt(sub, current, top)
                    else_finals.extend(ended)
                    nxt.extend(cont)
                else_cont = nxt
            return then_finals + else_finals, then_cont + else_cont
        if isinstance(stmt, (ast.For, ast.While)):
            body_finals = self._exec(stmt.body, _DecState(), top=False)
            # Fall-through iterations *and* early returns both describe
            # record layouts; error raises were already dropped.
            alts = frozenset(
                tuple(s.tokens) for s in body_finals if s.tokens
            )
            if alts:
                state.tokens.append(("repeat", alts))
            return [], [state]
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            if value is None:
                return [], [state]
            before = len(state.tokens)
            self._scan(value, state)
            read = state.tokens[before:]
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            if isinstance(target, ast.Name):
                if (
                    len(read) == 1
                    and read[0][0] == "fixed"
                    and read[0][1] == 1
                ):
                    state.tagvars[target.id] = before
                if (
                    len(read) == 1
                    and read[0] == ("blob",)
                    and target.id in self.buffers
                ):
                    state.tokens.pop()  # reframed, re-parsed below
            elif isinstance(target, ast.Tuple) and len(target.elts) == 1:
                elt = target.elts[0]
                if (
                    isinstance(elt, ast.Name)
                    and len(read) == 1
                    and read[0][0] == "fixed"
                    and read[0][1] == 1
                ):
                    state.tagvars[elt.id] = before
            return [], [state]
        if isinstance(stmt, ast.Expr):
            self._scan(stmt.value, state)
            return [], [state]
        if isinstance(stmt, (ast.With,)):
            sub_finals = self._exec(stmt.body, state, top)
            return sub_finals, []
        raise Unsupported(f"statement {type(stmt).__name__}")

    def _guard_const(
        self, test: ast.expr, state: _DecState
    ) -> Optional[Tuple[str, Optional[int]]]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Name)
            and test.left.id in state.tagvars
        ):
            return test.left.id, _const_of(test.comparators[0], self.table)
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id in state.tagvars
        ):
            return test.operand.id, 0
        return None

    def _scan(self, node: ast.expr, state: _DecState) -> None:
        """Append the wire reads an expression performs, in eval order."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "unpack", "unpack_from"
            ):
                if isinstance(func.value, ast.Name):
                    fmt = self.table.struct_format(func.value.id)
                    if fmt is not None:
                        state.tokens.extend(_fmt_tokens(fmt))
                        return
                origin = self.table.resolve_expr(func)
                if origin in ("struct.unpack", "struct.unpack_from"):
                    fmt_node = node.args[0] if node.args else None
                    if isinstance(fmt_node, ast.Constant) and isinstance(
                        fmt_node.value, str
                    ):
                        state.tokens.extend(_fmt_tokens(fmt_node.value))
                        return
                raise Unsupported("unresolvable .unpack()")
            if isinstance(func, ast.Name):
                base = _helper_base(func.id)
                if base is not None and func.id.lstrip("_").startswith(
                    ("unpack_", "decode_")
                ):
                    state.tokens.append(("call", base))
                    return
            for arg in node.args:
                self._scan(arg, state)
            for kw in node.keywords:
                self._scan(kw.value, state)
            return
        if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id in self.buffers:
                if isinstance(node.slice, ast.Slice):
                    state.tokens.append(("blob",))
                else:
                    state.tokens.append(("fixed", 1, None, "i"))
            return
        if isinstance(node, ast.BinOp):
            self._scan(node.left, state)
            self._scan(node.right, state)
            return
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                self._scan(elt, state)
            return
        if isinstance(node, (ast.Name, ast.Constant, ast.Attribute)):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan(child, state)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _dedupe(paths: List[Path]) -> List[Path]:
    seen = []
    for path in paths:
        if path not in seen:
            seen.append(path)
    return seen


def render_token(token: Token) -> str:
    kind = token[0]
    if kind == "fixed":
        _, width, const, cls = token
        name = "f64" if (cls == "f" and width == 8) else _WIDTH_NAMES.get(
            width, f"b{width}"
        )
        return f"{name}={const:#x}" if const is not None else name
    if kind == "blob":
        return "blob"
    if kind == "call":
        return f"<{token[1]}>"
    if kind == "opaque":
        return "*"
    if kind == "repeat":
        alts = sorted(render_path(p) for p in token[1])
        return "repeat(" + " | ".join(alts) + ")"
    return kind


def render_path(path: Path) -> str:
    return " ".join(render_token(t) for t in path) or "<empty>"


def _tokens_match(a: Token, b: Token) -> bool:
    if a[0] == "opaque" or b[0] == "opaque":
        return True
    if a[0] != b[0]:
        return False
    if a[0] == "fixed":
        if a[1] != b[1] or a[3] != b[3]:
            return False
        return a[2] is None or b[2] is None or a[2] == b[2]
    if a[0] == "call":
        return a[1] == b[1]
    if a[0] == "repeat":
        return _repeats_match(a[1], b[1])
    return True


def _repeats_match(
    enc_alts: FrozenSet[Path], dec_alts: FrozenSet[Path]
) -> bool:
    if enc_alts == frozenset({(("opaque",),)}) or dec_alts == frozenset(
        {(("opaque",),)}
    ):
        return True
    # Every encoder record layout must have a matching decoder layout;
    # extra decoder alternatives must be strict prefixes (early-exit
    # truncation guards).
    for enc in enc_alts:
        if not any(_paths_match(enc, dec) for dec in dec_alts):
            return False
    for dec in dec_alts:
        if any(_paths_match(enc, dec) for enc in enc_alts):
            continue
        if not any(_is_prefix(dec, enc) for enc in enc_alts):
            return False
    return True


def _is_prefix(shorter: Path, longer: Path) -> bool:
    if len(shorter) >= len(longer):
        return False
    return all(
        _tokens_match(a, b) for a, b in zip(shorter, longer)
    )


def _paths_match(a: Path, b: Path) -> bool:
    return len(a) == len(b) and all(
        _tokens_match(x, y) for x, y in zip(a, b)
    )


def _path_tag(path: Path) -> Optional[int]:
    if path and path[0][0] == "fixed" and path[0][1] == 1:
        return path[0][2]
    return None


def diff_path_sets(
    enc_paths: List[Path], dec_paths: List[Path]
) -> List[str]:
    """Problems keeping the two path sets from matching one-to-one."""
    # Unwrap a record-stream decoder against a single-record encoder.
    if (
        len(dec_paths) == 1
        and len(dec_paths[0]) == 1
        and dec_paths[0][0][0] == "repeat"
        and not any(t[0] == "repeat" for p in enc_paths for t in p)
    ):
        alts = dec_paths[0][0][1]
        problems = []
        for enc in enc_paths:
            if any(_paths_match(enc, dec) for dec in alts):
                continue
            if any(_is_prefix(dec, enc) for dec in alts):
                continue
            problems.append(
                f"encoder writes [{render_path(enc)}] but no decoder "
                "iteration reads that layout; decoder alternatives: "
                + "; ".join(sorted(render_path(d) for d in alts))
            )
        return problems

    if len(enc_paths) == 1 and len(dec_paths) == 1 and not _paths_match(
        enc_paths[0], dec_paths[0]
    ):
        return [
            f"field sequence diverges: encoder writes "
            f"[{render_path(enc_paths[0])}], decoder reads "
            f"[{render_path(dec_paths[0])}]"
        ]
    problems: List[str] = []
    unmatched_dec = list(dec_paths)
    for enc in enc_paths:
        match = None
        for dec in unmatched_dec:
            if _paths_match(enc, dec):
                match = dec
                break
        if match is not None:
            unmatched_dec.remove(match)
            continue
        # Pair by tag for a precise message.
        tag = _path_tag(enc)
        partner = None
        if tag is not None:
            for dec in unmatched_dec:
                if _path_tag(dec) == tag:
                    partner = dec
                    break
        if partner is not None:
            unmatched_dec.remove(partner)
            problems.append(
                f"field sequence diverges for tag {tag:#x}: encoder "
                f"writes [{render_path(enc)}], decoder reads "
                f"[{render_path(partner)}]"
            )
        else:
            problems.append(
                f"encoder path [{render_path(enc)}] has no matching "
                "decoder path"
            )
    for dec in unmatched_dec:
        problems.append(
            f"decoder path [{render_path(dec)}] has no matching "
            "encoder path"
        )
    return problems


# ---------------------------------------------------------------------------
# Pair discovery and the project-wide proof
# ---------------------------------------------------------------------------


@dataclass
class WirePairResult:
    """One proved (or skipped) codec pair."""

    name: str
    module: str
    line: int
    status: str  # "ok" | "mismatch" | "skipped" | "size-only" | "tag-ok"
    detail: str = ""
    problems: List[str] = field(default_factory=list)


def _extract_enc(
    table: SymbolTable, fn: ast.FunctionDef
) -> Tuple[Optional[List[Path]], str]:
    try:
        return _EncoderExtractor(table).extract(fn), ""
    except Unsupported as exc:
        return None, str(exc)


def _extract_dec(
    table: SymbolTable, fn: ast.FunctionDef
) -> Tuple[Optional[List[Path]], str]:
    try:
        return _DecoderExtractor(table, fn).extract(fn), ""
    except Unsupported as exc:
        return None, str(exc)


def _iter_decoder_arms(paths: List[Path]):
    """Every path, plus every repeat alternative, of a decoder."""
    for path in paths:
        yield path
        for token in path:
            if token[0] == "repeat":
                for alt in token[1]:
                    yield alt


def verify_project(graph: CallGraph) -> List[WirePairResult]:
    """Prove every discoverable codec pair in the project."""
    results: List[WirePairResult] = []
    #: tag byte -> (pair name, decoder arm path) across all decoders.
    tag_arms: Dict[int, List[Tuple[str, Path]]] = {}
    pending_tag_checks: List[
        Tuple[str, str, int, List[Path]]
    ] = []  # (name, module, line, enc paths)

    for module in graph.project.parsed():
        table = graph.tables[module.name]
        assert module.tree is not None
        results.extend(
            _verify_module(module, table, tag_arms, pending_tag_checks)
        )

    # Encode-only classes: prove each tagged record against whichever
    # decoder consumes the same tag.
    for name, mod_name, line, enc_paths in pending_tag_checks:
        problems: List[str] = []
        proved = 0
        for enc in enc_paths:
            tag = _path_tag(enc)
            if tag is None:
                continue
            arms = tag_arms.get(tag, [])
            if not arms:
                problems.append(
                    f"record tag {tag:#x} written by {name}.encode is "
                    "consumed by no decoder in the project"
                )
                continue
            if any(_paths_match(enc, arm) for _, arm in arms):
                proved += 1
                continue
            renders = "; ".join(
                f"{owner}: [{render_path(arm)}]" for owner, arm in arms
            )
            problems.append(
                f"tag {tag:#x}: encoder writes [{render_path(enc)}] "
                f"but the consuming decoder reads {renders}"
            )
        if problems:
            results.append(
                WirePairResult(
                    name=f"{name}.encode", module=mod_name, line=line,
                    status="mismatch", problems=problems,
                )
            )
        elif proved:
            results.append(
                WirePairResult(
                    name=f"{name}.encode", module=mod_name, line=line,
                    status="tag-ok",
                    detail=f"{proved} tagged record(s) proved against "
                           "the consuming decoder",
                )
            )
        else:
            results.append(
                WirePairResult(
                    name=f"{name}.encode", module=mod_name, line=line,
                    status="skipped", detail="untagged encode-only class",
                )
            )
    return sorted(results, key=lambda r: (r.module, r.line, r.name))


def _verify_module(
    module: ModuleInfo,
    table: SymbolTable,
    tag_arms: Dict[int, List[Tuple[str, Path]]],
    pending_tag_checks: List[Tuple[str, str, int, List[Path]]],
) -> List[WirePairResult]:
    results: List[WirePairResult] = []

    def note_decoder(owner: str, paths: List[Path]) -> None:
        for arm in _iter_decoder_arms(paths):
            tag = _path_tag(arm)
            if tag is not None:
                tag_arms.setdefault(tag, []).append((owner, arm))

    def prove(
        name: str,
        enc_fn: ast.FunctionDef,
        dec_fn: ast.FunctionDef,
    ) -> None:
        enc_paths, enc_err = _extract_enc(table, enc_fn)
        dec_paths, dec_err = _extract_dec(table, dec_fn)
        line = enc_fn.lineno
        if enc_paths is None or dec_paths is None:
            why = enc_err or dec_err
            results.append(
                WirePairResult(
                    name=name, module=module.rel_path, line=line,
                    status="skipped", detail=f"outside grammar: {why}",
                )
            )
            return
        note_decoder(name, dec_paths)
        problems = diff_path_sets(enc_paths, dec_paths)
        results.append(
            WirePairResult(
                name=name, module=module.rel_path, line=line,
                status="mismatch" if problems else "ok",
                detail=f"{len(enc_paths)} encoder path(s)",
                problems=problems,
            )
        )

    assert module.tree is not None
    functions: Dict[str, ast.FunctionDef] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.FunctionDef):
            functions[stmt.name] = stmt

    # -- classes: encode/decode methods, or encode-only tag checks ------
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        methods = {
            s.name: s for s in stmt.body if isinstance(s, ast.FunctionDef)
        }
        enc = methods.get("encode")
        dec = methods.get("decode")
        if enc is not None and dec is not None:
            prove(f"{stmt.name}.encode/decode", enc, dec)
        elif enc is not None:
            enc_paths, enc_err = _extract_enc(table, enc)
            if enc_paths is None:
                results.append(
                    WirePairResult(
                        name=f"{stmt.name}.encode",
                        module=module.rel_path, line=enc.lineno,
                        status="skipped",
                        detail=f"outside grammar: {enc_err}",
                    )
                )
            else:
                pending_tag_checks.append(
                    (stmt.name, module.rel_path, enc.lineno, enc_paths)
                )
        elif "wire_size" in methods and dec is None:
            results.append(
                WirePairResult(
                    name=stmt.name, module=module.rel_path,
                    line=stmt.lineno, status="size-only",
                    detail="wire_size only — no byte codec to prove "
                           "(WIRE001 checks the field accounting)",
                )
            )

    # -- module functions: name-convention pairs -------------------------
    for fname, fn in functions.items():
        if not fname.lstrip("_").startswith(("encode_", "pack_")):
            continue
        base = _helper_base(fname)
        if base is None:
            continue
        partner = None
        for candidate in (
            f"decode_{base}", f"_decode_{base}",
            f"unpack_{base}", f"_unpack_{base}",
            f"iter_{base}s",
        ):
            partner = functions.get(candidate)
            if partner is not None:
                break
        if partner is None:
            results.append(
                WirePairResult(
                    name=fname, module=module.rel_path, line=fn.lineno,
                    status="skipped", detail="no paired decoder found",
                )
            )
            continue
        prove(f"{fname}/{partner.name}", fn, partner)
    return results


def results_to_problem_findings(
    results: List[WirePairResult],
) -> List[Tuple[str, int, str]]:
    """(module rel_path, line, message) per mismatch, for the rule."""
    out = []
    for result in results:
        if result.status != "mismatch":
            continue
        for problem in result.problems:
            out.append((result.module, result.line,
                        f"{result.name}: {problem}"))
    return out
