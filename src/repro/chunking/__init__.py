"""Chunking and checksum primitives shared by all delta-sync algorithms.

- :mod:`repro.chunking.rolling` — the rsync weak rolling checksum
  (Adler-32-style), also reused as the integrity block checksum
  (paper Section III-E).
- :mod:`repro.chunking.strong` — metered strong checksums (MD5/SHA-256).
- :mod:`repro.chunking.fixed` — fixed-size block chunking (rsync).
- :mod:`repro.chunking.cdc` — content-defined chunking via a gear hash
  (LBFS/Seafile style).
"""

from repro.chunking.rolling import RollingChecksum, weak_checksum
from repro.chunking.strong import strong_checksum, dedup_hash
from repro.chunking.fixed import fixed_chunks, FixedChunk
from repro.chunking.cdc import cdc_chunks, CDCChunk, GearHasher

__all__ = [
    "RollingChecksum",
    "weak_checksum",
    "strong_checksum",
    "dedup_hash",
    "fixed_chunks",
    "FixedChunk",
    "cdc_chunks",
    "CDCChunk",
    "GearHasher",
]
