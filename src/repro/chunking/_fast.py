"""Vectorized (numpy) implementations of the per-byte checksum kernels.

The algorithms are byte-at-a-time in the paper's C prototype; in Python we
vectorize them so the benchmark harness can replay multi-megabyte traces.
The results are bit-identical to the pure-Python reference implementations
(property-tested in ``tests/chunking``, golden-tested against committed
fixtures in ``tests/delta``), and cost metering is unaffected — callers
charge for the logical bytes processed either way.

Two facts make these kernels fast (see docs/performance.md):

- the weak checksum's modulus is ``2^16``, so every ``% _MOD`` is a bitwise
  AND — numpy's integer modulo is division-based and an order of magnitude
  slower than ``&``;
- for the standard 4 KB block, every intermediate sum provably fits in
  ``uint32`` (max weighted block sum: ``255 * 4096 * 4097 / 2 < 2^31``), so
  the block kernels run in uint32 and touch half the memory of the uint64
  formulation. Larger blocks fall back to uint64 with per-term reduction.
"""

from __future__ import annotations

import numpy as np

_MOD = 1 << 16
_MASK = np.uint32(_MOD - 1)
_MASK64 = np.uint64(_MOD - 1)

# Largest block size whose weighted sum fits uint32 without per-term
# reduction: 255 * b * (b + 1) / 2 < 2^32  holds for b <= 5792.
_U32_SAFE_BLOCK = 4096


def _as_u64(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8).astype(np.uint64)


def _as_u32(data) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8).astype(np.uint32)


def weak_checksum_np(data: bytes) -> int:
    """Weak checksum of a whole buffer (same value as ``weak_checksum``)."""
    if not data:
        return 0
    d = _as_u32(data)
    n = len(d)
    a = int(d.sum(dtype=np.uint64)) & 0xFFFF
    # b = sum (n - i) * d[i]; reduce each term mod 2^16 so the uint64
    # running sum cannot overflow for any buffer numpy can hold.
    weights = np.arange(n, 0, -1, dtype=np.uint32) & _MASK
    b = int((weights * d & _MASK).sum(dtype=np.uint64)) & 0xFFFF
    return (b << 16) | a


def block_weak_checksums_array(data: bytes, block_size: int) -> np.ndarray:
    """Weak checksum of each fixed-size block of ``data`` as a uint64 array.

    One vectorized pass over the whole buffer — callers sweeping many
    blocks (signature side, checksum-store span updates and verifies)
    should use this instead of checksumming block-by-block: the per-call
    ``frombuffer``/``astype`` setup dominates for 4 KB blocks.
    """
    if not data:
        return np.empty(0, dtype=np.uint64)
    n = len(data)
    full = n // block_size
    parts = []
    if full:
        if block_size <= _U32_SAFE_BLOCK:
            body = _as_u32(data[: full * block_size]).reshape(full, block_size)
            weights = np.arange(block_size, 0, -1, dtype=np.uint32)
            a = body.sum(axis=1, dtype=np.uint32) & _MASK
            b = (body * weights).sum(axis=1, dtype=np.uint32) & _MASK
        else:
            body64 = _as_u64(data[: full * block_size]).reshape(full, block_size)
            weights64 = np.arange(block_size, 0, -1, dtype=np.uint64)
            a = body64.sum(axis=1) & _MASK64
            b = (body64 * weights64 & _MASK64).sum(axis=1) & _MASK64
        parts.append(
            (b.astype(np.uint64) << np.uint64(16)) | a.astype(np.uint64)
        )
    tail = data[full * block_size :]
    if tail:
        parts.append(np.array([weak_checksum_np(tail)], dtype=np.uint64))
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def block_weak_checksums(data: bytes, block_size: int) -> list[int]:
    """Weak checksum of each fixed-size block of ``data``."""
    return block_weak_checksums_array(data, block_size).tolist()


def all_offset_weak_checksums(data: bytes, window: int) -> np.ndarray:
    """Weak checksum of every length-``window`` substring of ``data``.

    Returns an array ``w`` with ``w[o]`` the checksum of
    ``data[o:o+window]`` for ``o`` in ``[0, len(data) - window]``.
    Uses two prefix-sum passes:

    - ``a(o) = S[o+window] - S[o]`` with ``S`` the prefix sum of bytes;
    - ``b(o) = (window + o) * a(o) - (T[o+window] - T[o])`` with ``T`` the
      prefix sum of ``i * data[i]``.

    Every sum runs in *wrapping* uint32: because 2^16 divides 2^32, values
    congruent mod 2^32 stay congruent mod 2^16, so prefix-sum overflow on
    large buffers is harmless — the final ``& 0xFFFF`` recovers the exact
    per-byte result. Running the cumulative passes in uint32 instead of
    uint64 halves their memory traffic, and they are the serial (non-SIMD)
    part of this kernel that dominates its runtime.
    """
    n = len(data)
    if window <= 0:
        raise ValueError("window must be positive")
    if n < window:
        return np.empty(0, dtype=np.uint32)
    d = np.frombuffer(data, dtype=np.uint8)

    # cumsum upcasts uint8 on the fly — no 4-bytes-per-byte copy of data.
    prefix = np.empty(n + 1, dtype=np.uint32)
    prefix[0] = 0
    np.cumsum(d, dtype=np.uint32, out=prefix[1:])
    a = prefix[window:] - prefix[:-window]  # wraps mod 2^32; masked below
    a &= _MASK

    idx = np.arange(n, dtype=np.uint32)
    idx &= _MASK
    # masked index (< 2^16) times a byte (< 2^8) stays far below 2^32.
    weighted = idx * d
    tprefix = np.empty(n + 1, dtype=np.uint32)
    tprefix[0] = 0
    np.cumsum(weighted, dtype=np.uint32, out=tprefix[1:])
    tspan = tprefix[window:] - tprefix[:-window]  # wraps mod 2^32

    offsets = idx[: n - window + 1]
    # The product and subtraction wrap mod 2^32 too; same congruence.
    b = (np.uint32(window) + offsets & _MASK) * a
    b -= tspan
    b &= _MASK
    return (b << np.uint32(16)) | a
