"""Vectorized (numpy) implementations of the per-byte checksum kernels.

The algorithms are byte-at-a-time in the paper's C prototype; in Python we
vectorize them so the benchmark harness can replay multi-megabyte traces.
The results are bit-identical to the pure-Python reference implementations
(property-tested in ``tests/chunking``), and cost metering is unaffected —
callers charge for the logical bytes processed either way.
"""

from __future__ import annotations

import numpy as np

_MOD = 1 << 16


def _as_u64(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8).astype(np.uint64)


def weak_checksum_np(data: bytes) -> int:
    """Weak checksum of a whole buffer (same value as ``weak_checksum``)."""
    if not data:
        return 0
    d = _as_u64(data)
    n = len(d)
    a = int(d.sum() % _MOD)
    # b = sum (n - i) * d[i]
    weights = np.arange(n, 0, -1, dtype=np.uint64)
    b = int((weights * d % _MOD).sum() % _MOD)
    return (b << 16) | a


def block_weak_checksums(data: bytes, block_size: int) -> list[int]:
    """Weak checksum of each fixed-size block of ``data``."""
    out: list[int] = []
    if not data:
        return out
    d = _as_u64(data)
    n = len(d)
    full = n // block_size
    if full:
        body = d[: full * block_size].reshape(full, block_size)
        a = body.sum(axis=1) % _MOD
        weights = np.arange(block_size, 0, -1, dtype=np.uint64)
        b = (body * weights % _MOD).sum(axis=1) % _MOD
        out.extend(int(x) for x in ((b << np.uint64(16)) | a))
    tail = d[full * block_size :]
    if tail.size:
        a = int(tail.sum() % _MOD)
        weights = np.arange(tail.size, 0, -1, dtype=np.uint64)
        b = int((weights * tail % _MOD).sum() % _MOD)
        out.append((b << 16) | a)
    return out


def all_offset_weak_checksums(data: bytes, window: int) -> np.ndarray:
    """Weak checksum of every length-``window`` substring of ``data``.

    Returns an array ``w`` with ``w[o]`` the checksum of
    ``data[o:o+window]`` for ``o`` in ``[0, len(data) - window]``.
    Uses two prefix-sum passes:

    - ``a(o) = S[o+window] - S[o]`` with ``S`` the prefix sum of bytes;
    - ``b(o) = (window + o) * a(o) - (T[o+window] - T[o])`` with ``T`` the
      prefix sum of ``i * data[i]``.

    All arithmetic runs in uint64 and is reduced mod 2^16 at the end;
    intermediate sums stay far below 2^64 for any buffer numpy can hold
    after per-term reduction.
    """
    n = len(data)
    if window <= 0:
        raise ValueError("window must be positive")
    if n < window:
        return np.empty(0, dtype=np.uint64)
    d = _as_u64(data)
    offsets = np.arange(0, n - window + 1, dtype=np.uint64)

    prefix = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(d, out=prefix[1:])
    a = (prefix[window:] - prefix[:-window]) % _MOD

    idx = np.arange(n, dtype=np.uint64)
    # Reduce each term mod 2^16 before the cumulative sum so the running
    # total cannot overflow uint64 even for gigabyte buffers.
    weighted = (idx % _MOD) * d
    tprefix = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(weighted, out=tprefix[1:])
    tspan = (tprefix[window:] - tprefix[:-window]) % _MOD

    b = ((np.uint64(window) + offsets) % _MOD * a + (_MOD - tspan)) % _MOD
    return (b << np.uint64(16)) | a
