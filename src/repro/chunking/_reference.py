"""Pure-Python per-byte reference engines (the pre-optimization hot paths).

These are the byte-at-a-time implementations the repository shipped before
the bulk rewrites in :mod:`repro.chunking._fast`, :mod:`repro.delta.rsync`,
and :mod:`repro.core.checksum_store`. They are kept for two jobs:

1. **Correctness oracle** — the golden tests (``tests/delta/test_golden.py``)
   assert the optimized engines produce *bit-identical* signatures and
   deltas to these references (and to committed fixtures, so both
   implementations cannot drift together unnoticed).
2. **Wall-clock baseline** — the ``repro.harness.wallclock`` lane measures
   each optimized engine against its reference twin and reports the
   speedup ratio; ``BENCH_wallclock.json`` gates on those ratios (see
   docs/performance.md).

Nothing in the production pipeline imports this module — it exists only so
the performance claims stay measurable and the optimization contract stays
enforceable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.chunking.strong import strong_checksum
from repro.delta.format import Copy, Delta, Literal

_MOD = 1 << 16


def weak_checksum_ref(data: bytes) -> int:
    """The 32-bit weak checksum, one byte at a time (Tridgell 1996)."""
    a = 0
    b = 0
    n = len(data)
    for i, byte in enumerate(data):
        a += byte
        b += (n - i) * byte
    a %= _MOD
    b %= _MOD
    return (b << 16) | a


def block_weak_checksums_ref(data: bytes, block_size: int) -> List[int]:
    """Per-block weak checksums via the per-byte loop."""
    out: List[int] = []
    for offset in range(0, len(data), block_size):
        out.append(weak_checksum_ref(data[offset : offset + block_size]))
    return out


def all_offset_weak_checksums_ref(data: bytes, window: int) -> List[int]:
    """Weak checksum of every window offset via O(1) per-byte rolling."""
    n = len(data)
    if window <= 0:
        raise ValueError("window must be positive")
    if n < window:
        return []
    a = 0
    b = 0
    for i in range(window):
        a += data[i]
        b += (window - i) * data[i]
    a %= _MOD
    b %= _MOD
    out = [(b << 16) | a]
    for pos in range(1, n - window + 1):
        out_byte = data[pos - 1]
        in_byte = data[pos + window - 1]
        a = (a - out_byte + in_byte) % _MOD
        b = (b - window * out_byte + a) % _MOD
        out.append((b << 16) | a)
    return out


def compute_delta_ref(
    signature,
    target: bytes,
    *,
    base: bytes | None = None,
) -> Delta:
    """The pre-optimization greedy scan: per-byte rolling, per-hit confirm.

    Semantically identical to :func:`repro.delta.rsync.compute_delta`
    (same greedy matching, same confirmation rules, no cost metering) but
    implemented as the genuine byte-at-a-time rolling-window walk.
    """
    block_size = signature.block_size
    n = len(target)
    delta = Delta()
    if n == 0:
        return delta
    if base is None and not signature.with_strong:
        raise ValueError(
            "remote rsync needs strong checksums in the signature; "
            "pass base= for local bitwise confirmation"
        )

    weak_index: Dict[int, list] = signature.weak_index()
    literal_start = 0
    pos = 0
    rolling_a = rolling_b = 0
    rolling_valid = False

    while pos + block_size <= n:
        if not rolling_valid:
            rolling_a = rolling_b = 0
            for i in range(block_size):
                rolling_a += target[pos + i]
                rolling_b += (block_size - i) * target[pos + i]
            rolling_a %= _MOD
            rolling_b %= _MOD
            rolling_valid = True
        weak = (rolling_b << 16) | rolling_a

        matched_block = None
        if weak in weak_index:
            window = target[pos : pos + block_size]
            for block in weak_index[weak]:
                if base is not None:
                    if base[block.offset : block.offset + block_size] == window:
                        matched_block = block
                        break
                else:
                    if block.strong == strong_checksum(window):
                        matched_block = block
                        break
        if matched_block is None:
            out_byte = target[pos]
            pos += 1
            if pos + block_size <= n:
                in_byte = target[pos + block_size - 1]
                rolling_a = (rolling_a - out_byte + in_byte) % _MOD
                rolling_b = (rolling_b - block_size * out_byte + rolling_a) % _MOD
            continue
        if pos > literal_start:
            delta.append(Literal(target[literal_start:pos]))
        delta.append(Copy(matched_block.offset, block_size))
        pos += block_size
        literal_start = pos
        rolling_valid = False

    if literal_start < n:
        delta.append(Literal(target[literal_start:]))
    return delta


def checksum_sweep_ref(content: bytes, block_size: int) -> List[int]:
    """The pre-optimization whole-file sweep: one per-byte pass per block.

    This is what :meth:`repro.core.checksum_store.ChecksumStore.verify_file`
    cost before the span-bulk rewrite — the wall-clock lane's baseline for
    the ``checksum_sweep`` engine.
    """
    return block_weak_checksums_ref(content, block_size)
