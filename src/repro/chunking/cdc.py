"""Content-defined chunking (CDC) with a gear rolling hash.

This is the LBFS-style chunker Seafile uses: chunk boundaries are placed
where a rolling hash of the recent byte window matches a mask, so an insert
or delete only re-chunks its neighbourhood instead of shifting every
boundary after it. The tradeoff the paper highlights (Section II-A): to keep
the chunk-index small, Seafile uses a large average chunk (1 MB), so even a
1-byte edit re-uploads ~1 MB.

The gear hash ``h_t = (h_{t-1} << 1) + gear[b_t] (mod 2^64)`` has finite
memory — after 64 steps the oldest byte's contribution has shifted out — so
the boundary predicate at each position is a pure function of the preceding
64 bytes. We exploit that to vectorize boundary detection with numpy
(``h_t = sum_{i<64} gear[b_{t-i}] << i``), which matches the sequential
reference implementation bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.chunking.strong import dedup_hash
from repro.cost.meter import CostMeter, NULL_METER

_GEAR_BITS = 64
_U64 = np.uint64


def _gear_table(seed: int = 0x9E3779B97F4A7C15) -> np.ndarray:
    """A fixed pseudo-random 256-entry table (splitmix64 stream)."""
    out = np.empty(256, dtype=_U64)
    state = seed & 0xFFFFFFFFFFFFFFFF
    for i in range(256):
        state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        out[i] = z ^ (z >> 31)
    return out


GEAR_TABLE = _gear_table()


class GearHasher:
    """Sequential reference gear hash (used for testing the fast path)."""

    def __init__(self):
        self._h = 0

    def update(self, byte: int) -> int:
        """Feed one byte; returns the new 64-bit hash value."""
        self._h = ((self._h << 1) + int(GEAR_TABLE[byte])) & 0xFFFFFFFFFFFFFFFF
        return self._h

    @property
    def value(self) -> int:
        return self._h


@dataclass(frozen=True)
class CDCChunk:
    """One content-defined chunk.

    Attributes:
        offset: byte offset in the file.
        length: chunk length.
        fingerprint: SHA-256 of the chunk content (the dedup key).
    """

    offset: int
    length: int
    fingerprint: bytes


def _mask_for_average(avg_size: int) -> int:
    """Mask with ``log2(avg_size)`` low bits set, giving that average chunk."""
    bits = max(1, int(avg_size).bit_length() - 1)
    return (1 << bits) - 1


def _gear_hashes(data: bytes, bits: int = _GEAR_BITS) -> np.ndarray:
    """Vectorized gear hash at every position of ``data``.

    ``bits`` bounds how many low bits of the hash the caller will inspect:
    because the gear recurrence only shifts bits *upward*, bit ``j`` of the
    hash depends solely on the last ``j+1`` bytes, so a boundary predicate
    masking the low ``k`` bits needs only ``k`` shifted-add terms. The
    returned values agree with the sequential :class:`GearHasher` on those
    low ``bits`` bits exactly.
    """
    mapped = GEAR_TABLE[np.frombuffer(data, dtype=np.uint8)]
    h = np.zeros(len(data), dtype=_U64)
    for i in range(min(bits, _GEAR_BITS, len(data))):
        # contribution of the byte i positions back, shifted left i bits
        h[i:] += mapped[: len(data) - i] << _U64(i)
    if bits < 64:
        h &= _U64((1 << bits) - 1)
    return h


def gear_hashes_incremental(
    prev: bytes,
    new: bytes,
    prev_hashes: np.ndarray,
    bits: int,
) -> np.ndarray:
    """Gear hashes of ``new``, reusing ``prev_hashes`` where content matches.

    Exact: the gear hash at position ``t`` depends only on the preceding 64
    bytes, so positions whose 64-byte context is untouched keep their old
    hash. Only the windows around differing regions (and any tail beyond
    the old length) are recomputed. This is a wall-clock optimization for
    the simulator — the metered CPU cost is unchanged because the *modeled*
    system still scans the whole file.
    """
    if prev_hashes.shape[0] != len(prev):
        return _gear_hashes(new, bits=bits)
    n_common = min(len(prev), len(new))
    if n_common == 0:
        return _gear_hashes(new, bits=bits)
    a = np.frombuffer(prev, dtype=np.uint8)[:n_common]
    b = np.frombuffer(new, dtype=np.uint8)[:n_common]
    diff = np.flatnonzero(a != b)
    if diff.size == 0 and len(prev) == len(new):
        return prev_hashes
    if diff.size > len(new) // 4:
        return _gear_hashes(new, bits=bits)
    hashes = np.zeros(len(new), dtype=_U64)
    hashes[:n_common] = prev_hashes[:n_common]

    # merge difference positions into windows with 64 bytes of trailing reach
    spans: List[tuple[int, int]] = []
    if diff.size:
        start = int(diff[0])
        end = start
        for pos in diff[1:]:
            pos = int(pos)
            if pos <= end + _GEAR_BITS:
                end = pos
            else:
                spans.append((start, end))
                start = end = pos
        spans.append((start, end))
    if len(new) != len(prev):
        # grown or truncated: everything from the old end onward changes
        spans.append((max(0, n_common - 1), len(new) - 1))
    for span_start, span_end in spans:
        lo = max(0, span_start - (_GEAR_BITS - 1))
        hi = min(len(new), span_end + _GEAR_BITS)
        # recompute with 63 bytes of left context for warm-up, then discard it
        ctx = max(0, lo - (_GEAR_BITS - 1))
        local = _gear_hashes(new[ctx:hi], bits=bits)
        hashes[lo:hi] = local[lo - ctx :]
    return hashes


def cdc_boundaries(
    data: bytes,
    avg_size: int,
    *,
    min_size: int | None = None,
    max_size: int | None = None,
    hashes: np.ndarray | None = None,
) -> List[int]:
    """Chunk end offsets (exclusive) for ``data``; the last is ``len(data)``."""
    if avg_size <= 0:
        raise ValueError("avg_size must be positive")
    n = len(data)
    if n == 0:
        return []
    min_size = min_size if min_size is not None else max(1, avg_size // 4)
    max_size = max_size if max_size is not None else avg_size * 4
    mask_value = _mask_for_average(avg_size)
    mask = _U64(mask_value)
    if hashes is None:
        hashes = _gear_hashes(data, bits=mask_value.bit_length())
    candidates = np.flatnonzero((hashes & mask) == 0)

    boundaries: List[int] = []
    start = 0
    while start < n:
        # A boundary at byte position p ends the chunk at p + 1; the first
        # eligible position is start + min_size - 1, the last is capped by
        # max_size (or end of data).
        hard_cut = min(start + max_size, n)
        ci = int(np.searchsorted(candidates, start + min_size - 1))
        if ci < len(candidates) and int(candidates[ci]) < hard_cut:
            cut = int(candidates[ci]) + 1
        else:
            cut = hard_cut
        boundaries.append(cut)
        start = cut
    return boundaries


def cdc_chunks(
    data: bytes,
    avg_size: int,
    *,
    min_size: int | None = None,
    max_size: int | None = None,
    meter: CostMeter = NULL_METER,
) -> List[CDCChunk]:
    """Chunk ``data`` content-defined and fingerprint each chunk.

    Charges ``cdc_chunking`` for the boundary scan and ``dedup_hash`` for
    the per-chunk fingerprints (Seafile computes these on the client and
    ships them to the server, which is why its server CPU is low).
    """
    meter.charge_bytes("cdc_chunking", len(data))
    chunks: List[CDCChunk] = []
    start = 0
    for end in cdc_boundaries(data, avg_size, min_size=min_size, max_size=max_size):
        body = data[start:end]
        chunks.append(
            CDCChunk(offset=start, length=len(body), fingerprint=dedup_hash(body, meter))
        )
        start = end
    return chunks
