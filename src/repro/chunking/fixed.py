"""Fixed-size block chunking, as used by rsync and the checksum store."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.chunking.strong import strong_checksum
from repro.cost.meter import CostMeter, NULL_METER


@dataclass(frozen=True)
class FixedChunk:
    """One fixed-size block of a file.

    Attributes:
        index: block number (offset // block_size).
        offset: byte offset of the block in the file.
        length: block length (the final block may be shorter).
        weak: 32-bit rolling checksum of the block.
        strong: MD5 digest of the block, or ``None`` when the caller chose
            not to pay for strong checksums (the DeltaCFS local path).
    """

    index: int
    offset: int
    length: int
    weak: int
    strong: bytes | None


def fixed_chunks(
    data: bytes,
    block_size: int,
    *,
    with_strong: bool = True,
    meter: CostMeter = NULL_METER,
) -> List[FixedChunk]:
    """Split ``data`` into fixed-size blocks with checksums.

    This is the "signature" side of rsync: the holder of the old file
    computes one (weak, strong) pair per block. With ``with_strong=False``
    only the cheap weak checksum is computed — DeltaCFS does this because it
    verifies candidate matches by bitwise comparison instead.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    from repro.chunking._fast import block_weak_checksums
    from repro.chunking.strong import strong_checksums

    meter.charge_bytes("rolling_checksum", len(data))
    weaks = block_weak_checksums(data, block_size)
    n = len(data)
    # memoryview slices feed the strong hash without copying each block.
    view = memoryview(data)
    if with_strong:
        strongs: List[bytes | None] = strong_checksums(
            (view[off : off + block_size] for off in range(0, n, block_size)),
            meter,
        )
    else:
        strongs = [None] * len(weaks)
    chunks: List[FixedChunk] = []
    for i, weak in enumerate(weaks):
        offset = i * block_size
        chunks.append(
            FixedChunk(
                index=i,
                offset=offset,
                length=min(block_size, n - offset),
                weak=weak,
                strong=strongs[i],
            )
        )
    return chunks
