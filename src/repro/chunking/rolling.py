"""The rsync weak rolling checksum.

This is the Adler-32-style checksum from Tridgell's rsync paper: two 16-bit
sums ``a`` (sum of bytes) and ``b`` (sum of prefix sums) combined into a
32-bit value. Its defining property is O(1) *rolling*: sliding the window by
one byte updates the checksum from the outgoing and incoming bytes alone,
which is what lets rsync scan a file at every offset.

DeltaCFS reuses this same checksum as the per-block integrity checksum of
the Checksum Store (paper Section III-E), "which further reduces the
computational cost".
"""

from __future__ import annotations

from repro.cost.meter import CostMeter, NULL_METER

_MOD = 1 << 16


def weak_checksum(data: bytes, meter: CostMeter = NULL_METER) -> int:
    """Compute the 32-bit weak checksum of ``data`` from scratch.

    Large buffers take a vectorized path (bit-identical results); the cost
    charged is the same either way because it reflects logical work.
    """
    meter.charge_bytes("rolling_checksum", len(data))
    if len(data) > 512:
        from repro.chunking._fast import weak_checksum_np

        return weak_checksum_np(data)
    a = 0
    b = 0
    n = len(data)
    for i, byte in enumerate(data):
        a += byte
        b += (n - i) * byte
    a %= _MOD
    b %= _MOD
    return (b << 16) | a


class RollingChecksum:
    """Incrementally-rollable weak checksum over a fixed-size window."""

    def __init__(self, window: bytes, meter: CostMeter = NULL_METER):
        self._meter = meter
        self._n = len(window)
        meter.charge_bytes("rolling_checksum", self._n)
        a = 0
        b = 0
        for i, byte in enumerate(window):
            a += byte
            b += (self._n - i) * byte
        self._a = a % _MOD
        self._b = b % _MOD

    @property
    def value(self) -> int:
        """The current 32-bit checksum."""
        return (self._b << 16) | self._a

    @property
    def window_size(self) -> int:
        """Size of the window this checksum covers."""
        return self._n

    def roll(self, out_byte: int, in_byte: int) -> int:
        """Slide the window one byte: remove ``out_byte``, append ``in_byte``.

        Returns the new checksum value. Costs O(1) regardless of window
        size — the heart of rsync's efficiency.
        """
        self._meter.charge_bytes("rolling_checksum", 1)
        self._a = (self._a - out_byte + in_byte) % _MOD
        self._b = (self._b - self._n * out_byte + self._a) % _MOD
        return self.value
