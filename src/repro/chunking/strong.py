"""Metered strong checksums.

``strong_checksum`` is the MD5 used by classic rsync to confirm weak-hash
matches — exactly the computation DeltaCFS's bitwise optimization removes.
``dedup_hash`` is the content hash used by deduplicating uploaders
(Dropbox's 4 MB blocks, Seafile's CDC chunks).
"""

from __future__ import annotations

import hashlib

from repro.cost.meter import CostMeter, NULL_METER


def strong_checksum(data: bytes, meter: CostMeter = NULL_METER) -> bytes:
    """MD5 digest of ``data``, charged to the ``strong_checksum`` category."""
    meter.charge_bytes("strong_checksum", len(data))
    return hashlib.md5(data).digest()


def dedup_hash(data: bytes, meter: CostMeter = NULL_METER) -> bytes:
    """SHA-256 digest used as a deduplication key, charged as ``dedup_hash``."""
    meter.charge_bytes("dedup_hash", len(data))
    return hashlib.sha256(data).digest()
