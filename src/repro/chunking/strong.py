"""Metered strong checksums.

``strong_checksum`` is the MD5 used by classic rsync to confirm weak-hash
matches — exactly the computation DeltaCFS's bitwise optimization removes.
``dedup_hash`` is the content hash used by deduplicating uploaders
(Dropbox's 4 MB blocks, Seafile's CDC chunks).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

from repro.cost.meter import CostMeter, NULL_METER

# Binding the constructors once (and cloning a pre-built empty digest for
# the batched path) skips the per-call OpenSSL constructor lookup — it is
# measurable when the signature side hashes tens of thousands of 4 KB
# blocks (see docs/performance.md).
_MD5 = hashlib.md5
_SHA256 = hashlib.sha256
_MD5_SEED = hashlib.md5()


def strong_checksum(data: bytes, meter: CostMeter = NULL_METER) -> bytes:
    """MD5 digest of ``data``, charged to the ``strong_checksum`` category."""
    meter.charge_bytes("strong_checksum", len(data))
    return _MD5(data).digest()


def strong_checksums(
    blocks: Iterable[bytes], meter: CostMeter = NULL_METER
) -> List[bytes]:
    """MD5 digest of each block, with one batched cost charge.

    The charge equals the sum of per-block charges, so cost-model totals
    are identical to calling :func:`strong_checksum` in a loop; only the
    Python-level overhead (meter calls, constructor lookups) is batched.
    Accepts :class:`memoryview` blocks — nothing is copied.
    """
    total = 0
    out: List[bytes] = []
    seed = _MD5_SEED
    for block in blocks:
        total += len(block)
        digest = seed.copy()
        digest.update(block)
        out.append(digest.digest())
    meter.charge_bytes("strong_checksum", total)
    return out


def dedup_hash(data: bytes, meter: CostMeter = NULL_METER) -> bytes:
    """SHA-256 digest used as a deduplication key, charged as ``dedup_hash``."""
    meter.charge_bytes("dedup_hash", len(data))
    return _SHA256(data).digest()
