"""Command-line interface: run experiments, generate and replay traces.

Usage (installed, or ``python -m repro``):

    python -m repro info
    python -m repro experiment table2 --fast
    python -m repro experiment all
    python -m repro trace word --out word.trace --scale 16 --ops 10
    python -m repro replay word.trace --solution deltacfs
    python -m repro replay word.trace --metrics --trace-out trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.metrics.report import format_bytes, format_table, format_tue


def _cmd_info(_args) -> int:
    import repro

    print(f"DeltaCFS reproduction v{repro.__version__}")
    print(__doc__.strip().splitlines()[0])
    print("\nsubsystems:")
    for name, role in [
        ("repro.core", "the DeltaCFS client engine (the paper's contribution)"),
        ("repro.server", "the cloud: versioned store, conflicts, fan-out"),
        ("repro.vfs", "virtual file system + operation interception (FUSE role)"),
        ("repro.delta", "rsync / bitwise rsync / patch"),
        ("repro.chunking", "rolling, strong, fixed, content-defined chunking"),
        ("repro.kvstore", "WAL-backed KV store (LevelDB role)"),
        ("repro.net", "wire protocol + accounted simulated WAN"),
        ("repro.cost", "calibrated CPU-tick model"),
        ("repro.baselines", "Dropbox / Seafile / NFS / Dropsync re-implementations"),
        ("repro.workloads", "paper traces + filebench op streams"),
        ("repro.faults", "corruption & crash-inconsistency injection"),
        ("repro.harness", "per-table/figure experiment drivers"),
    ]:
        print(f"  {name:18s} {role}")
    return 0


def _print_run_results(title: str, results) -> None:
    rows = [
        [
            r.extra.get("setting", "pc"),
            r.trace,
            r.solution,
            f"{r.client_ticks:.1f}",
            f"{r.server_ticks:.1f}",
            format_bytes(r.up_bytes),
            format_bytes(r.down_bytes),
        ]
        for r in results
    ]
    print(f"\n=== {title} ===")
    print(
        format_table(
            ["setting", "trace", "solution", "cli CPU", "srv CPU", "up", "down"],
            rows,
        )
    )


def _cmd_experiment(args) -> int:
    from repro.harness import experiments

    fast = args.fast
    wanted = args.name
    ran_any = False

    if wanted in ("table2", "all"):
        _print_run_results("Table II / CPU", experiments.table2_cpu(fast))
        ran_any = True
    if wanted in ("fig8", "all"):
        _print_run_results("Figure 8 / network on PC", experiments.fig8_network_pc(fast))
        ran_any = True
    if wanted in ("fig9", "all"):
        _print_run_results(
            "Figure 9 / network on mobile", experiments.fig9_network_mobile(fast)
        )
        ran_any = True
    if wanted in ("fig1", "all"):
        results = experiments.fig1_motivation(fast)
        print("\n=== Figure 1 / motivation ===")
        print(
            format_table(
                ["workload", "solution", "cpu", "upload", "disk reads"],
                [
                    [
                        r.trace,
                        r.solution,
                        f"{r.client_ticks:.1f}",
                        format_bytes(r.up_bytes),
                        format_bytes(r.extra["read_bytes"]),
                    ]
                    for r in results
                ],
            )
        )
        ran_any = True
    if wanted in ("fig2", "all"):
        result = experiments.fig2_dropsync_mobile(fast)
        print("\n=== Figure 2 / Dropsync on mobile ===")
        print(f"traffic {format_bytes(result.total_traffic)}  "
              f"update {format_bytes(result.update_bytes)}  "
              f"TUE {result.tue:.1f}  CPU {result.cpu_ticks:.1f}")
        ran_any = True
    if wanted in ("table3", "all"):
        from repro.harness.microbench import STACKS, run_microbench
        from repro.workloads.filebench import (
            fileserver_ops,
            varmail_ops,
            webserver_ops,
        )

        print("\n=== Table III / microbenchmarks (MB/s) ===")
        rows = []
        for name, ops in [
            ("fileserver", fileserver_ops()),
            ("varmail", varmail_ops()),
            ("webserver", webserver_ops()),
        ]:
            rows.append(
                [name]
                + [f"{run_microbench(name, ops, s).mb_per_s:.1f}" for s in STACKS]
            )
        print(format_table(["workload"] + list(STACKS), rows))
        ran_any = True
    if wanted in ("table4", "all"):
        results = experiments.table4_reliability()
        print("\n=== Table IV / reliability ===")
        print(
            format_table(
                ["service", "corrupted", "inconsistent", "causal"],
                [[o.service, o.corrupted, o.inconsistent, o.causal_order] for o in results],
            )
        )
        ran_any = True

    if not ran_any:
        print(f"unknown experiment {wanted!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_trace(args) -> int:
    from repro.workloads import (
        append_write_trace,
        gedit_trace,
        random_write_trace,
        wechat_trace,
        word_trace,
    )
    from repro.workloads.traceio import save_trace_file

    factories = {
        "append": lambda: append_write_trace(scale=args.scale, appends=args.ops),
        "random": lambda: random_write_trace(scale=args.scale, writes=args.ops),
        "word": lambda: word_trace(scale=args.scale, saves=args.ops),
        "wechat": lambda: wechat_trace(scale=args.scale, modifications=args.ops),
        "gedit": lambda: gedit_trace(saves=args.ops),
    }
    factory = factories.get(args.workload)
    if factory is None:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    trace = factory()
    save_trace_file(trace, args.out)
    print(
        f"wrote {args.out}: {len(trace.ops)} ops, "
        f"{format_bytes(trace.stats.bytes_written)} written, "
        f"{format_bytes(trace.stats.update_bytes)} logical update"
    )
    return 0


def _replay_with_crash(args, trace, journal_kv, obs, faults) -> int:
    """Replay with a simulated crash after op ``--crash-at N``.

    Runs the first N ops, kills the client (volatile state gone, journal
    kept), runs ``recover()``, then finishes the trace. Prints the
    recovery report next to the usual traffic summary so a user can see
    what the journal bought them.
    """
    from repro.faults.crash import simulate_crash
    from repro.harness.runner import _preload, build_system
    from repro.workloads.traces import apply_op

    n = args.crash_at
    if not 0 <= n <= len(trace.ops):
        print(f"--crash-at {n} out of range (trace has {len(trace.ops)} ops)",
              file=sys.stderr)
        return 2
    system = build_system(
        "deltacfs", obs=obs, faults=faults, fault_seed=args.fault_seed,
        journal_kv=journal_kv,
    )
    _preload(system, trace)
    system.reset_counters()  # match run_trace: measure past the preload
    clock = system.clock

    def run_ops(ops) -> None:
        for op in ops:
            while op.timestamp > clock.now():
                step = min(1.0, op.timestamp - clock.now())
                clock.advance(step)
                system.pump(clock.now())
            apply_op(system.fs, op)
        system.pump(clock.now())

    run_ops(trace.ops[:n])
    dirty = simulate_crash(system.client)
    report = system.client.recover()
    run_ops(trace.ops[n:])
    for _ in range(10):
        clock.advance(1.0)
        system.pump(clock.now())
    system.flush()

    print(f"crashed after op {n}/{len(trace.ops)}; "
          f"{len(dirty)} dirty file(s) at the cut")
    print(f"recovery: {report.nodes_replayed} node(s) replayed, "
          f"{report.nodes_already_applied} already applied, "
          f"{report.nodes_rebased} rebased, "
          f"{report.blocks_repaired} block(s) repaired "
          f"({format_bytes(report.bytes_downloaded)} down), "
          f"{report.full_file_fallbacks} full-file fallback(s)")
    print(f"total traffic: up {format_bytes(system.channel.stats.up_bytes)}  "
          f"down {format_bytes(system.channel.stats.down_bytes)}")
    if args.metrics:
        print()
        print(obs.report())
    return 0


def _cmd_replay(args) -> int:
    from repro.faults.network import NO_FAULTS, NetworkFaults
    from repro.harness.runner import SOLUTIONS, run_trace
    from repro.obs import NULL_OBS, Observability
    from repro.workloads.traceio import load_trace_file

    if args.solution not in SOLUTIONS:
        print(f"unknown solution {args.solution!r}; pick one of {SOLUTIONS}",
              file=sys.stderr)
        return 2
    if args.journal is not None and args.solution != "deltacfs":
        print("--journal requires --solution deltacfs (the journaled client)",
              file=sys.stderr)
        return 2
    if args.crash_at is not None and args.journal is None:
        print("--crash-at requires --journal (recovery replays the journal)",
              file=sys.stderr)
        return 2
    faults = NO_FAULTS
    if args.loss_rate or args.dup_rate or args.reorder_rate:
        if args.solution != "deltacfs":
            print("fault injection (--loss-rate/--dup-rate/--reorder-rate) "
                  "requires --solution deltacfs (the reliable transport)",
                  file=sys.stderr)
            return 2
        try:
            faults = NetworkFaults(
                drop_prob=args.loss_rate,
                dup_prob=args.dup_rate,
                reorder_prob=args.reorder_rate,
            )
            faults.validate()
        except ValueError as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    trace = load_trace_file(args.trace)
    # Observability is opt-in: without either flag the run uses NULL_OBS
    # and is byte-identical to an uninstrumented run.
    obs = Observability() if (args.metrics or args.trace_out) else NULL_OBS
    journal_kv = None
    if args.journal is not None:
        from repro.kvstore.kv import LogStructuredKV

        # sync=True: the journal only helps if the records survive the
        # crash, so every append is fsynced.
        journal_kv = LogStructuredKV(args.journal, sync=True)
    if args.crash_at is not None:
        return _replay_with_crash(args, trace, journal_kv, obs, faults)
    result = run_trace(
        args.solution, trace, obs=obs, faults=faults,
        fault_seed=args.fault_seed, journal_kv=journal_kv,
    )
    print(
        format_table(
            ["trace", "solution", "cli CPU", "srv CPU", "up", "down", "TUE"],
            [[
                result.trace,
                result.solution,
                f"{result.client_ticks:.1f}",
                f"{result.server_ticks:.1f}",
                format_bytes(result.up_bytes),
                format_bytes(result.down_bytes),
                format_tue(result.tue),
            ]],
        )
    )
    if args.metrics:
        print()
        print(obs.report())
    if args.trace_out:
        try:
            count = obs.tracer.write_jsonl(args.trace_out)
        except OSError as exc:
            print(f"cannot write trace to {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"\nwrote {args.trace_out}: {count} trace records")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DeltaCFS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show the package inventory").set_defaults(
        func=_cmd_info
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument(
        "name",
        choices=["table2", "table3", "table4", "fig1", "fig2", "fig8", "fig9", "all"],
    )
    experiment.add_argument("--fast", action="store_true", help="reduced op counts")
    experiment.set_defaults(func=_cmd_experiment)

    trace = sub.add_parser("trace", help="generate and save a workload trace")
    trace.add_argument("workload", choices=["append", "random", "word", "wechat", "gedit"])
    trace.add_argument("--out", required=True)
    trace.add_argument("--scale", type=int, default=32)
    trace.add_argument("--ops", type=int, default=10,
                       help="saves/modifications/appends, per workload")
    trace.set_defaults(func=_cmd_trace)

    replay = sub.add_parser("replay", help="replay a saved trace through a sync system")
    replay.add_argument("trace")
    replay.add_argument("--solution", default="deltacfs")
    replay.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability metrics report after the run",
    )
    replay.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the structured event trace as JSONL to PATH",
    )
    replay.add_argument(
        "--loss-rate", type=float, default=0.0, metavar="P",
        help="drop each uplink/downlink message with probability P "
             "(deltacfs only; engages the reliable transport)",
    )
    replay.add_argument(
        "--dup-rate", type=float, default=0.0, metavar="P",
        help="duplicate each delivered message with probability P",
    )
    replay.add_argument(
        "--reorder-rate", type=float, default=0.0, metavar="P",
        help="delay each delivered message past later sends with probability P",
    )
    replay.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan and retransmit jitter (identical "
             "seeds reproduce identical schedules)",
    )
    replay.add_argument(
        "--journal", metavar="PATH", default=None,
        help="attach a crash-recovery journal (fsynced WAL at PATH; "
             "deltacfs only)",
    )
    replay.add_argument(
        "--crash-at", type=int, default=None, metavar="N",
        help="kill the client after trace op N, recover from the journal, "
             "then finish the trace (requires --journal)",
    )
    replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
