"""Command-line interface: run experiments, generate and replay traces.

Usage (installed, or ``python -m repro``):

    python -m repro info
    python -m repro experiment table2 --fast
    python -m repro experiment all
    python -m repro trace word --out word.trace --scale 16 --ops 10
    python -m repro replay word.trace --solution deltacfs
    python -m repro replay word.trace --metrics --trace-out trace.jsonl
    python -m repro inspect trace.jsonl --attribution
    python -m repro experiment fig8 --fast --bench-json benchmarks/
    python -m repro check
    python -m repro check --traces trace.jsonl crash-trace.jsonl
    python -m repro fleet --clients 10000 --shards 8 --arrival bursty
    python -m repro fleet --curve --bench-json bench_out/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.metrics.report import format_bytes, format_table, format_tue


def _cmd_info(_args) -> int:
    import repro

    print(f"DeltaCFS reproduction v{repro.__version__}")
    print(__doc__.strip().splitlines()[0])
    print("\nsubsystems:")
    for name, role in [
        ("repro.core", "the DeltaCFS client engine (the paper's contribution)"),
        ("repro.server", "the cloud: versioned store, conflicts, fan-out"),
        ("repro.vfs", "virtual file system + operation interception (FUSE role)"),
        ("repro.delta", "rsync / bitwise rsync / patch"),
        ("repro.chunking", "rolling, strong, fixed, content-defined chunking"),
        ("repro.kvstore", "WAL-backed KV store (LevelDB role)"),
        ("repro.net", "wire protocol + accounted simulated WAN"),
        ("repro.cost", "calibrated CPU-tick model"),
        ("repro.baselines", "Dropbox / Seafile / NFS / Dropsync re-implementations"),
        ("repro.workloads", "paper traces + filebench op streams"),
        ("repro.faults", "corruption & crash-inconsistency injection"),
        ("repro.harness", "per-table/figure experiment drivers"),
    ]:
        print(f"  {name:18s} {role}")
    return 0


def _print_run_results(title: str, results) -> None:
    rows = [
        [
            r.extra.get("setting", "pc"),
            r.trace,
            r.solution,
            f"{r.client_ticks:.1f}",
            f"{r.server_ticks:.1f}",
            format_bytes(r.up_bytes),
            format_bytes(r.down_bytes),
        ]
        for r in results
    ]
    print(f"\n=== {title} ===")
    print(
        format_table(
            ["setting", "trace", "solution", "cli CPU", "srv CPU", "up", "down"],
            rows,
        )
    )


def _write_bench_doc(directory: str, name: str, doc) -> None:
    """Emit a prebuilt ``BENCH_<name>.json`` document into ``directory``."""
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def _write_bench_snapshot(directory: str, name: str, results) -> None:
    """Emit ``BENCH_<name>.json`` into ``directory`` (see bench_snapshot)."""
    from repro.harness.runner import bench_snapshot

    _write_bench_doc(directory, name, bench_snapshot(name, results))


def _cmd_experiment(args) -> int:
    from repro.harness import experiments

    fast = args.fast
    wanted = args.name
    bench_dir = args.bench_json
    ran_any = False
    benched_any = False

    if wanted in ("table2", "all"):
        results = experiments.table2_cpu(fast)
        _print_run_results("Table II / CPU", results)
        if bench_dir:
            _write_bench_snapshot(bench_dir, "table2", results)
            benched_any = True
        ran_any = True
    if wanted in ("fig8", "all"):
        results = experiments.fig8_network_pc(fast)
        _print_run_results("Figure 8 / network on PC", results)
        if bench_dir:
            _write_bench_snapshot(bench_dir, "fig8", results)
            benched_any = True
        ran_any = True
    if wanted in ("fig9", "all"):
        results = experiments.fig9_network_mobile(fast)
        _print_run_results("Figure 9 / network on mobile", results)
        if bench_dir:
            _write_bench_snapshot(bench_dir, "fig9", results)
            benched_any = True
        ran_any = True
    if wanted in ("policy", "all"):
        results = experiments.policy_sweep(fast)
        _print_run_results("Policy sweep / mechanism selection", results)
        if bench_dir:
            _write_bench_snapshot(bench_dir, "policy", results)
            benched_any = True
        ran_any = True
    if wanted in ("fig1", "all"):
        results = experiments.fig1_motivation(fast)
        if bench_dir:
            _write_bench_snapshot(bench_dir, "fig1", results)
            benched_any = True
        print("\n=== Figure 1 / motivation ===")
        print(
            format_table(
                ["workload", "solution", "cpu", "upload", "disk reads"],
                [
                    [
                        r.trace,
                        r.solution,
                        f"{r.client_ticks:.1f}",
                        format_bytes(r.up_bytes),
                        format_bytes(r.extra["read_bytes"]),
                    ]
                    for r in results
                ],
            )
        )
        ran_any = True
    if wanted in ("fig2", "all"):
        result = experiments.fig2_dropsync_mobile(fast)
        print("\n=== Figure 2 / Dropsync on mobile ===")
        print(f"traffic {format_bytes(result.total_traffic)}  "
              f"update {format_bytes(result.update_bytes)}  "
              f"TUE {result.tue:.1f}  CPU {result.cpu_ticks:.1f}")
        ran_any = True
    if wanted in ("table3", "all"):
        from repro.harness.microbench import (
            STACKS,
            microbench_snapshot,
            run_microbench,
        )
        from repro.workloads.filebench import (
            fileserver_ops,
            varmail_ops,
            webserver_ops,
        )

        print("\n=== Table III / microbenchmarks (MB/s) ===")
        rows = []
        table3_results = []
        for name, ops in [
            ("fileserver", fileserver_ops()),
            ("varmail", varmail_ops()),
            ("webserver", webserver_ops()),
        ]:
            per_stack = [run_microbench(name, ops, s) for s in STACKS]
            table3_results.extend(per_stack)
            # block size and input MiB are identical across stacks for one
            # workload (0 = stack has no sync engine, so show the max).
            rows.append(
                [
                    name,
                    str(max(r.block_size for r in per_stack)),
                    f"{per_stack[0].input_mb:.1f}",
                ]
                + [f"{r.mb_per_s:.1f}" for r in per_stack]
            )
        print(
            format_table(
                ["workload", "blk B", "in MiB"] + list(STACKS), rows
            )
        )
        if bench_dir:
            _write_bench_doc(
                bench_dir, "table3", microbench_snapshot(table3_results)
            )
            benched_any = True
        ran_any = True
    if wanted in ("table4", "all"):
        results = experiments.table4_reliability()
        print("\n=== Table IV / reliability ===")
        print(
            format_table(
                ["service", "corrupted", "inconsistent", "causal"],
                [[o.service, o.corrupted, o.inconsistent, o.causal_order] for o in results],
            )
        )
        ran_any = True

    if args.wall:
        from repro.harness.wallclock import wallclock_snapshot

        snap = wallclock_snapshot()
        context = snap["context"]
        print(
            f"\n=== wall-clock lane (measured, median of "
            f"{context['repeats']}; {context['input_mb']} MB inputs, "
            f"{context['block_size']} B blocks) ==="
        )
        print(
            format_table(
                ["lane", "fast MB/s", "ref MB/s", "speedup"],
                [
                    [
                        lane,
                        f"{info['fast_mb_per_s']:.1f}",
                        f"{info['ref_mb_per_s']:.2f}",
                        f"{snap['metrics'][lane + '/speedup']:.1f}x",
                    ]
                    for lane, info in sorted(context["lanes"].items())
                ],
            )
        )
        if bench_dir:
            _write_bench_doc(bench_dir, "wallclock", snap)
            benched_any = True

    if not ran_any:
        print(f"unknown experiment {wanted!r}", file=sys.stderr)
        return 2
    if bench_dir and not benched_any:
        print(
            f"--bench-json covers RunResult-snapshot experiments "
            f"(table2/fig8/fig9/fig1), table3, and the --wall lane, "
            f"not {wanted!r}",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_fleet(args) -> int:
    """Fleet-scale virtual-time simulation against the sharded cloud."""
    from repro.harness.fleet import (
        FLEET_CURVE,
        FleetSpec,
        bench_doc,
        fleet_curve,
        run_fleet,
    )
    from repro.obs import NULL_OBS, Observability

    trace_sink = None
    if args.trace_out:
        from repro.obs import Tracer

        if args.clients > 2000 and not args.curve:
            print(
                "--trace-out records every pipeline event; cap --clients "
                "at 2000 for a recordable run",
                file=sys.stderr,
            )
            return 2
        try:
            trace_sink = open(args.trace_out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"cannot write trace to {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 1
        obs = Observability(tracer=Tracer(sink=trace_sink))
    elif args.metrics:
        obs = Observability()
    else:
        obs = NULL_OBS

    def show(results) -> None:
        print(format_table(
            [
                "clients", "shards", "arrival", "writes",
                "p50 s", "p99 s", "max s",
                "shard ticks max", "peak q", "up",
            ],
            [[
                r.spec.n_clients,
                r.spec.n_shards,
                r.spec.arrival,
                r.writes,
                f"{r.p50_latency:.3f}",
                f"{r.p99_latency:.3f}",
                f"{r.max_latency:.3f}",
                f"{max(r.shard_ticks):.3f}",
                max(r.shard_queue_peak),
                format_bytes(r.total_up_bytes),
            ] for r in results],
        ))

    try:
        if args.curve or args.bench_json:
            results = fleet_curve(FLEET_CURVE, obs=obs)
            show(results)
            if args.bench_json:
                _write_bench_doc(args.bench_json, "fleet", bench_doc(results))
        else:
            spec = FleetSpec(
                n_clients=args.clients,
                n_shards=args.shards,
                writes_per_client=args.writes_per_client,
                arrival=args.arrival,
                mean_gap=args.mean_gap,
                burst_every=args.burst_every,
                tick_seconds=args.tick_seconds,
                seed=args.seed,
                window_seconds=args.window_seconds,
                slo_seconds=args.slo,
                stall_horizon=args.stall_horizon,
            )
            try:
                spec.validate()
            except ValueError as exc:
                print(f"bad fleet spec: {exc}", file=sys.stderr)
                return 2
            results = [run_fleet(spec, obs=obs)]
            show(results)
        if args.health or args.health_out:
            reports = [r.health() for r in results]
            for report in reports:
                _print_health(report)
            if args.health_out:
                rc = _write_health_doc(args.health_out, reports[-1])
                if rc:
                    return rc
        if trace_sink is not None:
            _finish_trace_out(args.trace_out, trace_sink, obs)
    finally:
        if trace_sink is not None:
            trace_sink.close()
    if args.metrics:
        print()
        print(obs.report())
    return 0


def _print_health(report) -> None:
    """Render one health report (fleet or trace) as a table."""
    verdict = "HEALTHY" if report.healthy else "UNHEALTHY"
    print(f"\nhealth ({report.kind}): {verdict} — "
          f"attainment {report.attainment:.4f} of slo {report.slo_seconds:g}s "
          f"(target {report.attainment_target:.2f}), "
          f"{report.total_stalls} stalls, "
          f"{report.total_regressions} regressed windows")
    print(format_table(
        ["shard", "writes", "p50 s", "p90 s", "p99 s", "max s",
         "slo", "stalls", "windows", "regressed"],
        [[s.shard, s.writes, f"{s.p50:.3f}", f"{s.p90:.3f}",
          f"{s.p99:.3f}", f"{s.max_latency:.3f}", f"{s.slo_attainment:.4f}",
          s.stalls, s.windows,
          ",".join(str(w) for w in s.regressed_windows) or "-"]
         for s in report.shards],
    ))


def _write_health_doc(path: str, report) -> int:
    """Self-check and write a health report as JSON; nonzero on problems."""
    import json as _json

    from repro.obs.health import validate_health_doc

    doc = report.to_dict()
    problems = validate_health_doc(doc)
    if problems:
        print("health doc failed self-check: " + "; ".join(problems),
              file=sys.stderr)
        return 1
    try:
        with open(path, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        print(f"cannot write health report to {path!r}: {exc}",
              file=sys.stderr)
        return 1
    print(f"wrote {path}: health report (self-check passed)")
    return 0


def _cmd_trace(args) -> int:
    from repro.workloads import (
        append_write_trace,
        gedit_trace,
        random_write_trace,
        wechat_trace,
        word_trace,
    )
    from repro.workloads.traceio import save_trace_file

    factories = {
        "append": lambda: append_write_trace(scale=args.scale, appends=args.ops),
        "random": lambda: random_write_trace(scale=args.scale, writes=args.ops),
        "word": lambda: word_trace(scale=args.scale, saves=args.ops),
        "wechat": lambda: wechat_trace(scale=args.scale, modifications=args.ops),
        "gedit": lambda: gedit_trace(saves=args.ops),
    }
    factory = factories.get(args.workload)
    if factory is None:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    trace = factory()
    save_trace_file(trace, args.out)
    print(
        f"wrote {args.out}: {len(trace.ops)} ops, "
        f"{format_bytes(trace.stats.bytes_written)} written, "
        f"{format_bytes(trace.stats.update_bytes)} logical update"
    )
    return 0


def _finish_trace_out(path: str, sink, obs) -> None:
    """Append the metrics snapshot record to a streamed trace and report."""
    from repro.obs.export import write_snapshot_record

    write_snapshot_record(sink, obs.metrics, obs.clock.now())
    print(f"\nwrote {path}: {obs.tracer.records_recorded} trace records "
          f"+ metrics snapshot")


def _replay_with_crash(args, trace, journal_kv, obs, faults, config=None) -> int:
    """Replay with a simulated crash after op ``--crash-at N``.

    Runs the first N ops, kills the client (volatile state gone, journal
    kept), runs ``recover()``, then finishes the trace. Prints the
    recovery report next to the usual traffic summary so a user can see
    what the journal bought them.
    """
    from repro.faults.crash import simulate_crash
    from repro.harness.runner import _preload, build_system
    from repro.workloads.traces import apply_op

    n = args.crash_at
    if not 0 <= n <= len(trace.ops):
        print(f"--crash-at {n} out of range (trace has {len(trace.ops)} ops)",
              file=sys.stderr)
        return 2
    system = build_system(
        "deltacfs", config=config, obs=obs, faults=faults,
        fault_seed=args.fault_seed, journal_kv=journal_kv,
    )
    _preload(system, trace)
    system.reset_counters()  # match run_trace: measure past the preload
    clock = system.clock

    def run_ops(ops) -> None:
        for op in ops:
            while op.timestamp > clock.now():
                step = min(1.0, op.timestamp - clock.now())
                clock.advance(step)
                system.pump(clock.now())
            apply_op(system.fs, op)
        system.pump(clock.now())

    run_ops(trace.ops[:n])
    dirty = simulate_crash(system.client)
    report = system.client.recover()
    run_ops(trace.ops[n:])
    for _ in range(10):
        clock.advance(1.0)
        system.pump(clock.now())
    system.flush()

    print(f"crashed after op {n}/{len(trace.ops)}; "
          f"{len(dirty)} dirty file(s) at the cut")
    print(f"recovery: {report.nodes_replayed} node(s) replayed, "
          f"{report.nodes_already_applied} already applied, "
          f"{report.nodes_rebased} rebased, "
          f"{report.blocks_repaired} block(s) repaired "
          f"({format_bytes(report.bytes_downloaded)} down), "
          f"{report.full_file_fallbacks} full-file fallback(s)")
    print(f"total traffic: up {format_bytes(system.channel.stats.up_bytes)}  "
          f"down {format_bytes(system.channel.stats.down_bytes)}")
    if args.metrics:
        print()
        print(obs.report())
    return 0


def _cmd_replay(args) -> int:
    from repro.faults.network import NO_FAULTS, NetworkFaults
    from repro.harness.runner import SOLUTIONS, run_trace
    from repro.obs import NULL_OBS, Observability
    from repro.workloads.traceio import load_trace_file

    if args.solution not in SOLUTIONS:
        print(f"unknown solution {args.solution!r}; pick one of {SOLUTIONS}",
              file=sys.stderr)
        return 2
    if args.journal is not None and args.solution != "deltacfs":
        print("--journal requires --solution deltacfs (the journaled client)",
              file=sys.stderr)
        return 2
    if args.crash_at is not None and args.journal is None:
        print("--crash-at requires --journal (recovery replays the journal)",
              file=sys.stderr)
        return 2
    config = None
    if args.delta_backend is not None or args.sync_policy is not None:
        if args.solution != "deltacfs":
            print("--delta-backend/--sync-policy require --solution deltacfs "
                  "(the policy-driven client)", file=sys.stderr)
            return 2
        from repro.common.config import DeltaCFSConfig
        from repro.delta.backends import get_backend

        config = DeltaCFSConfig()
        if args.delta_backend is not None:
            config.delta_backend = args.delta_backend
        if args.sync_policy is not None:
            config.sync_policy = args.sync_policy
        try:
            config.validate()
            get_backend(config.delta_backend)
        except ValueError as exc:
            print(f"bad sync config: {exc}", file=sys.stderr)
            return 2
    faults = NO_FAULTS
    if args.loss_rate or args.dup_rate or args.reorder_rate:
        if args.solution != "deltacfs":
            print("fault injection (--loss-rate/--dup-rate/--reorder-rate) "
                  "requires --solution deltacfs (the reliable transport)",
                  file=sys.stderr)
            return 2
        try:
            faults = NetworkFaults(
                drop_prob=args.loss_rate,
                dup_prob=args.dup_rate,
                reorder_prob=args.reorder_rate,
            )
            faults.validate()
        except ValueError as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    trace = load_trace_file(args.trace)
    # Observability is opt-in: without either flag the run uses NULL_OBS
    # and is byte-identical to an uninstrumented run. --trace-out streams
    # each record to the file as it happens (no buffering), then appends a
    # metrics snapshot record so `repro inspect` can reconcile and export
    # OpenMetrics from the one file.
    trace_sink = None
    if args.trace_out:
        from repro.obs import Tracer

        try:
            trace_sink = open(args.trace_out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"cannot write trace to {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 1
        obs = Observability(tracer=Tracer(sink=trace_sink))
    elif args.metrics:
        obs = Observability()
    else:
        obs = NULL_OBS
    journal_kv = None
    if args.journal is not None:
        from repro.kvstore.kv import LogStructuredKV

        # sync=True: the journal only helps if the records survive the
        # crash, so every append is fsynced.
        journal_kv = LogStructuredKV(args.journal, sync=True)
    try:
        if args.crash_at is not None:
            rc = _replay_with_crash(args, trace, journal_kv, obs, faults, config)
            if rc == 0 and trace_sink is not None:
                _finish_trace_out(args.trace_out, trace_sink, obs)
            return rc
        result = run_trace(
            args.solution, trace, config=config, obs=obs, faults=faults,
            fault_seed=args.fault_seed, journal_kv=journal_kv,
        )
        if trace_sink is not None:
            _finish_trace_out(args.trace_out, trace_sink, obs)
    finally:
        if trace_sink is not None:
            trace_sink.close()
    print(
        format_table(
            ["trace", "solution", "cli CPU", "srv CPU", "up", "down", "TUE"],
            [[
                result.trace,
                result.solution,
                f"{result.client_ticks:.1f}",
                f"{result.server_ticks:.1f}",
                format_bytes(result.up_bytes),
                format_bytes(result.down_bytes),
                format_tue(result.tue),
            ]],
        )
    )
    if args.metrics:
        print()
        print(obs.report())
    return 0


def _cmd_inspect(args) -> int:
    """Offline analysis of a recorded JSONL trace (see repro.obs.analyze)."""
    from repro.obs.analyze import (
        AttributionError,
        TraceFormatError,
        attribute_uplink,
        critical_path,
        event_counts,
        load_trace,
        load_traces,
        span_rollup,
    )
    from repro.obs.export import (
        check_openmetrics,
        to_openmetrics,
        write_chrome_trace,
    )

    paths = args.trace
    label = paths[0] if len(paths) == 1 else "+".join(paths)
    try:
        if len(paths) == 1:
            doc = load_trace(paths[0])
        else:
            doc = load_traces(paths)
    except OSError as exc:
        print(f"cannot read {label!r}: {exc}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 2

    rc = 0
    targeted = (args.attribution or args.chrome_out or args.openmetrics_out
                or args.health or args.health_out)
    if args.summary or not targeted:
        rollup = span_rollup(doc)
        stitched = sum(1 for s in doc.spans.values() if s.stitched)
        print(f"{label}: {len(doc.spans)} spans, "
              f"{len(doc.point_events())} events"
              + (f", {len(doc.sources)} sources, {stitched} stitched"
                 if len(paths) > 1 else "")
              + (", metrics snapshot embedded" if doc.snapshot else ""))
        if rollup:
            print()
            print(format_table(
                ["span", "count", "total s", "self s", "open"],
                [[r.name, r.count, f"{r.total:.3f}", f"{r.self_time:.3f}",
                  r.truncated or ""] for r in rollup],
            ))
        path = critical_path(doc)
        if path:
            print("\ncritical path (longest span chain):")
            for depth, span in enumerate(path):
                print(f"  {'  ' * depth}{span.name}  {span.duration:.3f}s"
                      + ("  [unclosed]" if span.truncated else ""))
        counts = event_counts(doc)
        if counts:
            print()
            print(format_table(
                ["event", "count"], [[name, n] for name, n in counts]
            ))

    if args.attribution:
        attribution = attribute_uplink(doc)
        print("\nuplink cost attribution (measured window):")
        print(format_table(
            ["path", "mechanism", "bytes", "msgs"],
            [[r.path or "(protocol)", r.mechanism, format_bytes(r.bytes),
              r.messages] for r in attribution.rows],
        ))
        print()
        print(format_table(
            ["mechanism", "bytes"],
            [[m, format_bytes(b)]
             for m, b in sorted(attribution.by_mechanism().items(),
                                key=lambda kv: -kv[1])],
        ))
        print(f"\ntotal attributed: {attribution.total_bytes} B"
              + (f"  (+ {attribution.preload_bytes} B preload, excluded)"
                 if attribution.preload_bytes else ""))
        try:
            attribution.reconcile()
        except AttributionError as exc:
            print(f"attribution drift: {exc}", file=sys.stderr)
            rc = 1
        else:
            print("reconciled: attribution total matches the recorded "
                  "channel.up.bytes exactly")

    if args.chrome_out:
        n = write_chrome_trace(doc.records, args.chrome_out)
        print(f"\nwrote {args.chrome_out}: {n} Chrome trace events "
              f"(load in Perfetto / chrome://tracing)")

    if args.openmetrics_out:
        if doc.snapshot is None:
            print("trace has no metrics snapshot record; re-record with "
                  "--trace-out (the CLI appends one)", file=sys.stderr)
            return 2
        text = to_openmetrics(doc.snapshot.get("metrics", {}))
        problems = check_openmetrics(text)
        if problems:
            print("OpenMetrics self-check failed: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        with open(args.openmetrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nwrote {args.openmetrics_out}: OpenMetrics exposition "
              f"(self-check passed)")

    if args.health or args.health_out:
        from repro.obs.health import health_from_trace

        report = health_from_trace(
            doc,
            slo_seconds=args.slo,
            stall_horizon=args.stall_horizon,
        )
        _print_health(report)
        if args.health_out:
            health_rc = _write_health_doc(args.health_out, report)
            if health_rc:
                return health_rc

    return rc


def _cmd_check(args) -> int:
    """Static lint + trace invariant verification (see repro.check)."""
    import json as _json
    import os

    from repro.check import (
        CheckConfig,
        gate,
        human_report,
        lint_paths,
        report_results,
        results_to_findings,
        verify_trace,
    )
    from repro.check.findings import FindingSummary, severity_rank
    from repro.obs.analyze import TraceFormatError, load_trace

    try:
        severity_rank(args.fail_on)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    cache = None
    if args.cache:
        from repro.check import AnalysisCache

        cache = AnalysisCache.load(args.cache)

    lint_findings = []
    if not args.no_lint:
        paths = args.paths
        if not paths:
            import repro

            paths = [os.path.dirname(os.path.abspath(repro.__file__))]
        config = CheckConfig(only=tuple(args.only or ()))
        lint_findings = lint_paths(
            paths,
            config=config,
            semantic=not args.no_semantic,
            cache=cache,
        )
    if cache is not None:
        cache.save(args.cache)
    findings = list(lint_findings)

    trace_results = {}
    for trace_path in args.traces or ():
        try:
            doc = load_trace(trace_path)
        except OSError as exc:
            print(f"cannot read {trace_path!r}: {exc}", file=sys.stderr)
            return 2
        except TraceFormatError as exc:
            print(f"{trace_path}: {exc}", file=sys.stderr)
            return 2
        results = verify_trace(doc)
        trace_results[trace_path] = results
        findings.extend(results_to_findings(results, trace_path))

    if args.sarif:
        from repro.check import sarif_json

        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(sarif_json(findings) + "\n")

    failed = gate(findings, fail_on=args.fail_on)
    if args.json:
        from dataclasses import asdict

        payload = {
            "findings": [asdict(f) for f in findings],
            "invariants": {
                path: [asdict(r) for r in results]
                for path, results in trace_results.items()
            },
            "summary": asdict(FindingSummary.of(findings)),
            "failed": failed,
        }
        if cache is not None:
            payload["cache"] = asdict(cache.stats)
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        if not args.no_lint:
            print(human_report(lint_findings,
                               show_suppressed=args.show_suppressed))
        for trace_path, results in trace_results.items():
            print()
            print(report_results(results, trace_path))
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DeltaCFS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show the package inventory").set_defaults(
        func=_cmd_info
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument(
        "name",
        choices=[
            "table2", "table3", "table4",
            "fig1", "fig2", "fig8", "fig9", "policy", "all",
        ],
    )
    experiment.add_argument("--fast", action="store_true", help="reduced op counts")
    experiment.add_argument(
        "--wall", action="store_true",
        help="also run the measured wall-clock lane (fast vs reference "
             "engines, real MB/s; see docs/performance.md)",
    )
    experiment.add_argument(
        "--bench-json", metavar="DIR", default=None,
        help="also write BENCH_<name>.json snapshot(s) into DIR for "
             "tools/bench_gate.py (table2/table3/fig8/fig9/fig1/policy, "
             "and BENCH_wallclock.json with --wall)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    fleet = sub.add_parser(
        "fleet",
        help="virtual-time fleet simulation against the sharded cloud "
             "(see docs/fleet.md)",
    )
    fleet.add_argument("--clients", type=int, default=10_000,
                       help="simulated clients (default 10000)")
    fleet.add_argument("--shards", type=int, default=8,
                       help="CloudServer shards behind the router")
    fleet.add_argument("--writes-per-client", type=int, default=3)
    fleet.add_argument("--arrival", choices=["poisson", "bursty"],
                       default="poisson",
                       help="independent exponential gaps, or synchronized "
                            "waves that stress shard queues")
    fleet.add_argument("--mean-gap", type=float, default=20.0,
                       help="poisson: mean seconds between one client's writes")
    fleet.add_argument("--burst-every", type=float, default=20.0,
                       help="bursty: seconds between waves")
    fleet.add_argument("--tick-seconds", type=float, default=8.0,
                       help="virtual seconds of shard-core time per modelled "
                            "CPU tick (wimpy-core scale factor)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--curve", action="store_true",
        help="run the committed scaling curve instead of a single spec",
    )
    fleet.add_argument(
        "--bench-json", metavar="DIR", default=None,
        help="run the committed curve and write BENCH_fleet.json into DIR "
             "for tools/bench_gate.py",
    )
    fleet.add_argument(
        "--metrics", action="store_true",
        help="print the observability metrics report after the run",
    )
    fleet.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the structured event trace as JSONL to PATH "
             "(small fleets only; feeds `repro check --traces`)",
    )
    fleet.add_argument(
        "--health", action="store_true",
        help="print the per-shard SLO health report (attainment, stalls, "
             "window-over-window p99 regressions)",
    )
    fleet.add_argument(
        "--slo", type=float, default=15.0, metavar="SECONDS",
        help="sync-latency objective: a write meets the SLO when its "
             "latency is at or under this (default 15.0)",
    )
    fleet.add_argument(
        "--window-seconds", type=float, default=20.0, metavar="SECONDS",
        help="telemetry rollup window width in virtual seconds (default 20)",
    )
    fleet.add_argument(
        "--stall-horizon", type=float, default=60.0, metavar="SECONDS",
        help="a write whose sync takes longer than this counts as a stall "
             "(default 60)",
    )
    fleet.add_argument(
        "--health-out", metavar="PATH", default=None,
        help="write the health report as schema-checked JSON to PATH "
             "(nonzero exit when the self-check fails)",
    )
    fleet.set_defaults(func=_cmd_fleet)

    trace = sub.add_parser("trace", help="generate and save a workload trace")
    trace.add_argument("workload", choices=["append", "random", "word", "wechat", "gedit"])
    trace.add_argument("--out", required=True)
    trace.add_argument("--scale", type=int, default=32)
    trace.add_argument("--ops", type=int, default=10,
                       help="saves/modifications/appends, per workload")
    trace.set_defaults(func=_cmd_trace)

    replay = sub.add_parser("replay", help="replay a saved trace through a sync system")
    replay.add_argument("trace")
    replay.add_argument("--solution", default="deltacfs")
    replay.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability metrics report after the run",
    )
    replay.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the structured event trace as JSONL to PATH",
    )
    replay.add_argument(
        "--delta-backend", default=None, metavar="NAME",
        help="delta encoder the client uses when a delta triggers "
             "(bitwise/rsync/cdc-shingle; deltacfs only, see "
             "docs/delta-backends.md)",
    )
    replay.add_argument(
        "--sync-policy", default=None,
        choices=["static", "cost-model", "always-rpc", "always-delta"],
        help="mechanism-selection policy: static (paper behaviour), "
             "cost-model (online RPC-vs-delta scoring), or the bounding "
             "policies (deltacfs only)",
    )
    replay.add_argument(
        "--loss-rate", type=float, default=0.0, metavar="P",
        help="drop each uplink/downlink message with probability P "
             "(deltacfs only; engages the reliable transport)",
    )
    replay.add_argument(
        "--dup-rate", type=float, default=0.0, metavar="P",
        help="duplicate each delivered message with probability P",
    )
    replay.add_argument(
        "--reorder-rate", type=float, default=0.0, metavar="P",
        help="delay each delivered message past later sends with probability P",
    )
    replay.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan and retransmit jitter (identical "
             "seeds reproduce identical schedules)",
    )
    replay.add_argument(
        "--journal", metavar="PATH", default=None,
        help="attach a crash-recovery journal (fsynced WAL at PATH; "
             "deltacfs only)",
    )
    replay.add_argument(
        "--crash-at", type=int, default=None, metavar="N",
        help="kill the client after trace op N, recover from the journal, "
             "then finish the trace (requires --journal)",
    )
    replay.set_defaults(func=_cmd_replay)

    inspect = sub.add_parser(
        "inspect", help="analyze a recorded JSONL trace offline"
    )
    inspect.add_argument(
        "trace", nargs="+",
        help="trace.jsonl from replay/fleet --trace-out; several files "
             "(e.g. one per client plus the cloud's) are stitched into "
             "one causal trace via their trace.link records",
    )
    inspect.add_argument(
        "--summary", action="store_true",
        help="span rollup + critical path + event counts (default when no "
             "other output is requested)",
    )
    inspect.add_argument(
        "--attribution", action="store_true",
        help="attribute every uplink byte to (path, mechanism) and "
             "reconcile against the recorded totals (nonzero exit on drift)",
    )
    inspect.add_argument(
        "--chrome-out", metavar="PATH", default=None,
        help="export spans/events as Chrome trace-event JSON to PATH",
    )
    inspect.add_argument(
        "--openmetrics-out", metavar="PATH", default=None,
        help="export the embedded metrics snapshot as OpenMetrics text to PATH",
    )
    inspect.add_argument(
        "--health", action="store_true",
        help="recover ship-to-accept sync latencies from the trace and "
             "print an SLO health report (stalls = ships never accepted "
             "within the horizon)",
    )
    inspect.add_argument(
        "--slo", type=float, default=15.0, metavar="SECONDS",
        help="sync-latency objective for --health (default 15.0)",
    )
    inspect.add_argument(
        "--stall-horizon", type=float, default=60.0, metavar="SECONDS",
        help="stall threshold for --health (default 60)",
    )
    inspect.add_argument(
        "--health-out", metavar="PATH", default=None,
        help="write the --health report as schema-checked JSON to PATH",
    )
    inspect.set_defaults(func=_cmd_inspect)

    check = sub.add_parser(
        "check",
        help="lint the source tree and verify protocol invariants over "
             "recorded traces (see docs/static-analysis.md)",
    )
    check.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro "
             "package)",
    )
    check.add_argument(
        "--traces", nargs="+", metavar="JSONL", default=None,
        help="JSONL trace file(s) from replay --trace-out to verify "
             "against the invariant catalog",
    )
    check.add_argument(
        "--no-lint", action="store_true",
        help="skip the static lint layer (verify traces only)",
    )
    check.add_argument(
        "--only", nargs="+", metavar="RULE", default=None,
        help="run only the named lint rule ids (e.g. DET001 OBS001)",
    )
    check.add_argument(
        "--fail-on", default="warning",
        choices=["advice", "warning", "error"],
        help="minimum severity that makes the run exit nonzero "
             "(default: warning)",
    )
    check.add_argument(
        "--show-suppressed", action="store_true",
        help="include findings silenced by reprolint comments in the report",
    )
    check.add_argument(
        "--json", action="store_true",
        help="emit the findings + invariant results as one JSON document",
    )
    check.add_argument(
        "--no-semantic", action="store_true",
        help="skip the project-wide semantic rules (dataflow + "
             "wire-symmetry); per-file rules still run",
    )
    check.add_argument(
        "--cache", metavar="PATH", default=None,
        help="content-hash analysis cache file; unchanged files (and an "
             "unchanged project, for the semantic layer) reuse cached "
             "findings",
    )
    check.add_argument(
        "--sarif", metavar="PATH", default=None,
        help="also write the findings as a SARIF 2.1.0 log to PATH",
    )
    check.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
