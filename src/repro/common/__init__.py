"""Shared utilities: errors, configuration, deterministic randomness, byte helpers."""

from repro.common.errors import (
    DeltaCFSError,
    ConflictError,
    CorruptionDetected,
    InconsistencyDetected,
    NoSpaceError,
    NotFoundError,
    ProtocolError,
    VersionMismatch,
)
from repro.common.config import DeltaCFSConfig
from repro.common.rng import DeterministicRandom

__all__ = [
    "DeltaCFSError",
    "ConflictError",
    "CorruptionDetected",
    "InconsistencyDetected",
    "NoSpaceError",
    "NotFoundError",
    "ProtocolError",
    "VersionMismatch",
    "DeltaCFSConfig",
    "DeterministicRandom",
]
