"""Small helpers for working with byte ranges and block arithmetic."""

from __future__ import annotations

from typing import Iterator, List, Tuple


def block_count(size: int, block_size: int) -> int:
    """Number of blocks needed to cover ``size`` bytes."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return (size + block_size - 1) // block_size


def block_range(offset: int, length: int, block_size: int) -> range:
    """Indices of the blocks touched by the byte range ``[offset, offset+length)``."""
    if length <= 0:
        return range(0)
    first = offset // block_size
    last = (offset + length - 1) // block_size
    return range(first, last + 1)


def iter_blocks(data: bytes, block_size: int) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(block_index, block_bytes)`` pairs; the final block may be short."""
    for i in range(0, len(data), block_size):
        yield i // block_size, data[i : i + block_size]


def apply_write(base: bytes, offset: int, data: bytes) -> bytes:
    """Return ``base`` with ``data`` written at ``offset``.

    Writing past the current end zero-fills the gap, mirroring POSIX sparse
    file semantics.
    """
    if offset < 0:
        raise ValueError("negative offset")
    if offset > len(base):
        base = base + b"\x00" * (offset - len(base))
    return base[:offset] + data + base[offset + len(data) :]


def truncate(base: bytes, length: int) -> bytes:
    """POSIX ``truncate``: shrink, or zero-extend when growing."""
    if length < 0:
        raise ValueError("negative length")
    if length <= len(base):
        return base[:length]
    return base + b"\x00" * (length - len(base))


def merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce overlapping/adjacent ``(offset, length)`` ranges."""
    if not ranges:
        return []
    spans = sorted((off, off + ln) for off, ln in ranges if ln > 0)
    if not spans:
        return []
    merged = [spans[0]]
    for start, end in spans[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return [(start, end - start) for start, end in merged]


def changed_fraction(ranges: List[Tuple[int, int]], file_size: int) -> float:
    """Fraction of a ``file_size``-byte file covered by the written ranges."""
    if file_size <= 0:
        return 1.0
    covered = sum(length for _, length in merge_ranges(ranges))
    return min(1.0, covered / file_size)
