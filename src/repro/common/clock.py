"""Virtual time.

All timeout-driven behaviour in this reproduction (relation-entry expiry,
Sync Queue upload delay, trace inter-arrival gaps) runs against an explicit
clock object instead of the wall clock, so tests and benchmarks are
deterministic and traces replay in milliseconds instead of the hours the
paper's experiments took.
"""

from __future__ import annotations


class VirtualClock:
    """A manually-advanced monotonic clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time.

        Raises ``ValueError`` on negative increments — virtual time is
        monotonic just like the real clock the paper's prototype used.
        """
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        """Alias of :meth:`advance` for code written against a sleep API."""
        self.advance(seconds)
