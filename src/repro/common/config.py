"""Central configuration for DeltaCFS clients and servers.

All tunables from the paper live here with the paper's defaults:

- rsync block size 4 KB (Section II-B footnote 3, Section III-E)
- relation-table entry timeout 1-3 s, default 2 s (Table I)
- sync-queue upload delay 3 s (Figure 6 caption)
- in-place delta-compression threshold ~50% of file changed (Section III-A)
- checksum block size 4 KB, reusing the rsync rolling checksum (Section III-E)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeltaCFSConfig:
    """Tunable parameters of a DeltaCFS client.

    Attributes:
        block_size: rsync / checksum block size in bytes (paper: 4 KB).
        relation_timeout: seconds before an untriggered relation entry
            expires (paper: "empirically set in a range of 1 to 3 seconds").
        upload_delay: seconds a Sync Queue node waits before uploading,
            allowing coalescing and delta replacement (paper Fig. 6: 3 s).
        max_coalesce_delay: hard cap on one node's total coalescing window.
            The upload delay debounces from the *last* write, so a
            continuously-written hot file would otherwise hold the queue
            head (and every file behind it) forever. ``None`` means 4x the
            upload delay.
        inplace_delta_threshold: fraction of a file that must be overwritten
            by in-place writes before local delta encoding is attempted on
            top of the undo log (paper: "more than 50%").
        tmp_dir: directory (inside the managed tree) where unlinked files are
            preserved while their relation entry is live.
        checksum_block_size: block size of the integrity checksum store.
        enable_checksums: maintain the block checksum store (DeltaCFSc in
            Table III); disable to reproduce the plain DeltaCFS row.
        enable_undo_log: keep physical undo data for in-place overwrites so
            local delta encoding remains possible.
        sync_queue_capacity: maximum queued nodes before writers experience
            back-pressure (reproduces the Table III fileserver slowdown).
        preserve_unlinked_max_bytes: files larger than this are not preserved
            on unlink (the paper's ENOSPC escape hatch, expressed as a cap).
        delta_backend: registered :mod:`repro.delta.backends` encoder used
            when a triggered delta is encoded (``bitwise`` | ``rsync`` |
            ``cdc-shingle``; default is the paper's bitwise local engine).
        sync_policy: mechanism-selection policy (see
            :mod:`repro.core.policy`): ``static`` reproduces the paper's
            hard-coded trigger bit-for-bit; ``cost-model`` learns per path
            whether encoding is worth it; ``always-rpc`` / ``always-delta``
            are the sweep's bounding policies.
        policy_cpu_byte_rate: byte-equivalents the cost-model policy
            charges per estimated CPU tick when scoring an encode (0
            scores bytes only).
    """

    block_size: int = 4096
    relation_timeout: float = 2.0
    upload_delay: float = 3.0
    max_coalesce_delay: float | None = None
    inplace_delta_threshold: float = 0.5
    tmp_dir: str = "/.deltacfs_tmp"
    checksum_block_size: int = 4096
    enable_checksums: bool = True
    enable_undo_log: bool = True
    sync_queue_capacity: int = 4096
    preserve_unlinked_max_bytes: int = 1 << 30
    delta_backend: str = "bitwise"
    sync_policy: str = "static"
    policy_cpu_byte_rate: float = 1024.0

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.checksum_block_size <= 0:
            raise ValueError("checksum_block_size must be positive")
        if not (0.0 < self.inplace_delta_threshold <= 1.0):
            raise ValueError("inplace_delta_threshold must be in (0, 1]")
        if self.relation_timeout <= 0:
            raise ValueError("relation_timeout must be positive")
        if self.upload_delay < 0:
            raise ValueError("upload_delay must be non-negative")
        if self.max_coalesce_delay is not None and (
            self.max_coalesce_delay < self.upload_delay
        ):
            raise ValueError("max_coalesce_delay must be >= upload_delay")
        if self.sync_queue_capacity <= 0:
            raise ValueError("sync_queue_capacity must be positive")
        if not self.delta_backend:
            raise ValueError("delta_backend must name a registered backend")
        # Policy names are validated here (cheap, no imports); the backend
        # name resolves against the registry when the client builds it.
        valid_policies = ("static", "cost-model", "always-rpc", "always-delta")
        if self.sync_policy not in valid_policies:
            raise ValueError(
                f"sync_policy must be one of {valid_policies}, "
                f"not {self.sync_policy!r}"
            )
        if self.policy_cpu_byte_rate < 0:
            raise ValueError("policy_cpu_byte_rate must be non-negative")


@dataclass
class BaselineConfig:
    """Parameters of the baseline systems, with the paper's published values.

    Attributes:
        dropbox_block_size: rsync chunk size used by Dropbox (4 KB).
        dropbox_dedup_size: Dropbox deduplication granularity (4 MB); rsync
            is applied only *within* each 4 MB block (Section IV-C).
        dropbox_compression_ratio: modelled network compression factor for
            Dropbox uploads (it "employs network data compression").
        seafile_chunk_size: Seafile CDC average chunk size (1 MB default).
        nfs_page_size: transfer granularity of NFS write RPCs; non-aligned
            writes trigger fetch-before-write (Section IV-C).
    """

    dropbox_block_size: int = 4096
    dropbox_dedup_size: int = 4 * 1024 * 1024
    dropbox_compression_ratio: float = 0.8
    seafile_chunk_size: int = 1024 * 1024
    nfs_page_size: int = 4096


DEFAULT_CONFIG = DeltaCFSConfig()
DEFAULT_BASELINES = BaselineConfig()
