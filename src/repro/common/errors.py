"""Exception hierarchy for the DeltaCFS reproduction.

Every error raised by this library derives from :class:`DeltaCFSError`, so a
caller can catch the whole family with one clause while still being able to
discriminate the interesting cases (conflicts, corruption, protocol errors).
"""


class DeltaCFSError(Exception):
    """Base class for all errors raised by this library."""


class NotFoundError(DeltaCFSError):
    """A path, file id, or version was looked up but does not exist."""


class NoSpaceError(DeltaCFSError):
    """The (simulated) device is out of space (ENOSPC).

    The relation table uses this to decide whether an unlinked file can be
    preserved in the temporary area (paper, Section III-A).
    """


class VersionMismatch(DeltaCFSError):
    """An incremental update's base version does not match the stored version.

    This is how the server detects concurrent edits; the caller normally
    reconciles by creating a conflict version rather than failing the sync.
    """

    def __init__(self, message: str, expected=None, actual=None):
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class ConflictError(DeltaCFSError):
    """Two clients modified the same file concurrently.

    Carries the path and the version that lost the first-write-wins race so
    callers can surface the conflict copy to the user.
    """

    def __init__(self, message: str, path: str = "", losing_version=None):
        super().__init__(message)
        self.path = path
        self.losing_version = losing_version


class CorruptionDetected(DeltaCFSError):
    """A data block failed its checksum verification (silent corruption)."""

    def __init__(self, message: str, path: str = "", block_index: int = -1):
        super().__init__(message)
        self.path = path
        self.block_index = block_index


class InconsistencyDetected(DeltaCFSError):
    """A recently-modified file is in a crash-inconsistent intermediate state."""

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


class ProtocolError(DeltaCFSError):
    """A malformed or out-of-order message was received by client or server."""


class PackedNodeError(DeltaCFSError, ValueError):
    """A packed (frozen) Sync Queue write node was mutated.

    Packing ends a node's coalescing window; mutating it afterwards would
    ship bytes its version stamp never covered. The invariant is also
    verified over recorded traces as ``INV-PACKED-FROZEN`` (see
    ``docs/static-analysis.md``). Subclasses ``ValueError`` for backward
    compatibility with callers that caught the old error type.
    """

    def __init__(self, message: str, path: str = "", seq: int = -1):
        super().__init__(message)
        self.path = path
        self.seq = seq
