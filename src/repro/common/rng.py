"""Deterministic randomness for workload generation and fault injection.

Every generator in this repository takes an explicit seed so traces,
benchmarks, and property tests are reproducible run-to-run.
"""

from __future__ import annotations

import random
import zlib


class DeterministicRandom:
    """A seeded random source with helpers for byte-level workloads."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self.seed = seed

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi]``."""
        return self._rng.uniform(lo, hi)

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def random_bytes(self, n: int) -> bytes:
        """``n`` incompressible pseudo-random bytes."""
        return self._rng.randbytes(n)

    def text_bytes(self, n: int) -> bytes:
        """``n`` bytes of compressible ASCII "text" (words and newlines)."""
        words = []
        size = 0
        while size < n:
            word_len = self._rng.randint(2, 10)
            word = bytes(
                self._rng.randint(ord("a"), ord("z")) for _ in range(word_len)
            )
            words.append(word)
            size += word_len + 1
        blob = b" ".join(words)
        return blob[:n]

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream keyed by ``label``.

        Forking lets one seed drive many generators without their draws
        interleaving (adding a generator never perturbs the others). The
        derivation uses CRC32, not ``hash()``, so it is stable across
        processes (PYTHONHASHSEED randomizes string hashing).
        """
        key = zlib.crc32(f"{self.seed}:{label}".encode()) & 0x7FFFFFFF
        return DeterministicRandom(key)
