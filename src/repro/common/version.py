"""Client-assigned version stamps (paper Section III-C).

Rather than round-tripping to the server for version numbers (high WAN
latency per Sync Queue node), each client stamps versions locally from a
monotonic counter, made globally unique by pairing it with the client id:
``<CliID, VerCnt>``. Clients never synchronize counters — partial order is
enough for the cloud sync scenario; the server only ever compares stamps
for *equality* against its current head when validating a node's base
version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common import wire


@dataclass(frozen=True, order=True)
class VersionStamp:
    """A globally-unique version identifier ``<CliID, VerCnt>``.

    Ordering is lexicographic (client id then counter) and exists only for
    deterministic display/sorting; causality between different clients'
    stamps is *not* implied, by design.
    """

    client_id: int
    counter: int

    def wire_size(self) -> int:
        """8 bytes on the wire: u32 client id + u32 counter."""
        return wire.u32(self.client_id) + wire.u32(self.counter)

    def __str__(self) -> str:
        return f"v<{self.client_id},{self.counter}>"


# The version of a file that does not exist yet (base of a first upload).
GENESIS: Optional[VersionStamp] = None


class VersionCounter:
    """Per-client monotonically increasing stamp factory."""

    def __init__(self, client_id: int, start: int = 0):
        if client_id < 0:
            raise ValueError("client_id must be non-negative")
        self.client_id = client_id
        self._counter = start

    def next(self) -> VersionStamp:
        """Mint the next stamp. Never repeats within a client."""
        self._counter += 1
        return VersionStamp(self.client_id, self._counter)

    @property
    def current(self) -> int:
        """The last counter value handed out."""
        return self._counter
