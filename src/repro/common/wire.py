"""Fixed-width wire-field sizing helpers.

Wire dataclasses size themselves field by field; sizing a fixed-width
field through these helpers (rather than a bare integer literal) keeps
the field name visible in the ``wire_size`` expression, which is how
`repro check` proves every declared field is costed on the wire (rule
WIRE001). The argument is the field being costed; only its width
matters.
"""

from __future__ import annotations


def u64(value: object) -> int:
    """Width of a fixed 64-bit field."""
    return 8


def u32(value: object) -> int:
    """Width of a fixed 32-bit field."""
    return 4


def u16(value: object) -> int:
    """Width of a fixed 16-bit field."""
    return 2


def u8(value: object) -> int:
    """Width of a fixed 8-bit field (tags, flags, booleans)."""
    return 1
