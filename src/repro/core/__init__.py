"""The DeltaCFS core: adaptive hybrid of NFS-like file RPC and delta sync.

Public surface:

- :class:`DeltaCFSClient` — the client engine (Figure 4's user-space stack).
- :class:`RelationTable` — transactional-update detection (Section III-A).
- :class:`SyncQueue` — coalescing upload queue with backindex causality
  (Sections III-B, III-E).
- :class:`ChecksumStore` — block-level integrity/crash-consistency checks
  (Section III-E).
- :class:`UndoLog` — old-version reconstruction for large in-place updates.
- :class:`VersionStamp` / :class:`VersionCounter` — client-assigned
  ``<CliID, VerCnt>`` versioning (Section III-C).
"""

from repro.core.client import ClientStats, DeltaCFSClient
from repro.core.checksum_store import ChecksumStore
from repro.core.conflict import conflict_path
from repro.core.relation_table import RelationEntry, RelationTable
from repro.core.sync_queue import (
    DeltaNode,
    MetaNode,
    QueueNode,
    SyncQueue,
    TruncateNode,
    UploadUnit,
    WriteNode,
)
from repro.core.undo_log import UndoLog
from repro.common.version import GENESIS, VersionCounter, VersionStamp

__all__ = [
    "ClientStats",
    "DeltaCFSClient",
    "ChecksumStore",
    "conflict_path",
    "RelationEntry",
    "RelationTable",
    "DeltaNode",
    "MetaNode",
    "QueueNode",
    "SyncQueue",
    "TruncateNode",
    "UploadUnit",
    "WriteNode",
    "UndoLog",
    "GENESIS",
    "VersionCounter",
    "VersionStamp",
]
