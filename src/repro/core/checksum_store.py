"""The Checksum Store (paper Section III-E).

Per-file, per-4KB-block checksums kept in a key-value store, maintained
inline as operations pass through DeltaCFS:

- on write/truncate, checksums of the touched blocks are recomputed;
- on read, the blocks covering the read are verified — a mismatch means
  *silent corruption* (the change did not come through the operation path);
- after a crash, recently-modified files are swept and mismatches reported
  as *crash inconsistency*.

The checksum is the rsync weak rolling checksum — "since rsync also uses
the same way to split a file, we can reuse the rolling checksum in rsync as
the block checksum, which further reduces the computational cost."
"""

from __future__ import annotations

import struct
from typing import List

from repro.chunking._fast import block_weak_checksums
from repro.common.bytesutil import block_range
from repro.common.errors import CorruptionDetected, InconsistencyDetected
from repro.cost.meter import CostMeter, NULL_METER
from repro.kvstore import KVStore, MemoryKV


def _key(path: str, block_index: int) -> bytes:
    return path.encode() + b"\x00" + struct.pack(">Q", block_index)


def _pack(checksum: int) -> bytes:
    return struct.pack(">I", checksum)


class ChecksumStore:
    """Block-checksum bookkeeping over a :class:`KVStore`."""

    def __init__(
        self,
        kv: KVStore | None = None,
        *,
        block_size: int = 4096,
        meter: CostMeter = NULL_METER,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.kv = kv if kv is not None else MemoryKV()
        self.block_size = block_size
        self.meter = meter

    # -- maintenance -------------------------------------------------------

    def update_blocks(self, path: str, content: bytes, offset: int, length: int) -> None:
        """Recompute checksums for the blocks touched by a write.

        ``content`` is the file content *after* the write. The cost charged
        covers only the touched blocks — this is the "little overhead" the
        paper claims for checksum maintenance.
        """
        if length <= 0:
            return
        for index in block_range(offset, length, self.block_size):
            block = content[index * self.block_size : (index + 1) * self.block_size]
            if block:
                self.meter.charge_bytes("rolling_checksum", len(block))
                checksums = block_weak_checksums(block, self.block_size)
                self.kv.put(_key(path, index), _pack(checksums[0]))
            else:
                self.kv.delete(_key(path, index))

    def reindex(self, path: str, content: bytes) -> None:
        """Recompute the whole file's checksums (truncate, rename-in)."""
        self.kv.delete_prefix(path.encode() + b"\x00")
        if content:
            self.meter.charge_bytes("rolling_checksum", len(content))
            for index, checksum in enumerate(
                block_weak_checksums(content, self.block_size)
            ):
                self.kv.put(_key(path, index), _pack(checksum))

    def rename(self, src: str, dst: str) -> None:
        """Move all checksums from ``src`` to ``dst`` (no recomputation)."""
        self.kv.delete_prefix(dst.encode() + b"\x00")
        moved = list(self.kv.items(src.encode() + b"\x00"))
        for key, value in moved:
            suffix = key[len(src.encode()) + 1 :]
            self.kv.put(dst.encode() + b"\x00" + suffix, value)
            self.kv.delete(key)

    def drop(self, path: str) -> None:
        """Forget a deleted file's checksums."""
        self.kv.delete_prefix(path.encode() + b"\x00")

    # -- verification ------------------------------------------------------

    def verify_read(self, path: str, content: bytes, offset: int, length: int) -> None:
        """Verify the blocks covering a read; raise on mismatch.

        Raises:
            CorruptionDetected: a covered block's checksum disagrees with
                the stored one — the content changed beneath DeltaCFS.
        """
        if length <= 0:
            return
        for index in block_range(offset, length, self.block_size):
            self._verify_block(path, content, index, CorruptionDetected)

    def verify_file(self, path: str, content: bytes) -> None:
        """Whole-file verification (the post-crash sweep).

        Raises:
            InconsistencyDetected: some block disagrees — the file is in a
                crash-inconsistent intermediate state.
        """
        n_blocks = (len(content) + self.block_size - 1) // self.block_size
        stored = sum(1 for _ in self.kv.items(path.encode() + b"\x00"))
        if stored != n_blocks:
            raise InconsistencyDetected(
                f"{path}: {stored} checksummed blocks but file has {n_blocks}",
                path=path,
            )
        for index in range(n_blocks):
            self._verify_block(path, content, index, InconsistencyDetected)

    def _verify_block(self, path: str, content: bytes, index: int, exc_type) -> None:
        block = content[index * self.block_size : (index + 1) * self.block_size]
        stored = self.kv.get(_key(path, index))
        if not block:
            if stored is not None:
                raise exc_type(
                    f"{path} block {index}: checksummed but absent", path=path
                )
            return
        self.meter.charge_bytes("rolling_checksum", len(block))
        actual = _pack(block_weak_checksums(block, self.block_size)[0])
        if stored is None or stored != actual:
            kwargs = {"path": path}
            if exc_type is CorruptionDetected:
                kwargs["block_index"] = index
            raise exc_type(f"{path} block {index}: checksum mismatch", **kwargs)

    def mismatched_blocks(self, path: str, content: bytes) -> List[int]:
        """Block indices where ``content`` disagrees with stored checksums.

        The non-raising sibling of :meth:`verify_file`, for crash repair:
        the sweep needs *which* blocks are damaged, not just that one is.
        A block with no stored checksum (or a stored checksum with no
        block) counts as mismatched.
        """
        n_blocks = (len(content) + self.block_size - 1) // self.block_size
        bad: List[int] = []
        for index in range(n_blocks):
            try:
                self._verify_block(path, content, index, InconsistencyDetected)
            except InconsistencyDetected:
                bad.append(index)
        for index in self.blocks_of(path):
            if index >= n_blocks and index not in bad:
                bad.append(index)
        return sorted(bad)

    def blocks_of(self, path: str) -> List[int]:
        """Indices of the blocks currently checksummed for ``path``."""
        prefix = path.encode() + b"\x00"
        return [struct.unpack(">Q", k[len(prefix) :])[0] for k, _ in self.kv.items(prefix)]
