"""The Checksum Store (paper Section III-E).

Per-file, per-4KB-block checksums kept in a key-value store, maintained
inline as operations pass through DeltaCFS:

- on write/truncate, checksums of the touched blocks are recomputed;
- on read, the blocks covering the read are verified — a mismatch means
  *silent corruption* (the change did not come through the operation path);
- after a crash, recently-modified files are swept and mismatches reported
  as *crash inconsistency*.

The checksum is the rsync weak rolling checksum — "since rsync also uses
the same way to split a file, we can reuse the rolling checksum in rsync as
the block checksum, which further reduces the computational cost."
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.chunking._fast import block_weak_checksums
from repro.common.bytesutil import block_range
from repro.common.errors import CorruptionDetected, InconsistencyDetected
from repro.cost.meter import CostMeter, NULL_METER
from repro.kvstore import KVStore, MemoryKV


def _key(path: str, block_index: int) -> bytes:
    return path.encode() + b"\x00" + struct.pack(">Q", block_index)


def _pack(checksum: int) -> bytes:
    return struct.pack(">I", checksum)


class ChecksumStore:
    """Block-checksum bookkeeping over a :class:`KVStore`."""

    def __init__(
        self,
        kv: KVStore | None = None,
        *,
        block_size: int = 4096,
        meter: CostMeter = NULL_METER,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.kv = kv if kv is not None else MemoryKV()
        self.block_size = block_size
        self.meter = meter

    # -- maintenance -------------------------------------------------------

    def _span_weaks(self, content: bytes, first: int, last: int) -> List[int | None]:
        """Checksums of blocks ``first..last`` in one vectorized sweep.

        Returns one entry per block; ``None`` marks a block that has no
        bytes (the file ends before it). The cost charged equals the sum
        of the per-block charges the block-at-a-time loop used to make.
        """
        bs = self.block_size
        span = content[first * bs : (last + 1) * bs]
        count = last - first + 1
        if not span:
            return [None] * count
        self.meter.charge_bytes("rolling_checksum", len(span))
        weaks: List[int | None] = list(block_weak_checksums(span, bs))
        weaks.extend([None] * (count - len(weaks)))
        return weaks

    def update_blocks(self, path: str, content: bytes, offset: int, length: int) -> None:
        """Recompute checksums for the blocks touched by a write.

        ``content`` is the file content *after* the write. The cost charged
        covers only the touched blocks — this is the "little overhead" the
        paper claims for checksum maintenance. The touched span is
        checksummed in one bulk pass, not block-by-block.
        """
        if length <= 0:
            return
        indices = block_range(offset, length, self.block_size)
        weaks = self._span_weaks(content, indices[0], indices[-1])
        for rel, index in enumerate(indices):
            weak = weaks[rel]
            if weak is not None:
                self.kv.put(_key(path, index), _pack(weak))
            else:
                self.kv.delete(_key(path, index))

    def reindex(self, path: str, content: bytes) -> None:
        """Recompute the whole file's checksums (truncate, rename-in)."""
        self.kv.delete_prefix(path.encode() + b"\x00")
        if content:
            self.meter.charge_bytes("rolling_checksum", len(content))
            for index, checksum in enumerate(
                block_weak_checksums(content, self.block_size)
            ):
                self.kv.put(_key(path, index), _pack(checksum))

    def rename(self, src: str, dst: str) -> None:
        """Move all checksums from ``src`` to ``dst`` (no recomputation)."""
        if src == dst:
            return
        # Snapshot the source items *before* clearing the destination —
        # otherwise an overlapping rename would read back its own deletes.
        moved = list(self.kv.items(src.encode() + b"\x00"))
        self.kv.delete_prefix(dst.encode() + b"\x00")
        for key, value in moved:
            suffix = key[len(src.encode()) + 1 :]
            self.kv.put(dst.encode() + b"\x00" + suffix, value)
            self.kv.delete(key)

    def drop(self, path: str) -> None:
        """Forget a deleted file's checksums."""
        self.kv.delete_prefix(path.encode() + b"\x00")

    # -- verification ------------------------------------------------------

    def _stored_map(self, path: str) -> Dict[int, int]:
        """All stored checksums for ``path`` as ``{block_index: checksum}``.

        One prefix scan instead of one point ``get`` per block — the sweep
        paths compare against this map with plain ``int`` equality.
        """
        prefix = path.encode() + b"\x00"
        return {
            struct.unpack(">Q", key[len(prefix) :])[0]: int.from_bytes(value, "big")
            for key, value in self.kv.items(prefix)
        }

    def verify_read(self, path: str, content: bytes, offset: int, length: int) -> None:
        """Verify the blocks covering a read; raise on mismatch.

        Raises:
            CorruptionDetected: a covered block's checksum disagrees with
                the stored one — the content changed beneath DeltaCFS.
        """
        if length <= 0:
            return
        indices = block_range(offset, length, self.block_size)
        weaks = self._span_weaks(content, indices[0], indices[-1])
        for rel, index in enumerate(indices):
            stored = self.kv.get(_key(path, index))
            actual = weaks[rel]
            if actual is None:
                if stored is not None:
                    raise CorruptionDetected(
                        f"{path} block {index}: checksummed but absent", path=path
                    )
                continue
            if stored is None or int.from_bytes(stored, "big") != actual:
                raise CorruptionDetected(
                    f"{path} block {index}: checksum mismatch",
                    path=path,
                    block_index=index,
                )

    def verify_file(self, path: str, content: bytes) -> None:
        """Whole-file verification (the post-crash sweep).

        The whole file is checksummed in one bulk pass and compared
        against a single prefix scan of the store.

        Raises:
            InconsistencyDetected: some block disagrees — the file is in a
                crash-inconsistent intermediate state.
        """
        n_blocks = (len(content) + self.block_size - 1) // self.block_size
        stored_map = self._stored_map(path)
        if len(stored_map) != n_blocks:
            raise InconsistencyDetected(
                f"{path}: {len(stored_map)} checksummed blocks but file has "
                f"{n_blocks}",
                path=path,
            )
        if not n_blocks:
            return
        weaks = self._span_weaks(content, 0, n_blocks - 1)
        for index in range(n_blocks):
            if stored_map.get(index) != weaks[index]:
                raise InconsistencyDetected(
                    f"{path} block {index}: checksum mismatch", path=path
                )

    def mismatched_blocks(self, path: str, content: bytes) -> List[int]:
        """Block indices where ``content`` disagrees with stored checksums.

        The non-raising sibling of :meth:`verify_file`, for crash repair:
        the sweep needs *which* blocks are damaged, not just that one is.
        A block with no stored checksum (or a stored checksum with no
        block) counts as mismatched.
        """
        n_blocks = (len(content) + self.block_size - 1) // self.block_size
        stored_map = self._stored_map(path)
        weaks = self._span_weaks(content, 0, n_blocks - 1) if n_blocks else []
        bad = [
            index
            for index in range(n_blocks)
            if stored_map.get(index) != weaks[index]
        ]
        bad.extend(
            index for index in stored_map if index >= n_blocks
        )
        return sorted(bad)

    def blocks_of(self, path: str) -> List[int]:
        """Indices of the blocks currently checksummed for ``path``."""
        prefix = path.encode() + b"\x00"
        return [struct.unpack(">Q", k[len(prefix) :])[0] for k, _ in self.kv.items(prefix)]
