"""The DeltaCFS client engine — the paper's primary contribution.

A :class:`DeltaCFSClient` is a :class:`PassthroughFileSystem` layer (the
FUSE position in Figure 4). Every file operation is intercepted, forwarded
to the backing store, and — when it mutates state — fed into the sync
pipeline:

- writes coalesce into Sync Queue *write nodes* (NFS-like file RPC, the
  default path);
- rename/unlink maintain the Relation Table; a create/rename that matches a
  live relation entry (or lands on an existing name) marks a *transactional
  update* and triggers local **bitwise delta encoding**, whose result
  replaces the pending write nodes under a backindex span;
- large in-place updates are detected through the undo log at pack time and
  compressed the same way;
- the Checksum Store is maintained inline and verified on reads.

:meth:`pump` drives time-dependent behaviour (relation expiry, upload
delay) and ships due Sync Queue units to the cloud over an accounting
:class:`Channel`.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.common.config import DeltaCFSConfig
from repro.common.errors import CorruptionDetected, NoSpaceError
from repro.core.checksum_store import ChecksumStore
from repro.core.relation_table import RelationEntry, RelationTable
from repro.core.sync_queue import (
    DeltaNode,
    MetaNode,
    QueueNode,
    SyncQueue,
    TruncateNode,
    UploadUnit,
    WriteNode,
)
from repro.core.undo_log import UndoLog
from repro.common.version import VersionCounter, VersionStamp
from repro.core.policy import MechanismPlan, UpdateStats, make_policy
from repro.cost.meter import CostMeter, NULL_METER
from repro.cost.profile import PC_PROFILE
from repro.delta.format import Delta
from repro.net.messages import (
    ConflictNotice,
    FileDownload,
    Forward,
    Message,
    MetaOp,
    TxnGroup,
    UploadDelta,
    UploadTruncate,
    UploadWrite,
    UploadWriteBatch,
)
from repro.net.reliable import ReliableTransport
from repro.net.transport import Channel
from repro.obs import NULL_OBS, Observability
from repro.vfs.filesystem import FileSystemAPI
from repro.vfs.interception import PassthroughFileSystem

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for annotations only; avoids a core<->server cycle
    from repro.server.cloud import ApplyResult, CloudServer


@dataclass
class ClientStats:
    """Counters a client accumulates while running."""

    ops_intercepted: int = 0
    writes_intercepted: int = 0
    bytes_written: int = 0
    deltas_triggered: int = 0
    deltas_kept: int = 0  # triggered AND judged worthwhile
    inplace_deltas: int = 0
    nodes_uploaded: int = 0
    groups_uploaded: int = 0
    conflicts: int = 0
    corruptions_detected: int = 0
    recoveries: int = 0
    forwards_applied: int = 0
    stalls: int = 0  # sync-queue-full back-pressure events


class DeltaCFSClient(PassthroughFileSystem):
    """The adaptive sync client.

    Args:
        inner: the backing (local) file system.
        server: the cloud endpoint (``None`` runs detached — nodes drain
            into the void; used by the local-IO microbenchmarks).
        channel: accounting link to the server.
        client_id: this device's id for ``<CliID, VerCnt>`` stamps.
        config: tunables (block size, delays, thresholds).
        clock: virtual time source shared with the workload driver.
        meter: client-side CPU meter.
        obs: observability hub (metrics + tracing); defaults to the no-op
            ``NULL_OBS`` so uninstrumented runs are unperturbed.
        transport: optional :class:`ReliableTransport`. When set, upload
            units go through its envelope/ack/retry machinery instead of
            the synchronous channel+server path — required when the
            channel is lossy.
        journal_kv: optional KV store backing the crash-recovery journal.
            When set, sync intent (pending queue nodes, relation entries,
            undo spans, the version counter) is journaled as operations
            are intercepted, and :meth:`recover` can rebuild the volatile
            state after a crash. Pair with a ``LogStructuredKV`` opened in
            ``sync=True`` mode for real power-cut durability.
        shares: share prefixes to register with the server (Section
            III-D selective sharing). ``None`` keeps the server-side
            default (subscribe to everything); fleet-scale harnesses pass
            the client's own namespace so a sharded server can scope the
            registration to one shard instead of all of them.
    """

    def __init__(
        self,
        inner: FileSystemAPI,
        *,
        server: Optional[CloudServer] = None,
        channel: Optional[Channel] = None,
        client_id: int = 1,
        config: Optional[DeltaCFSConfig] = None,
        clock: Optional[VirtualClock] = None,
        meter: CostMeter = NULL_METER,
        obs: Observability = NULL_OBS,
        checksum_kv=None,
        transport: Optional[ReliableTransport] = None,
        journal_kv=None,
        shares: Optional[Tuple[str, ...]] = None,
    ):
        super().__init__(inner)
        self.config = config if config is not None else DeltaCFSConfig()
        self.config.validate()
        self.server = server
        self.channel = channel if channel is not None else Channel()
        self.transport = transport
        if transport is not None:
            transport.on_reply = self._on_transport_replies
        self.client_id = client_id
        self.clock = clock if clock is not None else VirtualClock()
        self.meter = meter
        self.obs = obs
        # Mechanism selection: which encoder a triggered delta uses and
        # whether encoding is attempted at all (see repro.core.policy).
        # The default ("static" over "bitwise") reproduces the paper's
        # hard-coded trigger bit-for-bit.
        self.policy = make_policy(
            self.config.sync_policy,
            self.config.delta_backend,
            block_size=self.config.block_size,
            profile=getattr(meter, "profile", PC_PROFILE),
            obs=obs,
            cpu_byte_rate=self.config.policy_cpu_byte_rate,
        )

        self.relations = RelationTable(
            timeout=self.config.relation_timeout, obs=obs
        )
        self.queue = SyncQueue(
            upload_delay=self.config.upload_delay,
            capacity=self.config.sync_queue_capacity,
            max_coalesce_delay=self.config.max_coalesce_delay,
            obs=obs,
        )
        self.versions: Dict[str, Optional[VersionStamp]] = {}
        self._counter = VersionCounter(client_id)
        # checksum_kv lets callers back the checksum store with a durable
        # KV (repro.kvstore.LogStructuredKV — the LevelDB role): that is
        # what makes the post-crash sweep possible after a real restart.
        self.checksums: Optional[ChecksumStore] = (
            ChecksumStore(
                checksum_kv,
                block_size=self.config.checksum_block_size,
                meter=meter,
            )
            if self.config.enable_checksums
            else None
        )
        self.undo: Optional[UndoLog] = (
            UndoLog(meter=meter) if self.config.enable_undo_log else None
        )
        from repro.core.recovery import SyncJournal

        self.journal: Optional[SyncJournal] = (
            SyncJournal(journal_kv, obs=obs) if journal_kv is not None else None
        )
        self.stats = ClientStats()
        # Versions whose nodes were removed from the queue before upload
        # (cancelled creates, delta-replaced writes): the server will never
        # snapshot them, so they can never serve as a delta's content base.
        self._dead_versions: set = set()
        # Paths created while a relation entry matched — their delta runs
        # when the write node packs (content is complete by then).
        self._pending_create_delta: Dict[str, RelationEntry] = {}
        self.conflict_notices: List[ConflictNotice] = []

        if server is not None:
            if shares is not None:
                server.register_client(
                    client_id, self._receive_forward, shares=shares
                )
            else:
                server.register_client(client_id, self._receive_forward)

    # ------------------------------------------------------------------
    # file operations (the FUSE surface)
    # ------------------------------------------------------------------

    def create(self, path: str) -> None:
        now = self._tick()
        existed = self.inner.exists(path)
        self.inner.create(path)
        if self._unsynced(path) or existed:
            return
        entry = self._match_relation(path, now)
        if entry is not None and self.inner.exists(entry.dst):
            # Content arrives via later writes; encode at pack time.
            self._pending_create_delta[path] = entry
        version = self._mint()
        self.versions[path] = version
        self._enqueue_meta("create", path, None, new_version=version, now=now)

    def write(self, path: str, offset: int, data: bytes) -> None:
        now = self._tick()
        if self._unsynced(path):
            self.inner.write(path, offset, data)
            return
        self.stats.writes_intercepted += 1
        self.stats.bytes_written += len(data)
        self.obs.inc("client.writes.intercepted")
        self.obs.inc("client.write.bytes", len(data))
        # NFS-like file RPC: the written bytes are captured here, for free.
        self.meter.charge_bytes("write_io", len(data))

        old_size = self.inner.size(path)
        if self.undo is not None and offset < old_size:
            old_slice = self.inner.read(
                path, offset, min(len(data), old_size - offset)
            )
            self._undo_record(path, offset, len(data), old_slice, old_size)
        elif self.undo is not None:
            self._undo_record(path, offset, len(data), b"", old_size)

        self.inner.write(path, offset, data)

        # Writing to a preserved old version invalidates its relations.
        self._journal_forget_relations(self.relations.invalidate_dst(path))

        node = self.queue.active_write_node(path)
        if node is None:
            if self.queue.full:
                self.stats.stalls += 1
                self.obs.inc("client.stalls")
                self.pump(now)
            base = self.versions.get(path)
            node = WriteNode(
                path=path, base_version=base, new_version=self._mint()
            )
            self.queue.enqueue(node, now)
            self.versions[path] = node.new_version
        else:
            self.queue.note_mutation(node)
            self.queue.note_coalesced(node, offset, len(data))
            # The upload delay debounces from the *last* write: an active
            # node keeps coalescing while the application is still writing
            # (Figure 6's delay gives delta replacement its window).
            node.enqueue_time = now
        node.add_write(offset, data)
        # (Re-)journal the node with the new write absorbed — the record is
        # keyed by seq, so a coalesced write simply overwrites it.
        self._journal_node(node)

        if self.checksums is not None:
            content = self.inner.read_file(path)
            self.checksums.update_blocks(path, content, offset, len(data))
        self._sync_aliases(path, offset, len(data))

    def _sync_aliases(self, path: str, offset: int, length: int) -> None:
        """Mirror a content change onto hard-linked names.

        Other names of the same inode saw the same bytes change: their
        synced-version bookkeeping and block checksums must follow, or a
        later write through the alias would look stale to the server and a
        verified read through it would false-alarm.
        """
        aliases = [p for p in self.inner.linked_paths(path) if p != path]
        if not aliases:
            return
        version = self.versions.get(path)
        content = self.inner.read_file(path) if self.checksums is not None else b""
        for alias in aliases:
            if self._unsynced(alias):
                continue
            self.versions[alias] = version
            if self.checksums is not None:
                self.checksums.update_blocks(alias, content, offset, length)

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        self._tick()
        data = self.inner.read(path, offset, length)
        if self.checksums is not None and not self._unsynced(path):
            content = self.inner.read_file(path)
            try:
                self.checksums.verify_read(path, content, offset, len(data))
            except CorruptionDetected:
                self.stats.corruptions_detected += 1
                recovered = self._recover(path)
                if recovered is None:
                    raise
                if length is None:
                    return recovered[offset:]
                return recovered[offset : offset + length]
        return data

    def truncate(self, path: str, length: int) -> None:
        now = self._tick()
        if self._unsynced(path):
            self.inner.truncate(path, length)
            return
        old_size = self.inner.size(path)
        if self.undo is not None and length < old_size:
            tail = self.inner.read(path, length, old_size - length)
            self._undo_record(path, length, len(tail), tail, old_size)
        self.inner.truncate(path, length)
        self._journal_forget_relations(self.relations.invalidate_dst(path))
        self._pack_and_maybe_compress(path, now)
        base = self.versions.get(path)
        node = TruncateNode(
            path=path, length=length, base_version=base, new_version=self._mint()
        )
        self.queue.enqueue(node, now)
        self._journal_node(node)
        self.versions[path] = node.new_version
        if self.checksums is not None:
            self.checksums.reindex(path, self.inner.read_file(path))
        for alias in self.inner.linked_paths(path):
            if alias != path and not self._unsynced(alias):
                self.versions[alias] = node.new_version
                if self.checksums is not None:
                    self.checksums.reindex(alias, self.inner.read_file(alias))

    def rename(self, src: str, dst: str) -> None:
        now = self._tick()
        if self._unsynced(src) and self._unsynced(dst):
            self.inner.rename(src, dst)
            return
        self._pack_and_maybe_compress(src, now)
        self.queue.pack(dst)

        dst_existed = self.inner.exists(dst)
        entry = self._match_relation(dst, now)
        old_content: Optional[bytes] = None
        old_version: Optional[VersionStamp] = None
        preserved_tmp: Optional[str] = None
        trigger_rule = ""
        if entry is not None and self.inner.exists(entry.dst):
            # Trigger rule 1: dst matches a live entry's src.
            trigger_rule = "relation_match"
            old_content = self.inner.read_file(entry.dst)
            old_version = self.versions.get(entry.dst)
            if entry.origin == "unlink":
                preserved_tmp = entry.dst
        elif dst_existed:
            # Trigger rule 2: the to-be-created name already exists.
            trigger_rule = "name_exists"
            old_content = self.inner.read_file(dst)
            old_version = self.versions.get(dst)

        self.inner.rename(src, dst)
        self.relations.record_rename(src, dst, now)
        self._journal_relation(src)
        if self.checksums is not None:
            self.checksums.rename(src, dst)

        moved_version = self.versions.pop(src, None)
        self.versions[dst] = moved_version
        moved_pending = self._pending_create_delta.pop(src, None)
        if moved_pending is not None:
            self._pending_create_delta[dst] = moved_pending
        self._enqueue_meta("rename", src, dst, new_version=None, now=now)

        if old_content is not None:
            self._try_transactional_delta(
                dst, old_content, old_version, now, preserved_tmp, rule=trigger_rule
            )

    def link(self, src: str, dst: str) -> None:
        now = self._tick()
        self.inner.link(src, dst)
        if self._unsynced(dst):
            return
        self.versions[dst] = self.versions.get(src)
        if self.checksums is not None:
            self.checksums.reindex(dst, self.inner.read_file(dst))
        self._enqueue_meta("link", src, dst, new_version=None, now=now)

    def unlink(self, path: str) -> None:
        now = self._tick()
        if self._unsynced(path):
            self.inner.unlink(path)
            return
        self._pack_and_maybe_compress(path, now)

        preserved = self._preserve_unlinked(path, now)
        if not preserved:
            self.inner.unlink(path)

        if self.checksums is not None:
            self.checksums.drop(path)
        self.versions.pop(path, None)

        # Causality shortcut: a file whose create never left the queue can
        # vanish without the cloud ever hearing of it (Section III-E) — but
        # only if no queued namespace edge touches the name: a pending
        # rename/link into the path would re-materialize it on the cloud,
        # and a pending rename/link out of it carries effects (another
        # name's content) that must still ship.
        pending = self.queue.pending_nodes(path)
        create_seqs = [
            n.seq
            for n in pending
            if isinstance(n, MetaNode) and n.kind == "create"
        ]
        entangled = any(
            isinstance(n, MetaNode)
            and n.kind in ("rename", "link")
            and (n.path == path or n.dest == path)
            for n in self.queue.nodes()
        )
        if create_seqs and not entangled:
            # Cancel only this incarnation: nodes from its pending create
            # onward. Anything queued *before* that create belongs to a
            # previous incarnation the cloud may already know about — in
            # particular its trailing unlink, which must still ship or the
            # cloud keeps a file the client deleted.
            first_create = min(create_seqs)
            doomed = [n for n in pending if n.seq >= first_create]
            self.queue.cancel_nodes(doomed)
            self._journal_forget(doomed)
            self._dead_versions.update(
                n.new_version for n in doomed if n.new_version is not None
            )
            self._pending_create_delta.pop(path, None)
        else:
            self._enqueue_meta("unlink", path, None, new_version=None, now=now)

    def close(self, path: str) -> None:
        now = self._tick()
        self.inner.close(path)
        if self._unsynced(path):
            return
        self._pack_and_maybe_compress(path, now)

    def mkdir(self, path: str) -> None:
        now = self._tick()
        self.inner.mkdir(path)
        if self._unsynced(path):
            return
        self._enqueue_meta("mkdir", path, None, new_version=None, now=now)

    def rmdir(self, path: str) -> None:
        now = self._tick()
        self.inner.rmdir(path)
        if self._unsynced(path):
            return
        self._enqueue_meta("rmdir", path, None, new_version=None, now=now)

    # ------------------------------------------------------------------
    # the pump: time-driven work
    # ------------------------------------------------------------------

    def pump(self, now: Optional[float] = None) -> int:
        """Expire relations and upload due Sync Queue units.

        Returns the number of upload units shipped. The workload driver
        calls this as virtual time advances (the real prototype's
        background threads).
        """
        if now is None:
            now = self.clock.now()
        self._expire_relations(now)
        shipped = 0
        # One batched sweep per wakeup: the queue rebuilds its node list
        # once for the whole drain instead of once per shipped node.
        for unit in self.queue.drain_due(now):
            self._upload_unit(unit, now)
            shipped += 1
        if self.transport is not None:
            self.transport.pump(now)
        return shipped

    def flush(self) -> int:
        """Drain everything (end of run), regardless of upload delay."""
        now = self.clock.now()
        self._expire_relations(now)
        # Pack any still-active write nodes through the compression check.
        for path in [n.path for n in self.queue.nodes() if isinstance(n, WriteNode)]:
            self._pack_and_maybe_compress(path, now)
        shipped = 0
        for unit in self.queue.drain_all(now):
            self._upload_unit(unit, now)
            shipped += 1
        if self.transport is not None:
            self.transport.pump(now)
        return shipped

    # ------------------------------------------------------------------
    # fine-grained version control (Section III-C)
    # ------------------------------------------------------------------

    def version_history(self, path: str) -> List[VersionStamp]:
        """Restorable versions of ``path`` on the cloud, oldest first.

        Versioning granularity is one stamp per Sync Queue node — "a neat
        tradeoff" between open-to-close and per-write versioning.
        """
        if self.server is None:
            raise RuntimeError("no server attached")
        from repro.net.messages import HistoryRequest, HistoryResponse

        now = self.clock.now()
        self.channel.upload(HistoryRequest(path=path), now)
        versions = self.server.version_history(path)
        self.channel.download(
            HistoryResponse(path=path, versions=tuple(versions)), now
        )
        return versions

    def restore_version(self, path: str, version: VersionStamp) -> bytes:
        """Roll ``path`` back to ``version`` (cloud-side) and mirror locally.

        Any locally pending nodes for the path are cancelled first — the
        restore supersedes them. Returns the restored content.
        """
        if self.server is None:
            raise RuntimeError("no server attached")
        from repro.net.messages import RestoreRequest

        now = self.clock.now()
        pending = self.queue.pending_nodes(path)
        if pending:
            self.queue.pack(path)
            self.queue.cancel_nodes(pending)
            self._journal_forget(pending)
            self._dead_versions.update(
                n.new_version for n in pending if n.new_version is not None
            )
        self.channel.upload(RestoreRequest(path=path, version=version), now)
        content = self.server.restore_version(
            path, version, origin_client=self.client_id
        )
        self.channel.download(
            FileDownload(path=path, data=content, version=version), now
        )
        if not self.inner.exists(path):
            self.inner.create(path)
        self.inner.truncate(path, 0)
        if content:
            self.inner.write(path, 0, content)
        self.versions[path] = version
        if self.checksums is not None:
            self.checksums.reindex(path, content)
        return content

    def crash_recovery_scan(self, recently_modified: List[str]) -> List[str]:
        """Post-crash sweep: verify recently-modified files' checksums.

        Returns the list of paths found crash-inconsistent ("we check every
        recently modified files by comparing their data blocks with their
        checksums", Section III-E). The caller decides whether to pull the
        cloud version (:meth:`recover_file`).
        """
        if self.checksums is None:
            raise RuntimeError("checksum store disabled")
        bad: List[str] = []
        for path in recently_modified:
            if not self.inner.exists(path):
                continue
            try:
                self.checksums.verify_file(path, self.inner.read_file(path))
            except Exception:
                bad.append(path)
        return bad

    def recover_file(self, path: str) -> Optional[bytes]:
        """Pull the cloud's copy of ``path`` and restore it locally."""
        return self._recover(path)

    def recover(self):
        """Post-crash recovery: replay the journal and resync (tentpole).

        Requires a journal (``journal_kv``). Restores the version counter,
        Relation Table, and undo logs; renegotiates base versions with the
        cloud; re-enqueues un-uploaded journaled nodes; and sweeps the
        dirty set against the durable checksum store, repairing crash
        damage block-by-block. Returns a
        :class:`~repro.core.recovery.RecoveryReport`.
        """
        from repro.core.recovery import perform_recovery

        return perform_recovery(self)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _tick(self) -> float:
        self.stats.ops_intercepted += 1
        self.obs.inc("client.ops.intercepted")
        self.meter.charge_ops(1)
        return self.clock.now()

    def _mint(self) -> VersionStamp:
        stamp = self._counter.next()
        if self.journal is not None:
            # A recovered client must never re-mint a stamp the cloud has
            # already seen, so the counter is journaled at mint time.
            self.journal.record_vercnt(self._counter.current)
        return stamp

    def _unsynced(self, path: str) -> bool:
        """Paths outside sync scope: the preservation tmp area."""
        return path.startswith(self.config.tmp_dir + "/") or path == self.config.tmp_dir

    # -- journal hooks (no-ops when no journal is attached) ----------------

    def _journal_node(self, node: QueueNode) -> None:
        if self.journal is not None:
            self.journal.record_node(node)

    def _journal_forget(self, nodes) -> None:
        if self.journal is not None:
            for node in nodes:
                self.journal.forget_node(node.seq)

    def _journal_relation(self, src: str) -> None:
        if self.journal is not None:
            entry = next(
                (e for e in self.relations.entries() if e.src == src), None
            )
            if entry is not None:
                self.journal.record_relation(entry)

    def _journal_forget_relations(self, entries) -> None:
        if self.journal is not None:
            for entry in entries:
                self.journal.forget_relation(entry.src)

    def _undo_record(
        self, path: str, offset: int, length: int, old_slice: bytes, old_size: int
    ) -> None:
        self.undo.record_write(path, offset, length, old_slice, old_size)
        if self.journal is not None:
            self.journal.record_undo(path, old_size, offset, length, old_slice)

    def _undo_clear(self, path: str) -> None:
        if self.undo is not None:
            self.undo.clear(path)
        if self.journal is not None:
            self.journal.forget_undo(path)

    def _enqueue_meta(
        self,
        kind: str,
        path: str,
        dest: Optional[str],
        *,
        new_version: Optional[VersionStamp],
        now: float,
    ) -> None:
        node = MetaNode(path=path, kind=kind, dest=dest, new_version=new_version)
        self.queue.enqueue(node, now)
        self._journal_node(node)

    # -- transactional-update delta path ---------------------------------

    def _try_transactional_delta(
        self,
        path: str,
        old_content: bytes,
        old_version: Optional[VersionStamp],
        now: float,
        preserved_tmp: Optional[str],
        rule: str = "",
    ) -> None:
        """Run triggered delta encoding for ``path`` against ``old_content``.

        The new content reached the queue as write nodes under the file's
        *temporary* name; if they are still pending, the (smaller) delta
        replaces them. If nothing is pending the data already shipped and a
        delta would be pure overhead.
        """
        self.stats.deltas_triggered += 1
        if self.obs.enabled:
            self.obs.inc("client.delta.triggered")
            self.obs.event("client.delta.trigger", path=path, rule=rule)
        doomed = sorted(self._pending_data_nodes_for_content(path), key=lambda n: n.seq)
        doomed_versions = {n.new_version for n in doomed}
        if (
            not doomed
            or old_version is None
            or old_version in self._dead_versions
            or old_version in doomed_versions
        ):
            # Nothing pending to replace, or the old version will never
            # exist on the cloud (it died un-uploaded, or it is the product
            # of the very nodes this delta would remove) — a delta would
            # reference a base the server cannot resolve.
            if self.obs.enabled:
                self.obs.inc("client.delta.no_base")
                self.obs.event("client.delta.no_base", path=path)
            if preserved_tmp is not None:
                self._drop_preserved(preserved_tmp)
            return
        new_content = self.inner.read_file(path)
        replaced_payload = sum(n.payload_bytes() for n in doomed)
        stats = UpdateStats(
            rpc_bytes=replaced_payload,
            changed_bytes=sum(
                n.payload_bytes() for n in doomed if isinstance(n, WriteNode)
            ),
            node_count=len(doomed),
        )
        delta, plan, keep = self._policy_encode(path, old_content, new_content, stats)
        if not keep:
            if self.obs.enabled:
                self.obs.inc("client.delta.rpc_wins")
                self.obs.event(
                    "client.delta.rpc_wins",
                    path=path,
                    delta_bytes=delta.wire_size()
                    if delta is not None
                    else plan.est_delta_bytes,
                    replaced_bytes=replaced_payload,
                )
            if preserved_tmp is not None:
                self._drop_preserved(preserved_tmp)
            return  # RPC wins; keep the write nodes (adaptivity!)
        self.stats.deltas_kept += 1
        if self.obs.enabled:
            self.obs.inc("client.delta.kept")
            self.obs.inc(
                "client.delta.saved_bytes",
                max(0, replaced_payload - delta.wire_size()),
            )
            self.obs.event(
                "client.delta.kept",
                path=path,
                delta_bytes=delta.wire_size(),
                replaced_bytes=replaced_payload,
            )
        node = DeltaNode(
            path=path,
            delta=delta,
            base_version=doomed[0].base_version,
            content_base=old_version,
            new_version=self._mint(),
        )
        self.queue.replace_with_delta(doomed, node, now)
        self._journal_forget(doomed)
        self._journal_node(node)
        self._dead_versions.update(v for v in doomed_versions if v is not None)
        self.versions[path] = node.new_version
        if preserved_tmp is not None:
            self._drop_preserved(preserved_tmp)

    def _policy_encode(
        self,
        path: str,
        old_content: bytes,
        new_content: bytes,
        stats: UpdateStats,
    ) -> Tuple[Optional[Delta], MechanismPlan, bool]:
        """Consult the mechanism policy and (maybe) encode a delta.

        Returns ``(delta, plan, keep)``: ``delta`` is ``None`` when the
        policy pre-chose RPC and skipped the encode entirely (the CPU the
        cost-model policy saves); ``keep`` says whether the caller should
        replace the queued nodes with the delta.
        """
        plan = self.policy.plan(path, len(old_content), len(new_content), stats)
        if plan.backend is None:
            return None, plan, False
        with self.obs.span(
            "client.delta.encode",
            path=path,
            old_bytes=len(old_content),
            new_bytes=len(new_content),
        ):
            delta = plan.backend.encode(
                old_content, new_content, self.config.block_size, meter=self.meter
            )
        self.policy.observe_outcome(path, plan, delta.wire_size(), stats.rpc_bytes)
        keep = plan.force_keep or delta.wire_size() < stats.rpc_bytes
        return delta, plan, keep

    def _pending_data_nodes_for_content(self, path: str) -> List[QueueNode]:
        """Queued data nodes that (re-)uploaded this file's new content.

        After ``rename tmp -> f`` the write nodes still carry the temporary
        name; we trace back through rename meta nodes queued for ``path``.
        A multi-hop chain is queued in FIFO order (``rename tmp2 -> tmp1``
        *before* ``rename tmp1 -> path``), so a single forward pass over
        the queue would discover ``tmp1`` only after having skipped past
        ``tmp2``'s rename — iterate to a fixpoint instead.
        """
        names = {path}
        live = self.queue.nodes()
        renames = [
            n for n in live if isinstance(n, MetaNode) and n.kind == "rename"
        ]
        changed = True
        while changed:
            changed = False
            for node in renames:
                if node.dest in names and node.path not in names:
                    names.add(node.path)
                    changed = True
        return [
            n
            for n in live
            if n.path in names and isinstance(n, (WriteNode, TruncateNode, DeltaNode))
        ]

    # -- pack-time in-place compression -----------------------------------

    def _pack_and_maybe_compress(self, path: str, now: float) -> None:
        with self.obs.span("client.pack", path=path):
            node = self.queue.pack(path)
            pending_entry = self._pending_create_delta.pop(path, None)
            if node is None:
                if pending_entry is not None and pending_entry.origin == "unlink":
                    self._drop_preserved(pending_entry.dst)
                self._undo_clear(path)
                return
            if self.obs.enabled:
                self.obs.inc("client.pack.count")
                self.obs.observe("client.pack.duration", now - node.created_time)

            if pending_entry is not None and self.inner.exists(pending_entry.dst):
                # The file was re-created over a preserved old version
                # (delete-then-rewrite); encode against that old version.
                old_content = self.inner.read_file(pending_entry.dst)
                old_version = self.versions.get(pending_entry.dst)
                self.stats.deltas_triggered += 1
                if self.obs.enabled:
                    self.obs.inc("client.delta.triggered")
                    self.obs.event(
                        "client.delta.trigger", path=path, rule="pending_create"
                    )
                self._compress_node(
                    path, node, old_content, old_version, now,
                    preserved_tmp=pending_entry.dst
                    if pending_entry.origin == "unlink"
                    else None,
                )
            elif (
                self.undo is not None
                and self.undo.has_log(path)
                and self.undo.changed_fraction(path) > self.config.inplace_delta_threshold
            ):
                # Large in-place update: old version reconstructable locally.
                if self.obs.enabled:
                    self.obs.inc("client.delta.triggered")
                    self.obs.event("client.delta.trigger", path=path, rule="inplace")
                current = self.inner.read_file(path)
                old_content = self.undo.reconstruct_old(path, current)
                self._compress_node(
                    path, node, old_content, node.base_version, now, count_inplace=True
                )
            self._undo_clear(path)

    def _compress_node(
        self,
        path: str,
        node: WriteNode,
        old_content: bytes,
        old_version: Optional[VersionStamp],
        now: float,
        *,
        preserved_tmp: Optional[str] = None,
        count_inplace: bool = False,
    ) -> None:
        if old_version is None or old_version in self._dead_versions:
            # The old version never reached the cloud; no base to delta from.
            if self.obs.enabled:
                self.obs.inc("client.delta.no_base")
                self.obs.event("client.delta.no_base", path=path)
            if preserved_tmp is not None:
                self._drop_preserved(preserved_tmp)
            return
        new_content = self.inner.read_file(path)
        stats = UpdateStats(
            rpc_bytes=node.payload_bytes(),
            changed_bytes=node.payload_bytes(),
            node_count=1,
        )
        delta, plan, keep = self._policy_encode(path, old_content, new_content, stats)
        if keep:
            if count_inplace:
                self.stats.inplace_deltas += 1
                self.obs.inc("client.delta.inplace")
            else:
                self.stats.deltas_kept += 1
                self.obs.inc("client.delta.kept")
            if self.obs.enabled:
                self.obs.inc(
                    "client.delta.saved_bytes",
                    max(0, node.payload_bytes() - delta.wire_size()),
                )
                self.obs.event(
                    "client.delta.kept",
                    path=path,
                    delta_bytes=delta.wire_size(),
                    replaced_bytes=node.payload_bytes(),
                )
            replacement = DeltaNode(
                path=path,
                delta=delta,
                base_version=node.base_version,
                content_base=old_version,
                new_version=self._mint(),
            )
            self.queue.replace_with_delta([node], replacement, now)
            self._journal_forget([node])
            self._journal_node(replacement)
            if node.new_version is not None:
                self._dead_versions.add(node.new_version)
            self.versions[path] = replacement.new_version
        elif self.obs.enabled:
            self.obs.inc("client.delta.rpc_wins")
            self.obs.event(
                "client.delta.rpc_wins",
                path=path,
                delta_bytes=delta.wire_size()
                if delta is not None
                else plan.est_delta_bytes,
                replaced_bytes=node.payload_bytes(),
            )
        if preserved_tmp is not None:
            self._drop_preserved(preserved_tmp)

    # -- unlink preservation ------------------------------------------------

    def _preserve_unlinked(self, path: str, now: float) -> bool:
        """Park an unlinked file in the tmp area; returns success.

        ENOSPC and oversized files fall back to real deletion
        (Section III-A: "if temporarily preserving the file would result in
        ENOSPC ... the deleted files will not be preserved").
        """
        stat = self.inner.stat(path)
        if stat.is_dir or stat.size > self.config.preserve_unlinked_max_bytes:
            return False
        if not self.inner.exists(self.config.tmp_dir):
            self.inner.mkdir(self.config.tmp_dir)
        preserved = posixpath.join(
            self.config.tmp_dir, path.strip("/").replace("/", "__")
        )
        try:
            if self.inner.exists(preserved):
                self.inner.unlink(preserved)
            self.inner.rename(path, preserved)
        except NoSpaceError:
            return False
        # The preserved copy keeps its synced version so a later triggered
        # delta can name its base snapshot on the server.
        self.versions[preserved] = self.versions.get(path)
        self.relations.record_unlink(path, preserved, now)
        self._journal_relation(path)
        return True

    def _drop_preserved(self, preserved_path: str) -> None:
        if self.inner.exists(preserved_path) and self._unsynced(preserved_path):
            self.inner.unlink(preserved_path)

    def _match_relation(self, path: str, now: float) -> Optional[RelationEntry]:
        """Probe the relation table, GC'ing any stale entry it evicts.

        A stale (expired-but-uncollected) entry surfaces here rather than
        waiting for the next pump — its preserved tmp file would otherwise
        leak until then.
        """
        stale: List[RelationEntry] = []
        entry = self.relations.match_created(path, now, stale_out=stale)
        for dead in stale:
            self._collect_expired_entry(dead)
        self._journal_forget_relations(stale)
        if entry is not None:
            self._journal_forget_relations([entry])
        return entry

    def _expire_relations(self, now: float) -> None:
        expired = self.relations.expire(now)
        for entry in expired:
            self._collect_expired_entry(entry)
        self._journal_forget_relations(expired)

    def _collect_expired_entry(self, entry: RelationEntry) -> None:
        if entry.origin == "unlink":
            self._drop_preserved(entry.dst)
        self._pending_create_delta = {
            p: e for p, e in self._pending_create_delta.items() if e is not entry
        }

    # -- uploading ---------------------------------------------------------

    def _upload_unit(self, unit: UploadUnit, now: float) -> None:
        # The nodes left the queue for good: their journal records are done.
        self._journal_forget(unit.nodes)
        messages = [self._node_to_message(n) for n in unit.nodes]
        messages = [m for m in messages if m is not None]
        if not messages:
            return
        span_attrs: Dict[str, object] = {
            "nodes": len(unit.nodes),
            "transactional": unit.transactional,
        }
        if self.obs.enabled:
            # Member paths and wire sizes let the offline analyzer split a
            # grouped (or enveloped) upload's bytes back over the files
            # that caused it; skipped on NULL_OBS to keep wire_size() off
            # the hot path.
            span_attrs["paths"] = [m.path for m in messages]
            span_attrs["member_bytes"] = [m.wire_size() for m in messages]
        with self.obs.span("client.upload_unit", **span_attrs):
            if unit.transactional and len(messages) > 1:
                outbound: Message = TxnGroup(members=tuple(messages))
                self.stats.groups_uploaded += 1
                self.obs.inc("client.upload.groups")
            else:
                outbound = messages[0] if len(messages) == 1 else TxnGroup(
                    members=tuple(messages)
                )
            self.stats.nodes_uploaded += len(messages)
            self.obs.inc("client.upload.units")
            if self.transport is not None:
                # Reliable path: the transport envelopes the message and
                # charges the channel itself; replies surface through
                # the ack callback once the server's EnvelopeAck lands.
                self.transport.send(outbound, now)
                return
            self.channel.upload(outbound, now)
            if self.server is None:
                return
            result = self.server.handle(outbound, origin_client=self.client_id)
            self._process_replies(result, now)

    def _node_to_message(self, node: QueueNode) -> Optional[Message]:
        if isinstance(node, WriteNode):
            runs = node.merged_writes()
            if not runs:
                return None
            if len(runs) == 1:
                offset, data = runs[0]
                return UploadWrite(
                    path=node.path,
                    offset=offset,
                    data=data,
                    base_version=node.base_version,
                    new_version=node.new_version,
                )
            return UploadWriteBatch(
                path=node.path,
                runs=tuple(runs),
                base_version=node.base_version,
                new_version=node.new_version,
            )
        if isinstance(node, TruncateNode):
            return UploadTruncate(
                path=node.path,
                length=node.length,
                base_version=node.base_version,
                new_version=node.new_version,
            )
        if isinstance(node, DeltaNode):
            return UploadDelta(
                path=node.path,
                delta=node.delta,
                base_version=node.base_version,
                new_version=node.new_version,
                content_base=node.content_base,
            )
        if isinstance(node, MetaNode):
            return MetaOp(
                kind=node.kind,
                path=node.path,
                dest=node.dest,
                new_version=node.new_version,
            )
        raise TypeError(f"cannot serialize {type(node).__name__}")

    def _process_replies(self, result: ApplyResult, now: float) -> None:
        for reply in result.replies:
            self.channel.download(reply, now)
            if isinstance(reply, ConflictNotice):
                self.stats.conflicts += 1
                self.obs.inc("client.conflicts")
                self.conflict_notices.append(reply)

    def _on_transport_replies(self, replies) -> None:
        """Ack-borne replies: already charged inside the EnvelopeAck."""
        for reply in replies:
            if isinstance(reply, ConflictNotice):
                self.stats.conflicts += 1
                self.obs.inc("client.conflicts")
                self.conflict_notices.append(reply)

    # -- downloads: forwards and recovery -----------------------------------

    def _receive_forward(self, origin_client: int, message: Forward) -> None:
        """Apply another client's update, forwarded verbatim by the cloud."""
        self.channel.download(message, self.clock.now())
        self.stats.forwards_applied += 1
        inner_msg = message.inner
        self._apply_remote(inner_msg)

    def _apply_remote(self, message: Message) -> None:
        from repro.net.messages import (  # local import to avoid cycle noise
            MetaOp as _MetaOp,
            TxnGroup as _TxnGroup,
            UploadDelta as _UploadDelta,
            UploadFull as _UploadFull,
            UploadTruncate as _UploadTruncate,
            UploadWrite as _UploadWrite,
            UploadWriteBatch as _UploadWriteBatch,
        )

        if isinstance(message, _TxnGroup):
            for member in message.members:
                self._apply_remote(member)
            return
        path = getattr(message, "path", "")
        if not path:
            return
        pending = self.queue.pending_nodes(path)
        if pending:
            # Local concurrent edit: the forwarded update conflicts with
            # pending local changes (Section III-D); the server reconciles,
            # we keep local state and count the conflict.
            self.stats.conflicts += 1
            self.obs.inc("client.conflicts")
            return
        if isinstance(message, _MetaOp):
            self._replay_remote_meta(message)
        elif isinstance(message, _UploadWrite):
            self._ensure_exists(path)
            self.inner.write(path, message.offset, message.data)
            self.versions[path] = message.new_version
        elif isinstance(message, _UploadWriteBatch):
            self._ensure_exists(path)
            for offset, data in message.runs:
                self.inner.write(path, offset, data)
            self.versions[path] = message.new_version
        elif isinstance(message, _UploadTruncate):
            self._ensure_exists(path)
            self.inner.truncate(path, message.length)
            self.versions[path] = message.new_version
        elif isinstance(message, _UploadDelta):
            if self.server is not None and self.server.store.exists(path):
                content = self.server.file_content(path)
                self.inner.write_file(path, content)
                self.versions[path] = message.new_version
        elif isinstance(message, _UploadFull):
            self.inner.write_file(path, message.data)
            self.versions[path] = message.new_version
        if self.checksums is not None and self.inner.exists(path):
            for alias in self.inner.linked_paths(path):
                self.checksums.reindex(alias, self.inner.read_file(alias))
                self.versions[alias] = self.versions.get(path)

    def _replay_remote_meta(self, op: MetaOp) -> None:
        if op.kind == "create":
            if not self.inner.exists(op.path):
                self.inner.create(op.path)
            self.versions[op.path] = op.new_version
        elif op.kind == "rename" and self.inner.exists(op.path):
            self.inner.rename(op.path, op.dest)
            self.versions[op.dest] = self.versions.pop(op.path, None)
            if self.checksums is not None:
                self.checksums.rename(op.path, op.dest)
        elif op.kind == "link" and self.inner.exists(op.path):
            if not self.inner.exists(op.dest):
                self.inner.link(op.path, op.dest)
            self.versions[op.dest] = self.versions.get(op.path)
        elif op.kind == "unlink" and self.inner.exists(op.path):
            self.inner.unlink(op.path)
            self.versions.pop(op.path, None)
            if self.checksums is not None:
                self.checksums.drop(op.path)
        elif op.kind == "mkdir" and not self.inner.exists(op.path):
            self.inner.mkdir(op.path)
        elif op.kind == "rmdir" and self.inner.exists(op.path):
            self.inner.rmdir(op.path)

    def _ensure_exists(self, path: str) -> None:
        if not self.inner.exists(path):
            self.inner.create(path)

    def _recover(self, path: str) -> Optional[bytes]:
        """Fetch the cloud copy and restore the local file + checksums."""
        if self.server is None or not self.server.store.exists(path):
            return None
        content = self.server.file_content(path)
        version = self.server.file_version(path)
        self.channel.download(
            FileDownload(path=path, data=content, version=version), self.clock.now()
        )
        self.inner.write_file(path, content)
        self.versions[path] = version
        if self.checksums is not None:
            self.checksums.reindex(path, content)
        self.stats.recoveries += 1
        return content
