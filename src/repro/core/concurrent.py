"""Thread-safe Sync Queue wrapper.

The paper's C prototype implements the Sync Queue with a lock-free MPSC
structure [35]: application threads enqueue through the FUSE callbacks
while one uploader thread drains. The Python reproduction is
deterministic and single-threaded by design (DESIGN.md), but this wrapper
provides the same concurrency contract — many producers, one consumer —
for callers that want to drive a client from real threads, and the stress
tests in ``tests/core/test_concurrent.py`` check the queue's invariants
under that interleaving.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

from repro.core.sync_queue import DeltaNode, QueueNode, SyncQueue, UploadUnit, WriteNode


class ConcurrentSyncQueue:
    """A :class:`SyncQueue` guarded by one reentrant lock.

    A single coarse lock is the honest Python equivalent of the paper's
    lock-free queue: under the GIL there is no parallel speedup to chase,
    only interleaving-correctness to guarantee. Every public SyncQueue
    operation is atomic with respect to the others.
    """

    def __init__(self, *, upload_delay: float = 3.0, capacity: int = 4096):
        self._queue = SyncQueue(upload_delay=upload_delay, capacity=capacity)
        self._lock = threading.RLock()

    # -- producer side ------------------------------------------------------

    def enqueue(self, node: QueueNode, now: float) -> QueueNode:
        with self._lock:
            return self._queue.enqueue(node, now)

    def append_write(self, path: str, offset: int, data: bytes, now: float) -> WriteNode:
        """Atomic find-or-create-and-append for producer threads.

        This is the operation that *must* be atomic end-to-end: a lookup
        followed by a separate append could attach a write to a node
        another thread just packed.
        """
        with self._lock:
            node = self._queue.active_write_node(path)
            if node is None:
                node = WriteNode(path=path)
                self._queue.enqueue(node, now)
            else:
                self._queue.note_mutation(node)
                node.enqueue_time = now
            node.add_write(offset, data)
            return node

    def active_write_node(self, path: str) -> Optional[WriteNode]:
        with self._lock:
            return self._queue.active_write_node(path)

    def pack(self, path: str) -> Optional[WriteNode]:
        with self._lock:
            return self._queue.pack(path)

    def replace_with_delta(
        self, doomed: Sequence[QueueNode], delta_node: DeltaNode, now: float
    ) -> DeltaNode:
        with self._lock:
            return self._queue.replace_with_delta(doomed, delta_node, now)

    def cancel_nodes(self, doomed: Sequence[QueueNode]) -> None:
        with self._lock:
            self._queue.cancel_nodes(doomed)

    # -- consumer side ------------------------------------------------------

    def next_unit(self, now: float) -> Optional[UploadUnit]:
        with self._lock:
            return self._queue.next_unit(now)

    def drain_due(self, now: float) -> List[UploadUnit]:
        with self._lock:
            return self._queue.drain_due(now)

    def drain_all(self, now: float) -> List[UploadUnit]:
        with self._lock:
            return self._queue.drain_all(now)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def full(self) -> bool:
        with self._lock:
            return self._queue.full

    def nodes(self) -> List[QueueNode]:
        with self._lock:
            return self._queue.nodes()

    def pending_nodes(self, path: str) -> List[QueueNode]:
        with self._lock:
            return self._queue.pending_nodes(path)

    def queued_bytes(self) -> int:
        with self._lock:
            return self._queue.queued_bytes()

    def spans(self):
        with self._lock:
            return self._queue.spans()
