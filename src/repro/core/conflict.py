"""Conflict-copy naming and bookkeeping (paper Section III-C).

First-write-wins: the first update the server receives becomes the latest
version; the loser is preserved as a *conflict version* under a derived
name, reconstructed from the base snapshot plus the losing incremental
data — "a file becoming a conflict version does not mean we have to drop
the incremental data and transmit this file again."
"""

from __future__ import annotations

import posixpath

from repro.common.version import VersionStamp


def conflict_path(path: str, losing_version: VersionStamp) -> str:
    """Derived name for a conflict copy, unique per losing version.

    ``/docs/report.txt`` lost by client 7's 42nd version becomes
    ``/docs/report (conflicted copy c7-42).txt`` — the familiar
    Dropbox-style convention. The tag goes before the *final* extension
    only (``archive.tar.gz`` -> ``archive.tar (conflicted copy ...).gz``),
    and a dotfile like ``.gitignore`` keeps its leading dot as part of the
    stem rather than producing a name that starts with a space.
    """
    directory, name = posixpath.split(path)
    stem, ext = posixpath.splitext(name)
    tag = f" (conflicted copy c{losing_version.client_id}-{losing_version.counter})"
    return posixpath.join(directory, f"{stem}{tag}{ext}")
