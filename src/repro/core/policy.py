"""Online mechanism selection: RPC vs delta, and with which backend.

The paper's client hard-codes one decision procedure: when a transactional
update triggers, encode a bitwise delta and keep it iff it is smaller than
the RPC payload it would replace. This module turns that into a pluggable
:class:`MechanismPolicy` (per *Enabling Cost-Benefit Analysis of Data Sync
Protocols*, PAPERS.md):

- ``static`` — the default; reproduces the pre-policy behaviour
  bit-for-bit: always encode with the configured backend, keep the delta
  iff ``wire_size() < rpc_bytes``.
- ``cost-model`` — the online policy. Per path it learns the observed
  delta/RPC byte ratio from measured outcomes (the same uplink bytes the
  PR-4 cost-attribution join verifies), combines it with the update's
  write-pattern stats and the backend's closed-form CPU-tick estimate from
  the :mod:`repro.cost` profile, and skips encoding entirely when RPC is
  predicted to win — saving the encode CPU that the static policy burns on
  delta-hostile files.
- ``always-rpc`` / ``always-delta`` — the sweep's bounding policies:
  never encode, and keep every valid delta regardless of size. They exist
  so experiments can bracket what selection can possibly buy.

The policy decides; the client executes. A decision is a
:class:`MechanismPlan` naming either RPC (``backend is None``) or a
backend to encode with; after an encode the client reports the measured
outcome back through :meth:`MechanismPolicy.observe_outcome`, which is
where the online learning (and the ``policy.estimate.*`` accounting)
happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cost.profile import CostProfile, PC_PROFILE
from repro.delta.backends import DeltaBackend, get_backend
from repro.obs import NULL_OBS, Observability

POLICIES: Tuple[str, ...] = ("static", "cost-model", "always-rpc", "always-delta")


@dataclass(frozen=True)
class UpdateStats:
    """Write-pattern stats of one pending update, computed by the client.

    Attributes:
        rpc_bytes: payload bytes of the queued nodes RPC would ship.
        changed_bytes: merged extent bytes the update actually wrote.
        node_count: queued data nodes the delta would replace.
    """

    rpc_bytes: int
    changed_bytes: int
    node_count: int = 1


@dataclass(frozen=True)
class MechanismPlan:
    """One decision: what to do about a triggered delta opportunity.

    ``backend is None`` means ship the queued RPC nodes without encoding.
    Otherwise encode with ``backend``; ``force_keep`` keeps the result
    even if it is larger than the RPC payload (the always-delta bound).
    """

    mechanism: str  # "rpc" or the backend name
    backend: Optional[DeltaBackend]
    est_delta_bytes: int
    force_keep: bool = False


@dataclass
class _PathHistory:
    """Online per-path memory: EWMA of the measured delta/RPC ratio."""

    ratio: float = 0.0  # EWMA of delta_bytes / rpc_bytes
    samples: int = 0

    def update(self, observed: float, alpha: float = 0.5) -> None:
        if self.samples == 0:
            self.ratio = observed
        else:
            self.ratio = alpha * observed + (1.0 - alpha) * self.ratio
        self.samples += 1


class MechanismPolicy:
    """Base policy: the static (pre-policy, bit-identical) behaviour."""

    name = "static"

    def __init__(
        self,
        backend: DeltaBackend,
        *,
        block_size: int = 4096,
        profile: CostProfile = PC_PROFILE,
        obs: Observability = NULL_OBS,
        cpu_byte_rate: float = 0.0,
    ):
        self.backend = backend
        self.block_size = block_size
        self.profile = profile
        self.obs = obs
        self.cpu_byte_rate = cpu_byte_rate

    # -- the decision ------------------------------------------------------

    def plan(self, path: str, old_len: int, new_len: int, stats: UpdateStats) -> MechanismPlan:
        """Decide the mechanism for one triggered update."""
        plan = self._choose(path, old_len, new_len, stats)
        if self.obs.enabled:
            self.obs.inc("policy.decisions", mechanism=plan.mechanism)
            self.obs.inc(
                "policy.estimate.rpc_bytes", stats.rpc_bytes, policy=self.name
            )
            self.obs.inc(
                "policy.estimate.delta_bytes",
                plan.est_delta_bytes,
                policy=self.name,
            )
            self.obs.event(
                "policy.decision",
                path=path,
                policy=self.name,
                mechanism=plan.mechanism,
                rpc_bytes=stats.rpc_bytes,
                est_delta_bytes=plan.est_delta_bytes,
            )
        return plan

    def _choose(
        self, path: str, old_len: int, new_len: int, stats: UpdateStats
    ) -> MechanismPlan:
        return MechanismPlan(
            mechanism=self.backend.name,
            backend=self.backend,
            est_delta_bytes=self.backend.estimate_wire_bytes(
                old_len, new_len, stats.changed_bytes, self.block_size
            ),
        )

    # -- the feedback loop -------------------------------------------------

    def observe_outcome(
        self, path: str, plan: MechanismPlan, delta_bytes: int, rpc_bytes: int
    ) -> None:
        """Report a measured encode outcome (called only after an encode)."""
        if self.obs.enabled:
            self.obs.inc(
                "policy.estimate.abs_error_bytes",
                abs(delta_bytes - plan.est_delta_bytes),
                policy=self.name,
            )


class AlwaysRpcPolicy(MechanismPolicy):
    """Never encode: the pure NFS-style file-RPC bound."""

    name = "always-rpc"

    def _choose(self, path, old_len, new_len, stats):
        return MechanismPlan(
            mechanism="rpc", backend=None, est_delta_bytes=stats.rpc_bytes
        )


class AlwaysDeltaPolicy(MechanismPolicy):
    """Keep every valid delta, even when RPC would have been smaller."""

    name = "always-delta"

    def _choose(self, path, old_len, new_len, stats):
        plan = super()._choose(path, old_len, new_len, stats)
        return MechanismPlan(
            mechanism=plan.mechanism,
            backend=plan.backend,
            est_delta_bytes=plan.est_delta_bytes,
            force_keep=True,
        )


class CostModelPolicy(MechanismPolicy):
    """Score RPC vs the backend per file and skip hopeless encodes.

    The first encodes on a path are exploratory (identical to ``static``).
    Once ``_MIN_SAMPLES`` measured outcomes exist, the policy predicts the
    next delta's size as ``ewma_ratio * rpc_bytes`` and compares costs in
    byte-equivalents::

        cost(rpc)   = rpc_bytes
        cost(delta) = predicted_bytes + cpu_byte_rate * estimate_ticks

    choosing RPC only when the prediction is *confidently* hopeless
    (ratio above ``_HOPELESS_RATIO``) — a conservative gate, so total
    uplink stays within a whisker of the static policy while the encode
    CPU on delta-hostile paths (e.g. the WeChat SQLite pattern) is saved.
    Mispredictions self-correct: a skipped path is retried after
    ``_RETRY_EVERY`` consecutive skips, refreshing the EWMA.
    """

    name = "cost-model"

    _MIN_SAMPLES = 2
    _HOPELESS_RATIO = 0.85
    _RETRY_EVERY = 8

    def __init__(self, backend, **kwargs):
        super().__init__(backend, **kwargs)
        self._history: Dict[str, _PathHistory] = {}
        self._skips: Dict[str, int] = {}

    def _choose(self, path, old_len, new_len, stats):
        history = self._history.get(path)
        if history is not None and history.samples >= self._MIN_SAMPLES:
            predicted = int(history.ratio * stats.rpc_bytes)
            encode_cost = self.cpu_byte_rate * self.backend.estimate_ticks(
                old_len, new_len, self.block_size, self.profile
            )
            hopeless = history.ratio >= self._HOPELESS_RATIO
            costlier = predicted + encode_cost >= stats.rpc_bytes
            if hopeless and costlier:
                skips = self._skips.get(path, 0) + 1
                if skips < self._RETRY_EVERY:
                    self._skips[path] = skips
                    return MechanismPlan(
                        mechanism="rpc", backend=None, est_delta_bytes=predicted
                    )
                # periodic re-exploration: fall through to an encode
                self._skips[path] = 0
            plan = super()._choose(path, old_len, new_len, stats)
            return MechanismPlan(
                mechanism=plan.mechanism,
                backend=plan.backend,
                est_delta_bytes=predicted,
            )
        return super()._choose(path, old_len, new_len, stats)

    def observe_outcome(self, path, plan, delta_bytes, rpc_bytes):
        super().observe_outcome(path, plan, delta_bytes, rpc_bytes)
        if rpc_bytes > 0:
            self._history.setdefault(path, _PathHistory()).update(
                delta_bytes / rpc_bytes
            )
            self._skips.pop(path, None)


_POLICY_CLASSES = {
    "static": MechanismPolicy,
    "cost-model": CostModelPolicy,
    "always-rpc": AlwaysRpcPolicy,
    "always-delta": AlwaysDeltaPolicy,
}


def make_policy(
    policy: str,
    backend_name: str,
    *,
    block_size: int = 4096,
    profile: CostProfile = PC_PROFILE,
    obs: Observability = NULL_OBS,
    cpu_byte_rate: float = 0.0,
) -> MechanismPolicy:
    """Construct the named policy over the named backend."""
    try:
        cls = _POLICY_CLASSES[policy]
    except KeyError:
        raise ValueError(
            f"unknown sync policy {policy!r}; pick one of {POLICIES}"
        ) from None
    return cls(
        get_backend(backend_name),
        block_size=block_size,
        profile=profile,
        obs=obs,
        cpu_byte_rate=cpu_byte_rate,
    )
