"""Crash-recovery journal: durable sync intent + post-crash resync.

The prototype keeps the Sync Queue, Relation Table, and undo logs in
memory; a power cut loses every un-uploaded change and the paper leaves the
"recently modified files" sweep to the restart logic. This module closes
that gap with a *sync-intent journal*: as operations are intercepted, the
client appends compact records to the same WAL-backed key-value store that
already makes the Checksum Store durable (the LevelDB role), and
:func:`perform_recovery` replays them after a crash.

What is journaled (and when):

- **queue nodes** — every Sync Queue node with its payload (write runs,
  truncate length, delta instruction stream, namespace op), re-recorded on
  coalesce and forgotten on ship/cancel/replace;
- **relation entries** — the live Relation Table rows, so an interrupted
  transactional update can still trigger delta encoding after restart
  (their preserved tmp blobs live in the file system, which survives);
- **undo spans** — the physical undo records for open in-place updates,
  so pack-time compression still has its base;
- **VerCnt** — the client's version counter, so a recovered client never
  re-mints a stamp the cloud has already seen.

Recovery then (1) restores the counter, relations, and undo logs, (2)
renegotiates base versions with the cloud in one metadata round trip
(``ResyncRequest``/``ResyncReply``), dropping journaled nodes the server
already applied and rebasing the rest, (3) re-enqueues the survivors in
their original order, and (4) sweeps the dirty set against the durable
checksum store, repairing injected crash inconsistency block-by-block from
ranged downloads patched with the journaled pending writes — recovery
traffic is bounded by the dirty + damaged regions, never whole files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.version import VersionStamp
from repro.core.relation_table import RelationEntry
from repro.core.sync_queue import (
    DeltaNode,
    MetaNode,
    QueueNode,
    TruncateNode,
    WriteNode,
)
from repro.delta.format import Delta
from repro.kvstore.kv import KVStore
from repro.obs import NULL_OBS, Observability

# -- key layout --------------------------------------------------------------

_J = b"j\x00"
_K_VERCNT = _J + b"meta\x00vercnt"
_P_NODE = _J + b"node\x00"
_P_REL = _J + b"rel\x00"
_P_UNDO = _J + b"undo\x00"

_KIND_WRITE = 1
_KIND_TRUNCATE = 2
_KIND_DELTA = 3
_KIND_META = 4

_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def _node_key(seq: int) -> bytes:
    return _P_NODE + _U64.pack(seq)


def _rel_key(src: str) -> bytes:
    return _P_REL + src.encode()


def _undo_key(path: str, index: int) -> bytes:
    return _P_UNDO + path.encode() + b"\x00" + _U64.pack(index)


# -- record (de)serialization ------------------------------------------------


def _pack_bytes(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


def _unpack_bytes(buf: bytes, pos: int) -> Tuple[bytes, int]:
    (length,) = _U32.unpack_from(buf, pos)
    pos += _U32.size
    return buf[pos : pos + length], pos + length


def _pack_str(text: str) -> bytes:
    return _pack_bytes(text.encode())


def _unpack_str(buf: bytes, pos: int) -> Tuple[str, int]:
    raw, pos = _unpack_bytes(buf, pos)
    return raw.decode(), pos


def _pack_version(version: Optional[VersionStamp]) -> bytes:
    if version is None:
        return b"\x00"
    return b"\x01" + _U64.pack(version.client_id) + _U64.pack(version.counter)


def _unpack_version(buf: bytes, pos: int) -> Tuple[Optional[VersionStamp], int]:
    flag = buf[pos]
    pos += 1
    if not flag:
        return None, pos
    (client_id,) = _U64.unpack_from(buf, pos)
    (counter,) = _U64.unpack_from(buf, pos + _U64.size)
    return VersionStamp(client_id, counter), pos + 2 * _U64.size


def encode_node(node: QueueNode) -> bytes:
    """Serialize one Sync Queue node into a journal record."""
    head = (
        _pack_str(node.path)
        + _pack_version(node.base_version)
        + _pack_version(node.new_version)
    )
    if isinstance(node, WriteNode):
        body = bytes([1 if node.packed else 0]) + _U32.pack(len(node.writes))
        for offset, data in node.writes:
            body += _U64.pack(offset) + _pack_bytes(data)
        return bytes([_KIND_WRITE]) + head + body
    if isinstance(node, TruncateNode):
        return bytes([_KIND_TRUNCATE]) + head + _U64.pack(node.length)
    if isinstance(node, DeltaNode):
        return (
            bytes([_KIND_DELTA])
            + head
            + _pack_version(node.content_base)
            + _pack_bytes(node.delta.encode())
        )
    if isinstance(node, MetaNode):
        dest = node.dest if node.dest is not None else ""
        return (
            bytes([_KIND_META])
            + head
            + _pack_str(node.kind)
            + bytes([1 if node.dest is not None else 0])
            + _pack_str(dest)
        )
    raise TypeError(f"cannot journal {type(node).__name__}")


def decode_node(buf: bytes) -> QueueNode:
    """Rebuild a Sync Queue node from its journal record."""
    kind = buf[0]
    pos = 1
    path, pos = _unpack_str(buf, pos)
    base_version, pos = _unpack_version(buf, pos)
    new_version, pos = _unpack_version(buf, pos)
    if kind == _KIND_WRITE:
        packed = bool(buf[pos])
        pos += 1
        (n_runs,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        writes: List[Tuple[int, bytes]] = []
        for _ in range(n_runs):
            (offset,) = _U64.unpack_from(buf, pos)
            pos += _U64.size
            data, pos = _unpack_bytes(buf, pos)
            writes.append((offset, data))
        return WriteNode(
            path=path,
            base_version=base_version,
            new_version=new_version,
            writes=writes,
            packed=packed,
        )
    if kind == _KIND_TRUNCATE:
        (length,) = _U64.unpack_from(buf, pos)
        return TruncateNode(
            path=path,
            base_version=base_version,
            new_version=new_version,
            length=length,
        )
    if kind == _KIND_DELTA:
        content_base, pos = _unpack_version(buf, pos)
        blob, pos = _unpack_bytes(buf, pos)
        return DeltaNode(
            path=path,
            base_version=base_version,
            new_version=new_version,
            content_base=content_base,
            delta=Delta.decode(blob),
        )
    if kind == _KIND_META:
        op_kind, pos = _unpack_str(buf, pos)
        has_dest = bool(buf[pos])
        pos += 1
        dest, pos = _unpack_str(buf, pos)
        return MetaNode(
            path=path,
            base_version=base_version,
            new_version=new_version,
            kind=op_kind,
            dest=dest if has_dest else None,
        )
    raise ValueError(f"unknown journal node kind {kind}")


def _encode_relation(entry: RelationEntry) -> bytes:
    return (
        _pack_str(entry.dst)
        + _F64.pack(entry.created_at)
        + _pack_str(entry.origin)
    )


def _decode_relation(src: str, buf: bytes) -> RelationEntry:
    pos = 0
    dst, pos = _unpack_str(buf, pos)
    (created_at,) = _F64.unpack_from(buf, pos)
    pos += _F64.size
    origin, pos = _unpack_str(buf, pos)
    return RelationEntry(src=src, dst=dst, created_at=created_at, origin=origin)


def _encode_undo(base_size: int, offset: int, length: int, old_data: bytes) -> bytes:
    return (
        _U64.pack(base_size)
        + _U64.pack(offset)
        + _U64.pack(length)
        + _pack_bytes(old_data)
    )


def _decode_undo(buf: bytes) -> Tuple[int, int, int, bytes]:
    (base_size,) = _U64.unpack_from(buf, 0)
    (offset,) = _U64.unpack_from(buf, _U64.size)
    (length,) = _U64.unpack_from(buf, 2 * _U64.size)
    old_data, _ = _unpack_bytes(buf, 3 * _U64.size)
    return base_size, offset, length, old_data


# -- the journal -------------------------------------------------------------


@dataclass
class UndoState:
    """One file's journaled undo log: base size plus recorded writes."""

    base_size: int = 0
    records: List[Tuple[int, int, bytes]] = field(default_factory=list)


@dataclass
class JournalState:
    """Everything :meth:`SyncJournal.load` reconstructs after a crash."""

    vercnt: int = 0
    nodes: List[Tuple[int, QueueNode]] = field(default_factory=list)
    relations: List[RelationEntry] = field(default_factory=list)
    undo: Dict[str, UndoState] = field(default_factory=dict)


class SyncJournal:
    """Sync-intent journal over a (durable) :class:`KVStore`.

    Records are idempotent puts/deletes keyed by the volatile object's
    identity (node seq, relation src, undo path+index), so re-recording a
    coalesced node simply overwrites its previous record. Pair it with a
    :class:`~repro.kvstore.kv.LogStructuredKV` opened in ``sync=True`` mode
    so an acked append survives the very power cut this models.
    """

    def __init__(self, kv: KVStore, *, obs: Observability = NULL_OBS):
        self.kv = kv
        self.obs = obs
        self._undo_index: Dict[str, int] = {}

    # -- write side --------------------------------------------------------

    def record_vercnt(self, counter: int) -> None:
        """Persist the last minted version counter."""
        self._put(_K_VERCNT, _U64.pack(counter), kind="vercnt", ref=str(counter))

    def record_node(self, node: QueueNode) -> None:
        """Persist (or re-persist, after coalescing) one queue node."""
        if node.seq < 0:
            raise ValueError("cannot journal a node that was never enqueued")
        self._put(
            _node_key(node.seq), encode_node(node), kind="node", ref=str(node.seq)
        )

    def forget_node(self, seq: int) -> None:
        """Drop a node record (it shipped, was cancelled, or was replaced)."""
        self.kv.delete(_node_key(seq))
        if self.obs.enabled:
            self.obs.inc("journal.records.forgotten", kind="node")
            self.obs.event("journal.forget", kind="node", ref=str(seq))

    def record_relation(self, entry: RelationEntry) -> None:
        """Persist one Relation Table entry."""
        self._put(
            _rel_key(entry.src), _encode_relation(entry), kind="relation",
            ref=entry.src,
        )

    def forget_relation(self, src: str) -> None:
        """Drop a relation record (matched, expired, or invalidated)."""
        self.kv.delete(_rel_key(src))
        if self.obs.enabled:
            self.obs.inc("journal.records.forgotten", kind="relation")
            self.obs.event("journal.forget", kind="relation", ref=src)

    def record_undo(
        self, path: str, base_size: int, offset: int, length: int, old_data: bytes
    ) -> None:
        """Persist one undo record (old bytes a write displaced)."""
        index = self._undo_index.get(path, 0)
        self._undo_index[path] = index + 1
        self._put(
            _undo_key(path, index),
            _encode_undo(base_size, offset, length, old_data),
            kind="undo",
            ref=path,
        )

    def forget_undo(self, path: str) -> None:
        """Drop a file's undo records (sync point reached)."""
        removed = self.kv.delete_prefix(_P_UNDO + path.encode() + b"\x00")
        if removed and self.obs.enabled:
            self.obs.inc("journal.records.forgotten", value=removed, kind="undo")
            self.obs.event("journal.forget", kind="undo", ref=path)
        self._undo_index.pop(path, None)

    def clear(self) -> None:
        """Wipe every journal record (fresh client, or tests)."""
        self.kv.delete_prefix(_J)
        self._undo_index.clear()

    # -- read side ---------------------------------------------------------

    def load(self) -> JournalState:
        """Reconstruct the journaled state (post-crash replay input)."""
        state = JournalState()
        raw_vercnt = self.kv.get(_K_VERCNT)
        if raw_vercnt is not None:
            (state.vercnt,) = _U64.unpack(raw_vercnt)
        for key, value in self.kv.items(_P_NODE):
            (seq,) = _U64.unpack(key[len(_P_NODE) :])
            state.nodes.append((seq, decode_node(value)))
        state.nodes.sort(key=lambda pair: pair[0])
        for key, value in self.kv.items(_P_REL):
            src = key[len(_P_REL) :].decode()
            state.relations.append(_decode_relation(src, value))
        for key, value in self.kv.items(_P_UNDO):
            body = key[len(_P_UNDO) :]
            path = body[: -(_U64.size + 1)].decode()
            (index,) = _U64.unpack(body[-_U64.size :])
            base_size, offset, length, old_data = _decode_undo(value)
            undo = state.undo.setdefault(path, UndoState(base_size=base_size))
            undo.records.append((offset, length, old_data))
            if index >= self._undo_index.get(path, 0):
                self._undo_index[path] = index + 1
        return state

    # -- internals ---------------------------------------------------------

    def _put(self, key: bytes, value: bytes, *, kind: str, ref: str) -> None:
        self.kv.put(key, value)
        if self.obs.enabled:
            self.obs.inc("journal.records.written", kind=kind)
            self.obs.inc("journal.bytes.written", len(key) + len(value))
            self.obs.event("journal.write", kind=kind, ref=ref)


# -- post-crash recovery -----------------------------------------------------


@dataclass
class RecoveryReport:
    """What one :meth:`DeltaCFSClient.recover` pass did."""

    dirty_paths: List[str] = field(default_factory=list)
    damaged_paths: List[str] = field(default_factory=list)
    nodes_replayed: int = 0
    nodes_already_applied: int = 0
    nodes_rebased: int = 0
    relations_restored: int = 0
    blocks_repaired: int = 0
    bytes_downloaded: int = 0
    full_file_fallbacks: int = 0


def perform_recovery(client) -> RecoveryReport:
    """Replay the journal into ``client`` and run the post-crash resync.

    The client is assumed freshly crashed: volatile structures empty (a
    restarted process, or :func:`repro.faults.crash.simulate_crash`), the
    backing file system and the journal/checksum KVs intact.
    """
    journal: Optional[SyncJournal] = client.journal
    if journal is None:
        raise RuntimeError("client has no journal to recover from")
    report = RecoveryReport()
    obs = client.obs
    now = client.clock.now()
    state = journal.load()

    with obs.span("client.recover", nodes=len(state.nodes)):
        obs.inc("recovery.runs")
        _restore_counter(client, state)
        report.relations_restored = _restore_relations(client, state, now)
        _restore_undo(client, state)
        local_paths = _local_paths(client)
        server_versions = _renegotiate_versions(client, local_paths, now)
        _replay_nodes(client, state, server_versions, now, report)
        _sweep_and_repair(client, local_paths, server_versions, now, report)
        client.stats.recoveries += 1
    return report


def _restore_counter(client, state: JournalState) -> None:
    from repro.common.version import VersionCounter

    start = max(client._counter.current, state.vercnt)
    client._counter = VersionCounter(client.client_id, start=start)


def _restore_relations(client, state: JournalState, now: float) -> int:
    """Re-admit journaled relation entries whose preserved dst survived.

    ``created_at`` is refreshed to ``now``: the transactional-update window
    the crash interrupted restarts, rather than expiring retroactively for
    wall time the client never observed.
    """
    restored = 0
    for entry in state.relations:
        if not client.inner.exists(entry.dst):
            client.journal.forget_relation(entry.src)
            continue
        client.relations.restore(
            RelationEntry(
                src=entry.src, dst=entry.dst, created_at=now, origin=entry.origin
            )
        )
        restored += 1
    return restored


def _restore_undo(client, state: JournalState) -> None:
    if client.undo is None:
        return
    for path, undo in state.undo.items():
        if not client.inner.exists(path):
            client.journal.forget_undo(path)
            continue
        client.undo.restore(path, undo.base_size, undo.records)


def _local_paths(client) -> List[str]:
    """Every local file outside the preserved-content tmp area."""
    tmp = client.config.tmp_dir
    return sorted(
        p
        for p in client.inner.walk_files()
        if not (p == tmp or p.startswith(tmp + "/"))
    )


def _renegotiate_versions(
    client, local_paths: List[str], now: float
) -> Dict[str, Optional[VersionStamp]]:
    """One metadata round trip: the server's current version per path.

    Rebuilds the client's synced-version map (volatile, lost in the crash)
    so post-recovery writes name valid base versions, and tells the replay
    which journaled nodes the server already applied before the cut.
    """
    from repro.net.messages import ResyncRequest, ResyncReply

    if client.server is None:
        return {}
    request = ResyncRequest(paths=tuple(local_paths))
    client.channel.upload(request, now)
    pairs = client.server.resync_versions(local_paths)
    reply = ResyncReply(versions=tuple(pairs))
    client.channel.download(reply, now)
    versions: Dict[str, Optional[VersionStamp]] = dict(pairs)
    for path, version in versions.items():
        if version is not None:
            client.versions[path] = version
    return versions


def _replay_nodes(
    client,
    state: JournalState,
    server_versions: Dict[str, Optional[VersionStamp]],
    now: float,
    report: RecoveryReport,
) -> None:
    """Re-enqueue journaled nodes, dropping/rebasing against the server."""
    obs = client.obs
    dirty: List[str] = []
    # The version each path will hold when the next pending node for it
    # applies: the server head initially, then the previous pending
    # node's minted version as the chain re-enqueues. Rebasing against
    # the *server* head alone would break intra-chain bases — the second
    # pending node correctly bases on the first one's new_version, which
    # the server hasn't seen yet.
    heads: Dict[str, Optional[VersionStamp]] = {}
    replaying: Dict[str, bool] = {}
    for old_seq, node in state.nodes:
        client.journal.forget_node(old_seq)
        server_head = server_versions.get(node.path)
        expected_head = heads.get(node.path, server_head)
        if (
            node.new_version is not None
            and server_head is not None
            and server_head == node.new_version
            and not replaying.get(node.path)
        ):
            # The cut fell after this node's upload was applied: nothing
            # to redo, just adopt the server's view.
            client.versions[node.path] = node.new_version
            heads[node.path] = node.new_version
            report.nodes_already_applied += 1
            obs.inc("recovery.nodes.already_applied")
            if obs.enabled:
                obs.event(
                    "recovery.node.replayed",
                    path=node.path,
                    kind=type(node).__name__,
                    disposition="already_applied",
                )
            continue
        disposition = "replayed"
        if (
            not isinstance(node, MetaNode)
            and node.base_version != expected_head
            and node.path in server_versions
        ):
            # The server moved past (or never saw) the journaled base;
            # renegotiate so the re-upload applies cleanly instead of
            # misfiring as a concurrent-update conflict.
            node.base_version = expected_head
            report.nodes_rebased += 1
            obs.inc("recovery.nodes.rebased")
            disposition = "rebased"
        client.queue.restore(node, now)
        client.journal.record_node(node)
        replaying[node.path] = True
        if node.new_version is not None:
            client.versions[node.path] = node.new_version
            heads[node.path] = node.new_version
        report.nodes_replayed += 1
        obs.inc("recovery.nodes.replayed")
        if obs.enabled:
            obs.event(
                "recovery.node.replayed",
                path=node.path,
                kind=type(node).__name__,
                disposition=disposition,
            )
        if node.path not in dirty:
            dirty.append(node.path)
    report.dirty_paths = sorted(set(dirty) | set(state.undo))


def _sweep_and_repair(
    client,
    local_paths: List[str],
    server_versions: Dict[str, Optional[VersionStamp]],
    now: float,
    report: RecoveryReport,
) -> None:
    """The paper's "recently modified files" sweep, with bounded repair.

    Every local file's blocks are compared against the durable checksum
    store — damage can land in clean files too, so the sweep is not
    limited to the journal's dirty set. The comparison is pure local
    hashing; network traffic happens only for mismatching blocks. A
    mismatching block is crash damage (it changed beneath the operation
    surface); the repair pulls only that block range from the cloud and
    re-applies the journaled pending operations that cover it, so
    un-uploaded dirty data is never lost and the downlink is bounded by
    the damaged span.
    """
    if client.checksums is None:
        return
    obs = client.obs
    pending_ops = _pending_ops_by_path(client)
    for path in sorted(set(local_paths) | set(report.dirty_paths)):
        if not client.inner.exists(path):
            continue
        obs.inc("recovery.files.swept")
        content = client.inner.read_file(path)
        bad_blocks = client.checksums.mismatched_blocks(path, content)
        if not bad_blocks:
            continue
        report.damaged_paths.append(path)
        obs.inc("recovery.files.damaged")
        repaired = _repair_blocks(
            client, path, content, bad_blocks, pending_ops.get(path, []),
            server_versions, now, report,
        )
        if obs.enabled:
            obs.event(
                "recovery.file.repaired",
                path=path,
                blocks=len(bad_blocks),
                full_file=not repaired,
            )


# A pending operation, in journal sequence order:
#   ("write", [(offset, data), ...])  merged runs of one WriteNode
#   ("trunc", length)                 a TruncateNode
#   ("delta", DeltaNode)              a triggered delta (needs its base)
_PendingOp = Tuple[str, object]


def _pending_ops_by_path(client) -> Dict[str, List[_PendingOp]]:
    """The re-enqueued (pending) intents per path, in sequence order.

    Order matters for reconstruction: a write after a truncate lands on
    the shortened file, a truncate after a write cuts it. The queue is
    FIFO, so iteration order *is* journal sequence order.
    """
    ops: Dict[str, List[_PendingOp]] = {}
    for node in client.queue.nodes():
        if isinstance(node, WriteNode):
            ops.setdefault(node.path, []).append(("write", node.merged_writes()))
        elif isinstance(node, TruncateNode):
            ops.setdefault(node.path, []).append(("trunc", node.length))
        elif isinstance(node, DeltaNode):
            ops.setdefault(node.path, []).append(("delta", node))
    return ops


def _overlay_pending(
    patch: bytearray, offset: int, pending_ops: List[_PendingOp]
) -> None:
    """Apply pending write/truncate intents to ``patch`` (a slice of the
    file starting at ``offset``), in sequence order.

    This reconstructs what the damaged range held at the cut: the cloud's
    (older) bytes already in ``patch``, transformed by every journaled
    operation that was still pending — dirty data wins over stale data.
    """
    end = offset + len(patch)
    for kind, arg in pending_ops:
        if kind == "trunc":
            # Bytes at/after the cut point were zeroed (shrink) or born
            # zero (extension); later writes may overwrite them below.
            length = int(arg)  # type: ignore[arg-type]
            if length < end:
                lo = max(length, offset)
                patch[lo - offset :] = b"\x00" * (end - lo)
        elif kind == "write":
            for run_offset, run_data in arg:  # type: ignore[union-attr]
                lo = max(run_offset, offset)
                hi = min(run_offset + len(run_data), end)
                if lo < hi:
                    patch[lo - offset : hi - offset] = run_data[
                        lo - run_offset : hi - run_offset
                    ]


def _repair_blocks(
    client,
    path: str,
    content: bytes,
    bad_blocks: List[int],
    pending_ops: List[_PendingOp],
    server_versions: Dict[str, Optional[VersionStamp]],
    now: float,
    report: RecoveryReport,
) -> bool:
    """Overwrite damaged blocks with cloud bytes + journaled pending intents.

    Returns True when the block-wise repair settled the file. A pending
    delta defeats range-wise reconstruction (its target bytes exist only
    relative to its base), and a reconstruction that still disagrees with
    the durable checksums means the range model is missing history (e.g.
    the file predates the checksum store) — both fall back to
    :func:`_full_reconstruction`, never to blindly adopting the stale
    cloud copy.
    """
    from repro.net.messages import RangeRequest, RangeReply

    block = client.checksums.block_size
    data = bytearray(content)
    on_server = (
        client.server is not None
        and server_versions.get(path) is not None
        and client.server.store.exists(path)
    )
    if any(kind == "delta" for kind, _ in pending_ops):
        return _full_reconstruction(
            client, path, content, pending_ops, on_server, now, report
        )
    for start, count in _contiguous_runs(bad_blocks):
        offset = start * block
        length = count * block
        if on_server:
            request = RangeRequest(path=path, offset=offset, length=length)
            client.channel.upload(request, now)
            chunk, version = client.server.file_range(path, offset, length)
            client.channel.download(
                RangeReply(path=path, offset=offset, data=chunk, version=version),
                now,
            )
            report.bytes_downloaded += len(chunk)
            client.obs.inc("recovery.bytes.downloaded", len(chunk))
        else:
            # Never uploaded: the journaled pending intents are the only
            # source of truth for this region.
            chunk = b"\x00" * min(length, len(data) - offset)
        end = min(offset + length, len(data))
        patch = bytearray(data[offset:end])
        patch[: len(chunk)] = chunk[: end - offset]
        _overlay_pending(patch, offset, pending_ops)
        data[offset:end] = patch
        report.blocks_repaired += count
        client.obs.inc("recovery.blocks.repaired", count)

    repaired = bytes(data)
    if client.checksums.mismatched_blocks(path, repaired):
        return _full_reconstruction(
            client, path, content, pending_ops, on_server, now, report
        )
    client.inner.write_file(path, repaired)
    return True


def _full_reconstruction(
    client,
    path: str,
    content: bytes,
    pending_ops: List[_PendingOp],
    on_server: bool,
    now: float,
    report: RecoveryReport,
) -> bool:
    """Rebuild the whole file: cloud base + pending intents, in order.

    The expensive path (downlink = file size), taken only when block-wise
    repair cannot converge. Crucially it still *replays the journaled
    intents on top* of the cloud base instead of adopting the cloud copy
    verbatim — the crash must never silently roll back dirty data. If
    even this disagrees with the durable checksums, the candidate with
    fewer damaged blocks wins and the checksums are re-indexed to it
    (best effort: the durable record was incomplete).
    """
    from repro.delta.patch import apply_delta
    from repro.net.messages import RangeRequest, RangeReply

    report.full_file_fallbacks += 1
    client.obs.inc("recovery.full_file_fallbacks")
    if on_server:
        size = client.server.store.lookup(path).size
        request = RangeRequest(path=path, offset=0, length=size)
        client.channel.upload(request, now)
        chunk, version = client.server.file_range(path, 0, size)
        client.channel.download(
            RangeReply(path=path, offset=0, data=chunk, version=version), now
        )
        report.bytes_downloaded += len(chunk)
        client.obs.inc("recovery.bytes.downloaded", len(chunk))
        rebuilt = bytearray(chunk)
    else:
        rebuilt = bytearray()
    for kind, arg in pending_ops:
        if kind == "trunc":
            length = int(arg)  # type: ignore[arg-type]
            if length <= len(rebuilt):
                del rebuilt[length:]
            else:
                rebuilt.extend(b"\x00" * (length - len(rebuilt)))
        elif kind == "write":
            for run_offset, run_data in arg:  # type: ignore[union-attr]
                if run_offset + len(run_data) > len(rebuilt):
                    rebuilt.extend(
                        b"\x00" * (run_offset + len(run_data) - len(rebuilt))
                    )
                rebuilt[run_offset : run_offset + len(run_data)] = run_data
        elif kind == "delta":
            base = bytes(rebuilt)
            try:
                rebuilt = bytearray(apply_delta(base, arg.delta))
            except Exception:
                pass  # keep the base; the checksum contest below decides

    candidate = bytes(rebuilt)
    bad_candidate = client.checksums.mismatched_blocks(path, candidate)
    if not bad_candidate:
        client.inner.write_file(path, candidate)
        return False
    # Neither source is clean: keep whichever disagrees with the durable
    # record the least, and re-index so the store describes reality again.
    bad_content = client.checksums.mismatched_blocks(path, content)
    winner = candidate if len(bad_candidate) <= len(bad_content) else content
    client.inner.write_file(path, winner)
    client.checksums.reindex(path, winner)
    return False


def _contiguous_runs(blocks: List[int]) -> List[Tuple[int, int]]:
    """Collapse sorted block indices into (start, count) runs."""
    runs: List[Tuple[int, int]] = []
    for index in blocks:
        if runs and index == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((index, 1))
    return runs
