"""The Relation Table (paper Section III-A, Table I).

The table tracks filename transformations so transactional updates can be
recognized at runtime. Each entry is ``src -> dst`` meaning: *the file once
named ``src`` is currently preserved under the name ``dst``* (its old
version). Invariants: ``src`` and ``dst`` named the same file, and ``dst``
exists while ``src`` does not.

Table I's rules:

==========================  ==================================================
Create a relation entry     1. a ``rename src dst`` operation
                            2. an ``unlink path`` operation (the file is
                               preserved in a tmp area first)
Remove a relation entry     1. it triggered delta encoding
                            2. timeout (~2 s) without triggering
Trigger delta encoding      1. a file is created whose name equals an
                               entry's ``src``
                            2. the to-be-created name already exists
                               (handled by the client, not the table)
==========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import NULL_OBS, Observability


@dataclass
class RelationEntry:
    """One ``src -> dst`` tuple with its creation time.

    ``origin`` records which operation created the entry (``rename`` or
    ``unlink``) — unlink-created entries own their preserved tmp file, which
    must be garbage-collected when the entry dies untriggered.
    """

    src: str
    dst: str
    created_at: float
    origin: str  # "rename" | "unlink"


class RelationTable:
    """Tracks live relations and answers trigger queries.

    One entry per ``src`` name: a newer transformation of the same name
    supersedes the older one (the old preserved version is superseded too,
    and its entry is returned for cleanup).
    """

    def __init__(self, timeout: float = 2.0, *, obs: Observability = NULL_OBS):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.obs = obs
        self._entries: Dict[str, RelationEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[RelationEntry]:
        """Snapshot of live entries (for inspection/tests)."""
        return list(self._entries.values())

    def record_rename(self, src: str, dst: str, now: float) -> Optional[RelationEntry]:
        """A ``rename src dst`` happened: remember where the old version went.

        Returns the entry this rename *superseded* (same src), if any, so
        the caller can clean up its preserved file.
        """
        superseded = self._entries.get(src)
        self._entries[src] = RelationEntry(
            src=src, dst=dst, created_at=now, origin="rename"
        )
        self._note_insert(src, dst, "rename", superseded)
        return superseded

    def record_unlink(self, path: str, preserved_at: str, now: float) -> Optional[RelationEntry]:
        """An ``unlink path`` happened; the file was parked at ``preserved_at``."""
        superseded = self._entries.get(path)
        self._entries[path] = RelationEntry(
            src=path, dst=preserved_at, created_at=now, origin="unlink"
        )
        self._note_insert(path, preserved_at, "unlink", superseded)
        return superseded

    def restore(self, entry: RelationEntry) -> None:
        """Re-admit a journaled entry during crash recovery.

        The caller has already checked the ``dst exists`` invariant and
        refreshed ``created_at``; this is a plain insert that keeps the
        normal observability flowing.
        """
        self._entries[entry.src] = entry
        self._note_insert(entry.src, entry.dst, entry.origin, None)

    def match_created(
        self,
        path: str,
        now: float,
        *,
        stale_out: Optional[List[RelationEntry]] = None,
    ) -> Optional[RelationEntry]:
        """A file named ``path`` is being created — does it trigger encoding?

        Returns (and removes — Table I rule "triggered delta encoding") the
        matching live entry, or ``None``. Expired entries never match; one
        found here is evicted on the spot and appended to ``stale_out`` so
        the caller can garbage-collect its preserved tmp file immediately
        instead of leaking it until the next ``expire()`` pass.
        """
        entry = self._entries.get(path)
        if entry is None:
            return None
        if now - entry.created_at > self.timeout:
            del self._entries[path]
            if self.obs.enabled:
                self.obs.inc("relation.entries.stale")
                self.obs.event(
                    "relation.expire",
                    src=entry.src,
                    dst=entry.dst,
                    origin=entry.origin,
                )
                self.obs.set_gauge("relation.size", len(self._entries))
            if stale_out is not None:
                stale_out.append(entry)
            return None
        del self._entries[path]
        if self.obs.enabled:
            self.obs.inc("relation.entries.matched")
            self.obs.event(
                "relation.match",
                src=entry.src,
                dst=entry.dst,
                origin=entry.origin,
                age=now - entry.created_at,
            )
            self.obs.set_gauge("relation.size", len(self._entries))
        return entry

    def invalidate_dst(self, path: str) -> List[RelationEntry]:
        """The preserved copy at ``path`` was destroyed; drop entries on it.

        Keeps the ``dst exists`` invariant when an application reuses the
        preserved name (e.g. writes a fresh temp file over it).
        """
        doomed = [e for e in self._entries.values() if e.dst == path]
        for entry in doomed:
            del self._entries[entry.src]
        if self.obs.enabled and doomed:
            self.obs.inc("relation.entries.invalidated", len(doomed))
            for entry in doomed:
                self.obs.event("relation.invalidate", src=entry.src, dst=entry.dst)
            self.obs.set_gauge("relation.size", len(self._entries))
        return doomed

    def expire(self, now: float) -> List[RelationEntry]:
        """Remove and return all entries older than the timeout.

        The caller garbage-collects the preserved tmp files of
        unlink-origin entries.
        """
        expired = [
            e for e in self._entries.values() if now - e.created_at > self.timeout
        ]
        for entry in expired:
            del self._entries[entry.src]
        if self.obs.enabled and expired:
            self.obs.inc("relation.entries.expired", len(expired))
            for entry in expired:
                self.obs.event(
                    "relation.expire",
                    src=entry.src,
                    dst=entry.dst,
                    origin=entry.origin,
                )
            self.obs.set_gauge("relation.size", len(self._entries))
        return expired

    def _note_insert(
        self, src: str, dst: str, origin: str, superseded: Optional[RelationEntry]
    ) -> None:
        if not self.obs.enabled:
            return
        self.obs.inc("relation.entries.inserted", origin=origin)
        if superseded is not None:
            self.obs.inc("relation.entries.superseded")
        self.obs.event("relation.insert", src=src, dst=dst, origin=origin)
        self.obs.set_gauge("relation.size", len(self._entries))
