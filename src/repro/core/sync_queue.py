"""The Sync Queue (paper Sections III-B and III-E).

A FIFO of pending upload nodes with three twists:

1. **Write nodes** — all intercepted writes to one file coalesce into a
   single mutable node (found through a hash table). A write node is
   *packed* (frozen) when its file's state changes: close, rename, unlink,
   truncate — or when it comes due for upload.
2. **Delta replacement** — when the Relation Table triggers delta encoding,
   the file's write node(s) are removed from the queue and the (much
   smaller) delta node is appended instead.
3. **Backindex** — removing or mutating a non-tail node would violate the
   FIFO order that gives causal consistency for free. Each such surgery
   records a *backindex span* from the disturbed position to the current
   tail; all nodes inside a span must be applied transactionally on the
   cloud, and interleaved spans are merged (Section III-E, Figure 7).

Nodes are uploaded after a short delay (Figure 6: ~3 s) so that coalescing
and delta replacement get their window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bytesutil import merge_ranges
from repro.common.errors import PackedNodeError
from repro.common.version import VersionStamp
from repro.delta.format import Delta
from repro.obs import NULL_OBS, Observability


@dataclass
class QueueNode:
    """Base of all Sync Queue nodes."""

    path: str
    seq: int = -1
    enqueue_time: float = 0.0
    # When the node first joined the queue. ``enqueue_time`` is refreshed on
    # every coalesced write (the debounce), so it cannot answer "how long
    # did this node's coalescing window last" — this can.
    created_time: float = 0.0
    base_version: Optional[VersionStamp] = None
    new_version: Optional[VersionStamp] = None

    def payload_bytes(self) -> int:
        """Approximate bytes this node will put on the wire."""
        return 0


@dataclass
class WriteNode(QueueNode):
    """Coalesced intercepted writes to one file (NFS-like file RPC)."""

    writes: List[Tuple[int, bytes]] = field(default_factory=list)
    packed: bool = False

    def add_write(self, offset: int, data: bytes) -> None:
        """Attach one write; only legal while unpacked."""
        if self.packed:
            raise PackedNodeError(
                f"cannot append writes to packed node seq={self.seq} "
                f"({self.path!r})",
                path=self.path,
                seq=self.seq,
            )
        self.writes.append((offset, data))

    def pack(self) -> None:
        """Freeze the node (file state changed, or upload is imminent)."""
        self.packed = True

    def merged_writes(self) -> List[Tuple[int, bytes]]:
        """Writes coalesced for upload: overlapping/adjacent runs merged.

        Later writes win where ranges overlap — replay order is preserved
        by materializing each merged range in write order.
        """
        if not self.writes:
            return []
        spans = merge_ranges([(off, len(d)) for off, d in self.writes])
        out: List[Tuple[int, bytes]] = []
        for span_off, span_len in spans:
            buffer = bytearray(span_len)
            for offset, data in self.writes:
                rel = offset - span_off
                if rel + len(data) <= 0 or rel >= span_len:
                    continue
                buffer[max(rel, 0) : rel + len(data)] = data[
                    max(-rel, 0) :
                ]
            out.append((span_off, bytes(buffer)))
        return out

    def payload_bytes(self) -> int:
        return sum(len(d) for _, d in self.writes)


@dataclass
class TruncateNode(QueueNode):
    """A truncate to be replayed on the cloud."""

    length: int = 0


@dataclass
class DeltaNode(QueueNode):
    """A delta produced by triggered (bitwise) delta encoding.

    Carries two base references: ``base_version`` is the version the target
    path is expected to hold when the node applies (conflict detection —
    inherited from the write node the delta replaced), while
    ``content_base`` names the old-version snapshot the delta's COPY
    instructions read from (the preserved pre-update content).
    """

    delta: Delta = field(default_factory=Delta)
    content_base: Optional[VersionStamp] = None

    def payload_bytes(self) -> int:
        return self.delta.wire_size()


@dataclass
class MetaNode(QueueNode):
    """A namespace operation: create/rename/link/unlink/mkdir/rmdir."""

    kind: str = ""
    dest: Optional[str] = None


@dataclass
class UploadUnit:
    """What the pump hands to the network: one node, or an atomic group."""

    nodes: List[QueueNode]
    transactional: bool

    @property
    def single(self) -> QueueNode:
        if len(self.nodes) != 1:
            raise ValueError("not a single-node unit")
        return self.nodes[0]


class SyncQueue:
    """The queue itself. Not thread-safe by design — the reproduction is
    single-threaded and deterministic; the paper's lock-free MPSC structure
    is a C-implementation concern, not an algorithmic one (see DESIGN.md).
    """

    def __init__(
        self,
        *,
        upload_delay: float = 3.0,
        capacity: int = 4096,
        max_coalesce_delay: Optional[float] = None,
        obs: Observability = NULL_OBS,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.upload_delay = upload_delay
        # The debounce refreshes ``enqueue_time`` on every coalesced write,
        # so a continuously-written hot file would keep the queue head
        # un-due forever and starve everything behind it. ``created_time``
        # clamps the coalescing window: a node always comes due at most
        # ``max_coalesce_delay`` after it first joined (default 4x the
        # upload delay).
        self.max_coalesce_delay = (
            max_coalesce_delay
            if max_coalesce_delay is not None
            else 4.0 * upload_delay
        )
        self.capacity = capacity
        self.obs = obs
        self._nodes: List[QueueNode] = []  # live nodes, FIFO by seq
        self._active_writes: Dict[str, WriteNode] = {}  # the hash table
        self._spans: List[Tuple[int, int]] = []  # merged backindex spans
        self._next_seq = 0
        # Real "now" during drain_all, where next_unit runs with a
        # far-future clock that would corrupt wait-time telemetry.
        self._telemetry_now: Optional[float] = None

    # -- enqueue side ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def full(self) -> bool:
        """Back-pressure signal (Table III: "Sync Queue becomes full")."""
        return len(self._nodes) >= self.capacity

    def enqueue(self, node: QueueNode, now: float) -> QueueNode:
        """Append a node at the tail."""
        node.seq = self._next_seq
        self._next_seq += 1
        node.enqueue_time = now
        node.created_time = now
        self._nodes.append(node)
        if isinstance(node, WriteNode) and not node.packed:
            self._active_writes[node.path] = node
        if self.obs.enabled:
            kind = type(node).__name__
            self.obs.inc("queue.nodes.created", kind=kind)
            self.obs.event(
                "queue.node.created", path=node.path, kind=kind, seq=node.seq
            )
            self._update_gauges()
        return node

    def restore(self, node: QueueNode, now: float) -> QueueNode:
        """Re-admit a journaled node during crash recovery.

        The node gets a fresh seq (journal replay preserves relative order
        by re-admitting in old-seq order) and enters *packed*: its
        coalescing window ended when the process died, and post-recovery
        writes to the same path must open a fresh node rather than mutate
        replayed history.
        """
        if isinstance(node, WriteNode):
            node.packed = True
        return self.enqueue(node, now)

    def note_coalesced(self, node: WriteNode, offset: int, nbytes: int) -> None:
        """Record that a write was absorbed into an active node (telemetry)."""
        if node.packed:
            raise PackedNodeError(
                f"coalesced a write into packed node seq={node.seq} "
                f"({node.path!r})",
                path=node.path,
                seq=node.seq,
            )
        if self.obs.enabled:
            self.obs.inc("queue.nodes.coalesced")
            self.obs.event(
                "queue.node.coalesced",
                path=node.path,
                seq=node.seq,
                offset=offset,
                bytes=nbytes,
            )
            self._update_gauges()

    def active_write_node(self, path: str) -> Optional[WriteNode]:
        """The unpacked write node for ``path``, if any (hash-table lookup)."""
        return self._active_writes.get(path)

    def pack(self, path: str) -> Optional[WriteNode]:
        """Pack ``path``'s active write node; returns it if one existed.

        Called whenever the file's state changes (close/rename/delete/
        truncate) so a recreated file with the same name gets a fresh node
        (Section III-B's corruption scenario).
        """
        node = self._active_writes.pop(path, None)
        if node is not None:
            node.pack()
            if self.obs.enabled:
                self.obs.inc("queue.nodes.packed")
                self.obs.event(
                    "queue.node.packed",
                    path=node.path,
                    seq=node.seq,
                    writes=len(node.writes),
                    payload_bytes=node.payload_bytes(),
                )
        return node

    def pending_nodes(self, path: str) -> List[QueueNode]:
        """All queued nodes for ``path`` in FIFO order."""
        return [n for n in self._nodes if n.path == path]

    def nodes(self) -> List[QueueNode]:
        """Snapshot of all live nodes in FIFO order."""
        return list(self._nodes)

    # -- node surgery (the backindex-generating operations) ----------------

    def replace_with_delta(
        self, doomed: Sequence[QueueNode], delta_node: "DeltaNode", now: float
    ) -> DeltaNode:
        """Delta replacement: remove ``doomed``, append the delta at the tail.

        Records the backindex span from the earliest removed position to the
        delta node — the delta logically *is* those writes, so everything
        between must apply transactionally with it (Figure 7).
        """
        if self.obs.enabled and doomed:
            self.obs.inc("queue.nodes.replaced_by_delta", len(doomed))
            self.obs.event(
                "queue.node.replaced_by_delta",
                path=delta_node.path,
                replaced_seqs=[n.seq for n in doomed],
                delta_seq=self._next_seq,
                delta_bytes=delta_node.payload_bytes(),
                replaced_bytes=sum(n.payload_bytes() for n in doomed),
            )
        self._remove(doomed)
        self.enqueue(delta_node, now)
        if doomed:
            self._add_span(min(n.seq for n in doomed), delta_node.seq)
        return delta_node

    def cancel_nodes(self, doomed: Sequence[QueueNode]) -> None:
        """Drop never-uploaded nodes (e.g. create+writes of a deleted file).

        The hole left behind gets a backindex span to the current tail so
        the cloud never observes a prefix that skips the removed effects
        (the create-a/b/c-delete-a example of Section III-E).
        """
        if not doomed:
            return
        if self.obs.enabled:
            self.obs.inc("queue.nodes.cancelled", len(doomed))
            for node in doomed:
                self.obs.event(
                    "queue.node.cancelled",
                    path=node.path,
                    seq=node.seq,
                    kind=type(node).__name__,
                )
        first = min(n.seq for n in doomed)
        self._remove(doomed)
        if self._nodes and self._nodes[-1].seq > first:
            covered = [n for n in self._nodes if n.seq > first]
            if covered:
                self._add_span(covered[0].seq, self._nodes[-1].seq)
        if self.obs.enabled:
            self._update_gauges()

    def _remove(self, doomed: Sequence[QueueNode]) -> None:
        doomed_seqs = {n.seq for n in doomed}
        self._nodes = [n for n in self._nodes if n.seq not in doomed_seqs]
        for node in doomed:
            active = self._active_writes.get(node.path)
            if active is node:
                del self._active_writes[node.path]

    def note_mutation(self, node: QueueNode) -> None:
        """A non-tail node was modified in place; record its span.

        Used when writes batch onto an older write node while newer nodes
        already sit behind it (the Figure 7 situation).
        """
        if self._nodes and node.seq < self._nodes[-1].seq:
            self._add_span(node.seq, self._nodes[-1].seq)

    def _add_span(self, start: int, end: int) -> None:
        if end < start:
            return
        self.obs.inc("queue.spans.recorded")
        self._spans.append((start, end))
        self._spans.sort()
        merged = [self._spans[0]]
        for s, e in self._spans[1:]:
            ls, le = merged[-1]
            if s <= le:
                merged[-1] = (ls, max(le, e))
            else:
                merged.append((s, e))
        self._spans = merged

    def spans(self) -> List[Tuple[int, int]]:
        """Current merged backindex spans (for inspection/tests)."""
        return list(self._spans)

    # -- upload side -------------------------------------------------------

    def next_unit(self, now: float) -> Optional[UploadUnit]:
        """The next FIFO upload unit whose delay has elapsed, or ``None``.

        A node inside a backindex span only ships when every live node of
        the span is due, and then the whole span ships as one transactional
        unit. FIFO order is never violated: if the head isn't ready,
        nothing ships.
        """
        if not self._nodes:
            return None
        head = self._nodes[0]
        span = self._span_containing(head.seq)
        if span is None:
            if not self._due(head, now):
                return None
            self._nodes.pop(0)
            if isinstance(head, WriteNode):
                self._pack_for_upload(head)
            if self.obs.enabled:
                self._note_shipped([head], now, transactional=False)
            return UploadUnit(nodes=[head], transactional=False)

        start, end = span
        members = [n for n in self._nodes if start <= n.seq <= end]
        if not members:
            self._spans.remove(span)
            return self.next_unit(now)
        if not all(self._due(n, now) for n in members):
            return None
        member_seqs = {n.seq for n in members}
        self._nodes = [n for n in self._nodes if n.seq not in member_seqs]
        self._spans.remove(span)
        for node in members:
            if isinstance(node, WriteNode):
                self._pack_for_upload(node)
        if self.obs.enabled:
            self.obs.inc("queue.units.transactional")
            self._note_shipped(members, now, transactional=True)
        return UploadUnit(nodes=members, transactional=True)

    def drain_due(self, now: float) -> List[UploadUnit]:
        """All currently-due upload units, collected in one queue sweep.

        Semantically identical to calling :meth:`next_unit` until it
        returns ``None`` — same FIFO and transactional-span rules, same
        obs events in the same order — but the backing list is rebuilt
        once per wakeup instead of once per shipped node, so a deep
        queue drains in O(n) rather than O(n²). This is what the client
        pump calls.
        """
        units: List[UploadUnit] = []
        nodes = self._nodes
        total = len(nodes)
        i = 0
        while i < total:
            head = nodes[i]
            span = self._span_containing(head.seq)
            if span is None:
                if not self._due(head, now):
                    break
                i += 1
                if isinstance(head, WriteNode):
                    self._pack_for_upload(head)
                unit = UploadUnit(nodes=[head], transactional=False)
            else:
                # Seqs are FIFO-increasing, so a span's live members are a
                # contiguous run starting at the head — no full-list scan.
                start, end = span
                j = i
                while j < total and nodes[j].seq <= end:
                    j += 1
                members = nodes[i:j]
                if not all(self._due(m, now) for m in members):
                    break
                i = j
                self._spans.remove(span)
                for member in members:
                    if isinstance(member, WriteNode):
                        self._pack_for_upload(member)
                if self.obs.enabled:
                    self.obs.inc("queue.units.transactional")
                unit = UploadUnit(nodes=members, transactional=True)
            if self.obs.enabled:
                self._note_shipped(unit.nodes, now, transactional=unit.transactional)
            units.append(unit)
        if i:
            self._nodes = nodes[i:]
            if self.obs.enabled:
                self._update_gauges()
        return units

    def drain_all(self, now: float) -> List[UploadUnit]:
        """Ship everything regardless of delay (shutdown / final flush)."""
        far_future = now + self.upload_delay + 1e9
        self._telemetry_now = now
        try:
            return self.drain_due(far_future)
        finally:
            self._telemetry_now = None

    def queued_bytes(self) -> int:
        """Total payload bytes waiting (back-pressure metric)."""
        return sum(n.payload_bytes() for n in self._nodes)

    # -- internals ---------------------------------------------------------

    def _due(self, node: QueueNode, now: float) -> bool:
        return (
            now - node.enqueue_time >= self.upload_delay
            or now - node.created_time >= self.max_coalesce_delay
        )

    def _note_shipped(
        self, nodes: Sequence[QueueNode], now: float, *, transactional: bool
    ) -> None:
        if self._telemetry_now is not None:
            now = self._telemetry_now
        self.obs.inc("queue.nodes.shipped", len(nodes))
        for node in nodes:
            payload = node.payload_bytes()
            self.obs.observe("queue.node.payload_bytes", payload)
            self.obs.observe(
                "queue.node.wait_time", max(0.0, now - node.enqueue_time)
            )
            self.obs.event(
                "queue.node.shipped",
                path=node.path,
                seq=node.seq,
                kind=type(node).__name__,
                payload_bytes=payload,
                transactional=transactional,
            )
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.obs.set_gauge("queue.depth", len(self._nodes))
        self.obs.set_gauge("queue.bytes.queued", self.queued_bytes())

    def _span_containing(self, seq: int) -> Optional[Tuple[int, int]]:
        for span in self._spans:
            if span[0] <= seq <= span[1]:
                return span
        return None

    def _pack_for_upload(self, node: WriteNode) -> None:
        if not node.packed:
            node.pack()
            if self.obs.enabled:
                self.obs.inc("queue.nodes.packed")
                self.obs.event(
                    "queue.node.packed",
                    path=node.path,
                    seq=node.seq,
                    writes=len(node.writes),
                    payload_bytes=node.payload_bytes(),
                )
        if self._active_writes.get(node.path) is node:
            del self._active_writes[node.path]
