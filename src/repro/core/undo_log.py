"""Physical undo logging for in-place updates (paper Section III-A, end).

When an in-place write overwrites existing data, DeltaCFS copies the old
bytes out *before* the write. If the accumulated writes end up covering a
large fraction of the file (> ``inplace_delta_threshold``), the old version
can be reconstructed locally and delta encoding applied on top — catching
the case where "in-place update changes a large portion of a file and delta
encoding could further compress the changes."

The paper notes this is nearly free: the overwritten data is already in the
page cache, so no disk IO is added. We charge only a memcpy-rate cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.bytesutil import changed_fraction
from repro.cost.meter import CostMeter, NULL_METER


@dataclass
class _UndoRecord:
    """Old bytes that a write displaced."""

    offset: int
    old_data: bytes = field(repr=False)


@dataclass
class FileUndoLog:
    """Undo records for one file since the last sync point."""

    base_size: int
    records: List[_UndoRecord] = field(default_factory=list)
    written: List[Tuple[int, int]] = field(default_factory=list)

    def changed_fraction(self) -> float:
        """Fraction of the *base* file overwritten by recorded writes.

        Appends beyond the old end do not count — there is no old data to
        delta against, so a freshly-appended file must not look "mostly
        changed". An empty base yields 0 for the same reason.
        """
        if self.base_size <= 0:
            return 0.0
        clipped = [
            (off, min(off + length, self.base_size) - off)
            for off, length in self.written
            if off < self.base_size
        ]
        return changed_fraction(clipped, self.base_size)


class UndoLog:
    """Per-file undo logs keyed by path."""

    def __init__(self, meter: CostMeter = NULL_METER):
        self.meter = meter
        self._files: Dict[str, FileUndoLog] = {}

    def begin(self, path: str, current_size: int) -> None:
        """Open a log for ``path`` if none is active."""
        if path not in self._files:
            self._files[path] = FileUndoLog(base_size=current_size)

    def record_write(
        self, path: str, offset: int, length: int, old_slice: bytes, file_size: int
    ) -> None:
        """Log the bytes a write is about to displace.

        ``old_slice`` is the pre-write content of ``[offset, offset+length)``
        clipped to the old file end — appended regions have no old data.
        ``file_size`` is the file size before the write (used to open the
        log on first touch).
        """
        log = self._files.get(path)
        if log is None:
            self.begin(path, file_size)
            log = self._files[path]
        if old_slice:
            self.meter.charge_bytes("write_io", len(old_slice))  # in-memory copy-out
            log.records.append(_UndoRecord(offset=offset, old_data=old_slice))
        log.written.append((offset, length))

    def changed_fraction(self, path: str) -> float:
        """How much of the base file the logged writes cover (0 if no log)."""
        log = self._files.get(path)
        return log.changed_fraction() if log is not None else 0.0

    def reconstruct_old(self, path: str, current_content: bytes) -> bytes:
        """Rebuild the pre-update version from current content + undo data.

        Records are replayed newest-first so the oldest preserved bytes for
        any region win — they are the true base content.
        """
        log = self._files.get(path)
        if log is None:
            return current_content
        data = bytearray(current_content)
        if len(data) < log.base_size:
            data.extend(b"\x00" * (log.base_size - len(data)))
        for record in reversed(log.records):
            data[record.offset : record.offset + len(record.old_data)] = record.old_data
        return bytes(data[: log.base_size])

    def restore(
        self, path: str, base_size: int, records: List[Tuple[int, int, bytes]]
    ) -> None:
        """Rebuild one file's log from journaled ``(offset, length, old)``.

        Crash recovery re-admits the journaled spans in their original
        order so ``reconstruct_old`` replays them with the same
        oldest-bytes-win semantics.
        """
        log = FileUndoLog(base_size=base_size)
        for offset, length, old_data in records:
            if old_data:
                log.records.append(_UndoRecord(offset=offset, old_data=old_data))
            log.written.append((offset, length))
        self._files[path] = log

    def clear(self, path: str) -> None:
        """Drop the log after a sync point (node packed and uploaded)."""
        self._files.pop(path, None)

    def has_log(self, path: str) -> bool:
        """Whether any undo data is held for ``path``."""
        return path in self._files
