"""Re-export shim: the version module lives in :mod:`repro.common.version`
(it is a leaf shared by the wire protocol, which must not import the core
package to avoid a cycle). The canonical import path for users remains
``repro.core.version``."""

from repro.common.version import GENESIS, VersionCounter, VersionStamp

__all__ = ["GENESIS", "VersionCounter", "VersionStamp"]
