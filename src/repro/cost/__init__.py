"""Deterministic CPU-cost accounting.

The paper reports client/server CPU in "CPU ticks" measured on EC2 and a
Galaxy Note3. We cannot measure real hardware, so every algorithm in this
repository *meters the work it actually performs* (bytes rolled, blocks
hashed, bytes compared, bytes pushed through the network stack) against a
calibrated tick-per-byte profile. Because each sync solution performs
categorically different amounts of work per trace, the paper's relative
shape (Dropbox >> Seafile >> DeltaCFS on client CPU, etc.) emerges from the
metering rather than being hard-coded.
"""

from repro.cost.meter import CostMeter, NULL_METER
from repro.cost.profile import CostProfile, PC_PROFILE, MOBILE_PROFILE

__all__ = [
    "CostMeter",
    "NULL_METER",
    "CostProfile",
    "PC_PROFILE",
    "MOBILE_PROFILE",
]
