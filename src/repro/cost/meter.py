"""The cost meter: an accumulator every metered algorithm charges against."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.cost.profile import CostProfile, PC_PROFILE


class CostMeter:
    """Accumulates CPU ticks by category.

    One meter per principal (client or server). Algorithms call
    :meth:`charge_bytes` / :meth:`charge_ops` as they work; experiment
    harnesses read :attr:`total` at the end, which plays the role of the
    "CPU tick" columns of Table II.
    """

    def __init__(self, profile: CostProfile = PC_PROFILE):
        self.profile = profile
        self._ticks: Dict[str, float] = defaultdict(float)
        self._bytes: Dict[str, int] = defaultdict(int)

    def charge_bytes(self, category: str, nbytes: int) -> float:
        """Charge per-byte work; returns the ticks added."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        ticks = self.profile.per_byte(category, nbytes)
        self._ticks[category] += ticks
        self._bytes[category] += nbytes
        return ticks

    def charge_ops(self, count: int = 1) -> float:
        """Charge fixed per-operation overhead (interception, syscall)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        ticks = self.profile.op_overhead * count
        self._ticks["op_overhead"] += ticks
        return ticks

    @property
    def total(self) -> float:
        """Total ticks across all categories."""
        return sum(self._ticks.values())

    @property
    def by_category(self) -> Dict[str, float]:
        """Ticks per category (copy)."""
        return dict(self._ticks)

    @property
    def bytes_by_category(self) -> Dict[str, int]:
        """Bytes of work per per-byte category (copy)."""
        return dict(self._bytes)

    def reset(self) -> None:
        """Zero all accumulators, keeping the profile."""
        self._ticks.clear()
        self._bytes.clear()

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's charges into this one."""
        for category, ticks in other._ticks.items():
            self._ticks[category] += ticks
        for category, nbytes in other._bytes.items():
            self._bytes[category] += nbytes

    def __repr__(self) -> str:
        return f"CostMeter(profile={self.profile.name!r}, total={self.total:.1f})"


class _NullMeter(CostMeter):
    """A meter that discards all charges — for callers that don't measure."""

    def charge_bytes(self, category: str, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return 0.0

    def charge_ops(self, count: int = 1) -> float:
        return 0.0


NULL_METER = _NullMeter()
