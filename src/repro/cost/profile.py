"""Tick-per-unit cost profiles.

Weights are expressed in ticks per megabyte (or per operation) and are
calibrated so the magnitudes of Table II are in a plausible range. Absolute
values are not meaningful — only ratios between solutions are, and those are
driven by how much work each algorithm performs.

Rationale for the relative weights:

- ``strong_checksum`` (MD5) is the most expensive per-byte primitive; the
  whole point of DeltaCFS's bitwise optimization is avoiding it.
- ``rolling_checksum`` (Adler-like) is a few adds/subtracts per byte.
- ``bitwise_compare`` is a memcmp — the cheapest way to compare data.
- ``cdc_chunking`` (gear hash) is cheaper than rolling+strong, which is why
  Seafile's client CPU sits well below Dropbox's.
- ``compress``/``dedup_hash`` model Dropbox's extra per-upload work
  (Section IV-B: 4 MB deduplication and network compression).
- ``network_send``/``network_recv`` model protocol/TLS stack CPU, charged
  per byte moved; ``encrypt`` models OpenSSL on the payload.

The mobile profile scales CPU-bound work up (a Note3 core does far less per
tick than a Xeon) and reflects the paper's observation that low WAN
bandwidth keeps the device busy transmitting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class CostProfile:
    """Tick costs per primitive. Per-byte fields are ticks per megabyte."""

    name: str = "pc"
    rolling_checksum: float = 2.0
    strong_checksum: float = 8.0
    bitwise_compare: float = 0.6
    cdc_chunking: float = 1.6
    scan_read: float = 0.5
    write_io: float = 0.3
    compress: float = 3.0
    encrypt: float = 1.0
    dedup_hash: float = 5.0
    network_send: float = 0.8
    network_recv: float = 0.8
    apply_delta: float = 0.5
    op_overhead: float = 0.02  # ticks per intercepted file operation

    def per_byte(self, field: str, nbytes: int) -> float:
        """Ticks charged for ``nbytes`` of work in category ``field``."""
        return getattr(self, field) * (nbytes / _MB)

    def scaled(self, factor: float, name: str) -> "CostProfile":
        """A profile with every per-unit cost multiplied by ``factor``."""
        fields = {
            f: getattr(self, f) * factor
            for f in (
                "rolling_checksum",
                "strong_checksum",
                "bitwise_compare",
                "cdc_chunking",
                "scan_read",
                "write_io",
                "compress",
                "encrypt",
                "dedup_hash",
                "network_send",
                "network_recv",
                "apply_delta",
                "op_overhead",
            )
        }
        return replace(self, name=name, **fields)


PC_PROFILE = CostProfile(name="pc")

# A Galaxy Note3 core retires far fewer operations per tick than a Xeon
# E5-2676, and the paper notes that on mobile the whole experiment is
# dominated by CPU-bound transmission. A single scale factor keeps the
# PC-vs-mobile relationship simple and honest: same work, slower silicon.
MOBILE_PROFILE = PC_PROFILE.scaled(12.0, name="mobile")
