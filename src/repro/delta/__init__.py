"""Delta encoding: the rsync algorithm and DeltaCFS's local bitwise variant.

- :mod:`repro.delta.format` — the delta instruction stream (COPY/LITERAL)
  with a compact wire encoding.
- :mod:`repro.delta.rsync` — classic rsync: block signature of the old file,
  rolling-checksum scan of the new file, strong-checksum match confirmation.
- :mod:`repro.delta.bitwise` — the paper's optimization (Section III-A):
  when old and new versions are both local, candidate matches are confirmed
  by direct byte comparison, eliminating all MD5 work.
- :mod:`repro.delta.patch` — applying a delta to a base to reconstruct the
  new file (what the DeltaCFS server does).
"""

from repro.delta.format import Copy, Literal, Delta, DeltaOp
from repro.delta.rsync import compute_signature, compute_delta, rsync_delta
from repro.delta.bitwise import bitwise_delta
from repro.delta.patch import apply_delta

__all__ = [
    "Copy",
    "Literal",
    "Delta",
    "DeltaOp",
    "compute_signature",
    "compute_delta",
    "rsync_delta",
    "bitwise_delta",
    "apply_delta",
]
