"""Pluggable delta backends — the encoders the mechanism policy picks from.

DeltaCFS's core bet is *choosing* between file RPC and delta sync per
file. This module generalizes the encoding side of that choice: a
:class:`DeltaBackend` exposes the four hooks the client (and the
:mod:`repro.core.policy` cost model) needs —

- :meth:`~DeltaBackend.signature` — the base-file summary the scan matches
  against (what would cross the wire in a remote protocol);
- :meth:`~DeltaBackend.encode` — produce a :class:`~repro.delta.format.Delta`
  from old to new content, charging the meter for the modeled CPU;
- :meth:`~DeltaBackend.apply` — reconstruct the new content server-side;
- :meth:`~DeltaBackend.estimate_ticks` / :meth:`~DeltaBackend.estimate_wire_bytes`
  — closed-form cost estimates the online policy scores *without* running
  the encoder.

All backends emit the same :class:`~repro.delta.format.Delta` wire format
(Copy/Literal streams), so the server applies any of them with the one
:func:`~repro.delta.patch.apply_delta` path and the protocol does not grow
per-backend message types.

Registered implementations:

- ``bitwise`` — the paper's local path (rsync scan, memcmp confirmation,
  no strong checksums). The default, byte-identical to the pre-registry
  client behaviour.
- ``rsync`` — classic remote rsync (weak rolling + MD5 strong checksums).
  More CPU, but its signature is shippable — the shape a future
  server-assisted delta path needs.
- ``cdc-shingle`` — content-defined-chunking shingling per *Scalable
  String Reconciliation by Recursive Content-Dependent Shingling*
  (PAPERS.md): both versions are gear-hash chunked, matching chunks become
  ``Copy`` ops, and unmatched regions are re-shingled recursively at finer
  granularity. Offset-independent, so it tolerates insertions that slide
  the whole tail.

Add a backend by subclassing :class:`DeltaBackend` and calling
:func:`register_backend` (see docs/delta-backends.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cost.meter import CostMeter, NULL_METER
from repro.cost.profile import CostProfile
from repro.delta.format import Copy, Delta, Literal
from repro.delta.patch import apply_delta
from repro.delta.rsync import Signature, compute_delta, compute_signature

_MB = 1024.0 * 1024.0


class DeltaBackend:
    """Protocol (and partial default implementation) of one delta encoder.

    Subclasses must set :attr:`name` and implement :meth:`encode`; the
    other hooks have sensible defaults. Instances are stateless — one
    shared instance per backend serves every client.
    """

    #: registry key; also the value of ``DeltaCFSConfig.delta_backend``.
    name: str = ""

    def signature(
        self, base: bytes, block_size: int, *, meter: CostMeter = NULL_METER
    ) -> object:
        """Summary of ``base`` that a remote scan could match against.

        The default is the rsync weak-checksum signature; the CDC backend
        returns its chunk fingerprints instead.
        """
        return compute_signature(base, block_size, with_strong=False, meter=meter)

    def encode(
        self,
        old: bytes,
        new: bytes,
        block_size: int,
        *,
        meter: CostMeter = NULL_METER,
    ) -> Delta:
        """Delta from ``old`` to ``new``; charges modeled CPU to ``meter``."""
        raise NotImplementedError

    def apply(
        self, base: bytes, delta: Delta, *, meter: CostMeter = NULL_METER
    ) -> bytes:
        """Reconstruct the new content (the server side)."""
        return apply_delta(base, delta, meter=meter)

    def estimate_ticks(
        self, old_len: int, new_len: int, block_size: int, profile: CostProfile
    ) -> float:
        """Closed-form estimate of :meth:`encode`'s CPU ticks.

        Used by the cost-model policy to score backends without running
        them; it should track the meter charges the encoder actually makes
        to within a small factor.
        """
        raise NotImplementedError

    def estimate_wire_bytes(
        self, old_len: int, new_len: int, changed_bytes: int, block_size: int
    ) -> int:
        """Cold-start estimate of the encoded delta's wire size.

        ``changed_bytes`` is the write-pattern signal: how many bytes of
        the pending update actually touched new data (merged write
        extents). The default models literal-carried changed bytes plus
        per-block Copy overhead for the untouched remainder.
        """
        literal = min(max(changed_bytes, 0), new_len)
        copied = max(new_len - literal, 0)
        copy_ops = -(-copied // block_size) if copied else 0  # ceil div
        return 8 + literal + 4 + 4 * copy_ops


class BitwiseBackend(DeltaBackend):
    """The paper's local engine: rsync scan with memcmp confirmation.

    Both file versions are local whenever the Relation Table triggers, so
    strong checksums are replaced with bitwise comparison (Section III-A).
    """

    name = "bitwise"

    def encode(
        self,
        old: bytes,
        new: bytes,
        block_size: int,
        *,
        meter: CostMeter = NULL_METER,
    ) -> Delta:
        signature = compute_signature(old, block_size, with_strong=False, meter=meter)
        return compute_delta(signature, new, base=old, meter=meter)

    def estimate_ticks(
        self, old_len: int, new_len: int, block_size: int, profile: CostProfile
    ) -> float:
        # Rolling checksum over both versions + bitwise confirm of roughly
        # the matched portion (bounded by the new length).
        return (
            profile.rolling_checksum * ((old_len + new_len) / _MB)
            + profile.bitwise_compare * (new_len / _MB)
        )


class RsyncBackend(DeltaBackend):
    """Classic remote rsync: weak rolling + MD5 strong checksums.

    The expensive path DeltaCFS's bitwise engine avoids; registered so the
    policy sweep can quantify exactly what that optimization buys, and
    because its signature is what a server-assisted delta would ship.
    """

    name = "rsync"

    def signature(
        self, base: bytes, block_size: int, *, meter: CostMeter = NULL_METER
    ) -> Signature:
        return compute_signature(base, block_size, with_strong=True, meter=meter)

    def encode(
        self,
        old: bytes,
        new: bytes,
        block_size: int,
        *,
        meter: CostMeter = NULL_METER,
    ) -> Delta:
        signature = compute_signature(old, block_size, with_strong=True, meter=meter)
        return compute_delta(signature, new, base=None, meter=meter)

    def estimate_ticks(
        self, old_len: int, new_len: int, block_size: int, profile: CostProfile
    ) -> float:
        # Strong checksums over the old blocks *and* every candidate match
        # window of the new file dominate.
        return (
            profile.rolling_checksum * ((old_len + new_len) / _MB)
            + profile.strong_checksum * ((old_len + new_len) / _MB)
        )


class CDCShingleBackend(DeltaBackend):
    """Recursive content-dependent shingling over gear-hash CDC chunks.

    Level 0 chunks both versions at ``block_size`` average; chunks of the
    new file whose fingerprint appears in the old file become ``Copy`` ops
    (confirmed bytewise — matches stay exact even under hash collision).
    Runs of unmatched chunks are re-shingled at ``avg/4`` granularity,
    recursively, until the average chunk reaches ``_MIN_AVG`` — so a small
    edit inside a large chunk converges to a small literal instead of
    re-uploading the whole chunk (the Seafile failure mode, Section II-A).
    """

    name = "cdc-shingle"

    _MIN_AVG = 64
    _SHRINK = 4

    def signature(
        self, base: bytes, block_size: int, *, meter: CostMeter = NULL_METER
    ) -> object:
        from repro.chunking.cdc import cdc_chunks

        return cdc_chunks(base, max(block_size, self._MIN_AVG), meter=meter)

    def encode(
        self,
        old: bytes,
        new: bytes,
        block_size: int,
        *,
        meter: CostMeter = NULL_METER,
    ) -> Delta:
        avg = max(block_size, self._MIN_AVG)
        delta = Delta()
        self._shingle(old, new, 0, len(new), avg, delta, meter)
        return delta

    # -- internals ---------------------------------------------------------

    def _old_index(
        self, old: bytes, avg: int, meter: CostMeter
    ) -> Dict[bytes, Tuple[int, int]]:
        """First-occurrence fingerprint index of the old file at ``avg``."""
        from repro.chunking.cdc import cdc_chunks

        index: Dict[bytes, Tuple[int, int]] = {}
        for chunk in cdc_chunks(old, avg, meter=meter):
            index.setdefault(chunk.fingerprint, (chunk.offset, chunk.length))
        return index

    def _shingle(
        self,
        old: bytes,
        new: bytes,
        start: int,
        end: int,
        avg: int,
        delta: Delta,
        meter: CostMeter,
    ) -> None:
        """Shingle ``new[start:end]`` against ``old``, appending ops."""
        from repro.chunking.cdc import cdc_chunks

        region = new[start:end]
        if not region:
            return
        if not old or avg < self._MIN_AVG:
            delta.append(Literal(region))
            return
        index = self._old_index(old, avg, meter)
        # Unmatched spans are collected as (lo, hi) and recursed on at a
        # finer granularity, mirroring the recursive shingling scheme.
        pending: Optional[List[int]] = None  # [lo, hi) of the open miss run
        next_avg = avg // self._SHRINK

        def flush_miss() -> None:
            nonlocal pending
            if pending is None:
                return
            lo, hi = pending
            pending = None
            if next_avg >= self._MIN_AVG and hi - lo > next_avg:
                self._shingle(old, new, lo, hi, next_avg, delta, meter)
            else:
                delta.append(Literal(new[lo:hi]))

        for chunk in cdc_chunks(region, avg, meter=meter):
            abs_off = start + chunk.offset
            hit = index.get(chunk.fingerprint)
            if hit is not None:
                old_off, old_len = hit
                # Bitwise confirmation: a fingerprint collision must not
                # corrupt the reconstruction.
                meter.charge_bytes("bitwise_compare", old_len)
                if (
                    old_len == chunk.length
                    and old[old_off : old_off + old_len]
                    == new[abs_off : abs_off + chunk.length]
                ):
                    flush_miss()
                    delta.append(Copy(old_off, old_len))
                    continue
            if pending is None:
                pending = [abs_off, abs_off + chunk.length]
            else:
                pending[1] = abs_off + chunk.length
        flush_miss()

    def estimate_ticks(
        self, old_len: int, new_len: int, block_size: int, profile: CostProfile
    ) -> float:
        # One gear scan + fingerprint pass over each version at the top
        # level; recursion touches only differing regions, modeled here as
        # a constant small multiplier.
        scanned = (old_len + new_len) * 1.5
        return (
            profile.cdc_chunking * (scanned / _MB)
            + profile.dedup_hash * (scanned / _MB)
            + profile.bitwise_compare * (min(old_len, new_len) / _MB)
        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, DeltaBackend] = {}


def register_backend(backend: DeltaBackend) -> DeltaBackend:
    """Register a backend instance under its :attr:`~DeltaBackend.name`."""
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    if backend.name in _REGISTRY:
        raise ValueError(f"delta backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> DeltaBackend:
    """Look up a registered backend; raises ``ValueError`` with options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown delta backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_REGISTRY)


register_backend(BitwiseBackend())
register_backend(RsyncBackend())
register_backend(CDCShingleBackend())
