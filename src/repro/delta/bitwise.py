"""DeltaCFS's local delta encoding: rsync without strong checksums.

Paper, Section III-A: "when executing delta encoding we have both the
file's old version and new version locally ... we use bitwise comparison to
replace strong checksum. It can reduce a lot of computational cost of
rsync, as its checksums should be recalculated every time a file is
modified."

Concretely, versus classic rsync this path:

- skips MD5 over every block of the old file (signature side), and
- skips MD5 over every candidate window of the new file (scan side),

replacing both with memcmp-speed byte comparison of candidate windows only.
"""

from __future__ import annotations

from repro.cost.meter import CostMeter, NULL_METER
from repro.delta.format import Delta
from repro.delta.rsync import compute_delta, compute_signature


def bitwise_delta(
    old: bytes,
    new: bytes,
    block_size: int,
    *,
    meter: CostMeter = NULL_METER,
) -> Delta:
    """Delta from ``old`` to ``new`` using bitwise match confirmation.

    Both versions must be local (they are, whenever the Relation Table
    triggers encoding — the old version was preserved by rename/unlink or
    by the undo log).
    """
    signature = compute_signature(old, block_size, with_strong=False, meter=meter)
    return compute_delta(signature, new, base=old, meter=meter)
