"""The delta instruction stream and its wire encoding.

A delta is an ordered list of two instruction kinds:

- ``Copy(offset, length)`` — take bytes from the *base* (old) file;
- ``Literal(data)`` — bytes present only in the new file.

Replaying the instructions in order reconstructs the new file exactly.
The wire encoding is a simple tagged format (1-byte tag + two varints, or
1-byte tag + varint + payload); ``wire_size`` is what the network simulator
charges for transmitting a delta.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, List, Union

from repro.common import wire

_COPY_TAG = 0xC0
_LITERAL_TAG = 0x11


def _encode_varint(value: int) -> bytes:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


# A canonical unsigned 64-bit varint never needs more than 10 groups of 7
# bits; anything longer is an over-long encoding (a corruption/ambiguity
# vector — 0 can be spelled with arbitrarily many continuation bytes).
_MAX_VARINT_SHIFT = 63


def _decode_varint(buf: bytes, pos: int) -> tuple[int, int]:
    """Decode a varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ValueError("truncated varint")
        if shift > _MAX_VARINT_SHIFT:
            raise ValueError("over-long varint encoding")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


@dataclass(frozen=True)
class Copy:
    """Copy ``length`` bytes from ``offset`` in the base file."""

    offset: int
    length: int

    def wire_size(self) -> int:
        return 1 + len(_encode_varint(self.offset)) + len(_encode_varint(self.length))

    def encode(self) -> bytes:
        return bytes([_COPY_TAG]) + _encode_varint(self.offset) + _encode_varint(self.length)


@dataclass(frozen=True)
class Literal:
    """Insert ``data`` verbatim."""

    data: bytes

    def wire_size(self) -> int:
        return 1 + len(_encode_varint(len(self.data))) + len(self.data)

    def encode(self) -> bytes:
        return bytes([_LITERAL_TAG]) + _encode_varint(len(self.data)) + self.data


DeltaOp = Union[Copy, Literal]


@dataclass
class Delta:
    """An ordered delta instruction stream plus bookkeeping.

    Attributes:
        ops: the instruction list.
        target_size: size of the file the delta reconstructs.
    """

    ops: List[DeltaOp] = field(default_factory=list)
    target_size: int = 0

    def append(self, op: DeltaOp) -> None:
        """Append an instruction, coalescing adjacent compatible ops."""
        if self.ops:
            last = self.ops[-1]
            if isinstance(op, Copy) and isinstance(last, Copy):
                if last.offset + last.length == op.offset:
                    self.ops[-1] = Copy(last.offset, last.length + op.length)
                    self.target_size += op.length
                    return
            if isinstance(op, Literal) and isinstance(last, Literal):
                self.ops[-1] = Literal(last.data + op.data)
                self.target_size += len(op.data)
                return
        self.ops.append(op)
        self.target_size += op.length if isinstance(op, Copy) else len(op.data)

    @property
    def literal_bytes(self) -> int:
        """Total bytes carried as literals (the "real" incremental data)."""
        return sum(len(op.data) for op in self.ops if isinstance(op, Literal))

    @property
    def copied_bytes(self) -> int:
        """Total bytes reused from the base file."""
        return sum(op.length for op in self.ops if isinstance(op, Copy))

    def wire_size(self) -> int:
        """Serialized size in bytes — what crosses the network."""
        # Fixed header: u32 op count + u32 target size.
        return sum(op.wire_size() for op in self.ops) + 4 + wire.u32(self.target_size)

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        body = b"".join(op.encode() for op in self.ops)
        return struct.pack("<II", len(self.ops), self.target_size) + body

    @classmethod
    def decode(cls, buf: bytes) -> "Delta":
        """Parse a serialized delta; raises ``ValueError`` on malformed input."""
        if len(buf) < 8:
            raise ValueError("truncated delta header")
        op_count, target_size = struct.unpack_from("<II", buf, 0)
        pos = 8
        ops: List[DeltaOp] = []
        for _ in range(op_count):
            if pos >= len(buf):
                raise ValueError("truncated delta body")
            tag = buf[pos]
            pos += 1
            if tag == _COPY_TAG:
                offset, pos = _decode_varint(buf, pos)
                length, pos = _decode_varint(buf, pos)
                ops.append(Copy(offset, length))
            elif tag == _LITERAL_TAG:
                length, pos = _decode_varint(buf, pos)
                if pos + length > len(buf):
                    raise ValueError("truncated literal")
                ops.append(Literal(buf[pos : pos + length]))
                pos += length
            else:
                raise ValueError(f"unknown delta op tag 0x{tag:02x}")
        if pos != len(buf):
            raise ValueError(
                f"{len(buf) - pos} trailing byte(s) after the declared "
                f"{op_count} op(s)"
            )
        reconstructed = sum(
            op.length if isinstance(op, Copy) else len(op.data) for op in ops
        )
        if reconstructed != target_size:
            raise ValueError(
                f"ops reconstruct {reconstructed} bytes but the header "
                f"promises {target_size}"
            )
        delta = cls()
        for op in ops:
            delta.ops.append(op)
        delta.target_size = target_size
        return delta

    @classmethod
    def from_ops(cls, ops: Iterable[DeltaOp]) -> "Delta":
        """Build a delta from raw ops, coalescing as it goes."""
        delta = cls()
        for op in ops:
            delta.append(op)
        return delta
