"""Applying a delta to a base file — the server side of incremental sync."""

from __future__ import annotations

from repro.cost.meter import CostMeter, NULL_METER
from repro.delta.format import Copy, Delta, Literal


def apply_delta(base: bytes, delta: Delta, *, meter: CostMeter = NULL_METER) -> bytes:
    """Reconstruct the new file from ``base`` and ``delta``.

    Raises ``ValueError`` if a COPY instruction reaches outside the base
    file or the result size disagrees with the delta header — both indicate
    the delta was computed against a different base version (the version
    check in :mod:`repro.server` should have caught that earlier).
    """
    out = bytearray()
    for op in delta.ops:
        if isinstance(op, Copy):
            if op.offset < 0 or op.offset + op.length > len(base):
                raise ValueError(
                    f"copy [{op.offset}, {op.offset + op.length}) outside "
                    f"base of {len(base)} bytes"
                )
            out += base[op.offset : op.offset + op.length]
        elif isinstance(op, Literal):
            out += op.data
        else:  # pragma: no cover - Delta only holds the two op kinds
            raise TypeError(f"unknown delta op {op!r}")
    meter.charge_bytes("apply_delta", len(out))
    if delta.target_size and len(out) != delta.target_size:
        raise ValueError(
            f"reconstructed {len(out)} bytes, delta promised {delta.target_size}"
        )
    return bytes(out)
