"""The rsync delta algorithm (Tridgell 1996).

Pipeline:

1. **Signature** — the holder of the *old* file splits it into fixed-size
   blocks and computes a (weak rolling, strong MD5) checksum pair per block.
2. **Scan** — the holder of the *new* file slides a block-sized window over
   it, computing the weak checksum at every byte offset. When the weak
   checksum hits the signature's hash table, the strong checksum confirms
   the match; confirmed blocks become COPY instructions, everything between
   matches becomes LITERALs.

In the distributed setting the two sides exchange the signature and the
delta; the cost we meter (rolling scan of the whole new file + strong
checksum of every candidate window + signature of the old file) is exactly
why the paper calls rsync "CPU intensive".

The scan is vectorized: weak checksums for all offsets are precomputed with
prefix sums (bit-identical to rolling), then the greedy match loop only
visits candidate offsets. Metering is unaffected — we charge for the
logical per-byte work.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.chunking._fast import all_offset_weak_checksums
from repro.chunking.fixed import FixedChunk, fixed_chunks
from repro.chunking.strong import strong_checksum
from repro.common import wire
from repro.cost.meter import CostMeter, NULL_METER
from repro.delta.format import Copy, Delta, Literal


@dataclass
class Signature:
    """Block signature of a base file.

    Attributes:
        block_size: block size used.
        base_size: size of the base file.
        blocks: the per-block checksums.
        with_strong: whether strong checksums were computed (classic rsync)
            or skipped (DeltaCFS bitwise mode).
    """

    block_size: int
    base_size: int
    blocks: List[FixedChunk]
    with_strong: bool

    def weak_index(self) -> Dict[int, List[FixedChunk]]:
        """Hash table mapping weak checksum -> blocks with that checksum."""
        index: Dict[int, List[FixedChunk]] = {}
        for block in self.blocks:
            index.setdefault(block.weak, []).append(block)
        return index

    def wire_size(self) -> int:
        """Bytes to transmit the signature (weak 4B + strong 16B per block)."""
        per_block = 4 + (16 if self.with_strong else 0)
        # 16-byte header: u32 block size + u64 base size + u32 block count.
        header = wire.u32(self.block_size) + wire.u64(self.base_size) + 4
        return header + per_block * len(self.blocks)


def compute_signature(
    base: bytes,
    block_size: int,
    *,
    with_strong: bool = True,
    meter: CostMeter = NULL_METER,
) -> Signature:
    """Compute the rsync signature of ``base``."""
    blocks = fixed_chunks(base, block_size, with_strong=with_strong, meter=meter)
    # Only full blocks participate in matching; a short tail block would
    # produce false matches at the wrong window size.
    blocks = [b for b in blocks if b.length == block_size]
    return Signature(
        block_size=block_size,
        base_size=len(base),
        blocks=blocks,
        with_strong=with_strong,
    )


def _match_candidates(
    target: bytes, block_size: int, weak_index: Dict[int, List[FixedChunk]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Offsets in ``target`` whose weak checksum appears in the signature.

    Returns ``(candidate_offsets, weak_values_at_those_offsets)``.
    """
    weaks = all_offset_weak_checksums(target, block_size)
    if weaks.size == 0 or not weak_index:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32)
    known = np.sort(
        np.fromiter(weak_index.keys(), dtype=np.uint32, count=len(weak_index))
    )
    # Two-stage membership test. A boolean table over the checksum's low
    # 16 bits (the ``a`` sum) rejects ~all non-candidates with one gather —
    # full binary search of every offset against the key set costs more
    # than the rest of the scan combined. Survivors (a per-mille of
    # offsets for typical signatures) get the exact searchsorted check.
    table = np.zeros(1 << 16, dtype=bool)
    table[(known & np.uint32(0xFFFF)).astype(np.intp)] = True
    maybe = np.flatnonzero(table[(weaks & np.uint32(0xFFFF)).astype(np.intp)])
    if maybe.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32)
    survivors = weaks[maybe]
    idx = np.searchsorted(known, survivors)
    idx[idx == len(known)] = 0
    exact = known[idx] == survivors
    offsets = maybe[exact]
    return offsets.astype(np.int64), weaks[offsets]


def compute_delta(
    signature: Signature,
    target: bytes,
    *,
    base: bytes | None = None,
    meter: CostMeter = NULL_METER,
) -> Delta:
    """Compute the delta that transforms the signed base into ``target``.

    With ``base=None`` this is classic rsync: candidate matches are
    confirmed by MD5 (requires ``signature.with_strong``). With ``base``
    provided (both files local — the DeltaCFS case) candidates are confirmed
    by direct byte comparison, charged at the much cheaper
    ``bitwise_compare`` rate.
    """
    block_size = signature.block_size
    n = len(target)
    delta = Delta()
    if n == 0:
        return delta

    if base is None and not signature.with_strong:
        raise ValueError(
            "remote rsync needs strong checksums in the signature; "
            "pass base= for local bitwise confirmation"
        )

    # The rolling scan touches every byte of the new file once.
    meter.charge_bytes("rolling_checksum", n)
    weak_index = signature.weak_index()
    cand_arr, weak_arr = _match_candidates(target, block_size, weak_index)
    # Plain Python lists index ~5x faster than numpy scalars in the greedy
    # loop below, and give us bisect for the post-COPY skip.
    candidates = cand_arr.tolist()
    cand_weaks = weak_arr.tolist()

    # memoryview windows: candidate confirmation compares bytes in place —
    # no per-candidate block_size-sized copies of target or base.
    tview = memoryview(target)
    bview = memoryview(base) if base is not None else None

    literal_start = 0
    ci = 0
    num_candidates = len(candidates)
    pos = 0
    while ci < num_candidates:
        if candidates[ci] < pos:
            # A COPY consumed up to block_size candidate offsets; binary-
            # search to the next candidate at or after pos instead of
            # stepping over them one loop iteration at a time.
            ci = bisect_left(candidates, pos, ci + 1)
            continue
        pos = candidates[ci]
        window = tview[pos : pos + block_size]
        matched_block = None
        for block in weak_index.get(cand_weaks[ci], ()):
            if bview is not None:
                meter.charge_bytes("bitwise_compare", block_size)
                if bview[block.offset : block.offset + block_size] == window:
                    matched_block = block
                    break
            else:
                digest = strong_checksum(window, meter)
                if block.strong == digest:
                    matched_block = block
                    break
        if matched_block is None:
            ci += 1
            pos += 1
            continue
        if pos > literal_start:
            delta.append(Literal(target[literal_start:pos]))
        delta.append(Copy(matched_block.offset, block_size))
        pos += block_size
        literal_start = pos

    if literal_start < n:
        delta.append(Literal(target[literal_start:]))
    return delta


def rsync_delta(
    base: bytes,
    target: bytes,
    block_size: int,
    *,
    meter: CostMeter = NULL_METER,
    remote: bool = True,
) -> Delta:
    """One-call rsync: signature of ``base`` then delta to ``target``.

    ``remote=True`` models the distributed protocol (strong checksums
    everywhere); ``remote=False`` is the DeltaCFS local path (no strong
    checksums, bitwise confirmation).
    """
    signature = compute_signature(
        base, block_size, with_strong=remote, meter=meter
    )
    return compute_delta(
        signature, target, base=None if remote else base, meter=meter
    )
