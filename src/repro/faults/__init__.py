"""Fault injection for the reliability experiments (paper Section IV-E).

The corruption and crash injectors mutate file content *beneath* the
operation-interception layer, exactly like the paper's debugfs-based
injection: no file operation reports the change, so only checksum-based
detection can catch it. :class:`NetworkFaults` attacks the *link* instead:
seeded drop/duplicate/reorder probabilities and transient partition windows
consumed by :class:`repro.net.transport.LossyChannel`.
"""

from repro.faults.corruption import flip_bit, corrupt_random_block
from repro.faults.crash import inject_crash_inconsistency, simulate_crash
from repro.faults.network import NO_FAULTS, NetworkFaults

__all__ = [
    "flip_bit",
    "corrupt_random_block",
    "inject_crash_inconsistency",
    "simulate_crash",
    "NetworkFaults",
    "NO_FAULTS",
]
