"""Fault injection for the reliability experiments (paper Section IV-E).

Both injectors mutate file content *beneath* the operation-interception
layer, exactly like the paper's debugfs-based injection: no file operation
reports the change, so only checksum-based detection can catch it.
"""

from repro.faults.corruption import flip_bit, corrupt_random_block
from repro.faults.crash import inject_crash_inconsistency, simulate_crash

__all__ = [
    "flip_bit",
    "corrupt_random_block",
    "inject_crash_inconsistency",
    "simulate_crash",
]
