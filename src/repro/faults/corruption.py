"""Silent data corruption injection.

"we inject corrupted data by flipping a bit in a file ... using the
debugfs tool to find out a file's physical location, then directly write
the dev disk file" — our equivalent writes the inode bytes directly,
bypassing every interception layer.
"""

from __future__ import annotations

from repro.common.rng import DeterministicRandom
from repro.vfs.filesystem import MemoryFileSystem


def flip_bit(fs: MemoryFileSystem, path: str, byte_offset: int, bit: int = 0) -> None:
    """Flip one bit of ``path`` at ``byte_offset`` beneath the stack."""
    if not 0 <= bit < 8:
        raise ValueError("bit must be in [0, 8)")
    fs.corrupt(path, byte_offset, flip_mask=1 << bit)


def corrupt_random_block(
    fs: MemoryFileSystem, path: str, *, seed: int = 0, block_size: int = 4096
) -> int:
    """Flip a bit in a random block of ``path``; returns the block index."""
    rng = DeterministicRandom(seed).fork("corrupt")
    size = fs.stat(path).size
    if size == 0:
        raise ValueError("cannot corrupt an empty file")
    offset = rng.randint(0, size - 1)
    flip_bit(fs, path, offset, bit=rng.randint(0, 7))
    return offset // block_size
