"""Crash simulation and crash-inconsistency injection.

The paper's experiment (Section IV-E): "we cut off the power of the machine
during a file in the sync folder is being written. After the machine is
powered on, we first inject inconsistent data to simulate crash
inconsistency by writing data to the file bypassing the file system" —
i.e., ordered-journaling's window where data blocks changed but metadata
did not.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import DeterministicRandom
from repro.vfs.filesystem import MemoryFileSystem


def inject_crash_inconsistency(
    fs: MemoryFileSystem,
    path: str,
    *,
    seed: int = 0,
    span: int = 4096,
) -> int:
    """Overwrite a span of ``path`` beneath the stack (torn write).

    Returns the offset of the damaged region. Unlike a single bit flip this
    models a whole data block left half-written by the crash.
    """
    rng = DeterministicRandom(seed).fork("crash")
    size = fs.stat(path).size
    if size == 0:
        raise ValueError("cannot tear an empty file")
    offset = rng.randint(0, max(0, size - span))
    garbage = rng.random_bytes(min(span, size - offset))
    inode = fs._inode_of(path)  # deliberate: bypass the operation surface
    data = bytearray(inode.data)
    data[offset : offset + len(garbage)] = garbage
    inode.data = bytes(data)
    return offset


def simulate_crash(client) -> List[str]:
    """Model a power cut for a DeltaCFS client: volatile state is lost.

    The Sync Queue, relation table, and undo logs are in-memory in the
    prototype and vanish; the checksum store survives (it is in LevelDB).
    Returns the paths that had un-uploaded changes (the "recently modified
    files" the post-crash sweep inspects).
    """
    dirty = sorted({node.path for node in client.queue.nodes()})
    # rebuild the volatile structures empty
    client.queue.__init__(
        upload_delay=client.config.upload_delay,
        capacity=client.config.sync_queue_capacity,
        max_coalesce_delay=client.config.max_coalesce_delay,
    )
    client.relations.__init__(timeout=client.config.relation_timeout)
    if client.undo is not None:
        client.undo.__init__(meter=client.meter)
    client._pending_create_delta.clear()
    return dirty
