"""Crash simulation and crash-inconsistency injection.

The paper's experiment (Section IV-E): "we cut off the power of the machine
during a file in the sync folder is being written. After the machine is
powered on, we first inject inconsistent data to simulate crash
inconsistency by writing data to the file bypassing the file system" —
i.e., ordered-journaling's window where data blocks changed but metadata
did not.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import DeterministicRandom
from repro.vfs.filesystem import MemoryFileSystem


def inject_crash_inconsistency(
    fs: MemoryFileSystem,
    path: str,
    *,
    seed: int = 0,
    span: int = 4096,
) -> int:
    """Overwrite a span of ``path`` beneath the stack (torn write).

    Returns the offset of the damaged region. Unlike a single bit flip this
    models a whole data block left half-written by the crash.
    """
    rng = DeterministicRandom(seed).fork("crash")
    size = fs.stat(path).size
    if size == 0:
        raise ValueError("cannot tear an empty file")
    offset = rng.randint(0, max(0, size - span))
    garbage = rng.random_bytes(min(span, size - offset))
    inode = fs._inode_of(path)  # deliberate: bypass the operation surface
    data = bytearray(inode.data)
    data[offset : offset + len(garbage)] = garbage
    inode.data = bytes(data)
    return offset


def simulate_crash(client) -> List[str]:
    """Model a power cut for a DeltaCFS client: memory is lost, disk stays.

    The Sync Queue, relation table, and undo logs are in-memory in the
    prototype and vanish; the checksum store and the recovery journal
    survive (they live in the WAL-backed KV — the LevelDB role). The
    volatile structures are rebuilt empty **with the client's original
    observability and meter wiring** — a restarted process re-instruments
    itself; rebuilding into ``NULL_OBS`` would silently blind every
    post-crash metric.

    For a journaled client the synced-version map and version counter are
    also wiped (they are process memory too) — :meth:`recover` rebuilds
    them from the journal and the cloud. A journal-less client keeps them,
    preserving the legacy test model where the sweep is improvised by the
    caller.

    Returns the paths that had un-uploaded changes (the "recently modified
    files" the post-crash sweep inspects).
    """
    dirty = sorted({node.path for node in client.queue.nodes()})
    client.queue.__init__(
        upload_delay=client.config.upload_delay,
        capacity=client.config.sync_queue_capacity,
        max_coalesce_delay=client.config.max_coalesce_delay,
        obs=client.obs,
    )
    client.relations.__init__(
        timeout=client.config.relation_timeout, obs=client.obs
    )
    if client.undo is not None:
        client.undo.__init__(meter=client.meter)
    client._pending_create_delta.clear()
    if client.journal is not None:
        from repro.common.version import VersionCounter

        client._dead_versions.clear()
        client.versions.clear()
        client._counter = VersionCounter(client.client_id)
    return dirty
