"""Network fault injection: the lossy-link model (WAN reliability).

The paper's reliability story (Section IV-E) covers corruption and crash
inconsistency; this module supplies the third leg — an adversarial *link*.
A :class:`NetworkFaults` plan describes, declaratively, how a
:class:`~repro.net.transport.LossyChannel` may perturb deliveries:

- **drop**: a message vanishes in transit (its bytes were still spent);
- **duplicate**: the network delivers a second copy of the same transfer;
- **reorder**: a delivery is delayed by ``reorder_delay`` so a later
  message can overtake it;
- **partition**: during a ``[start, end)`` window *every* message in the
  affected direction is lost (a transient outage).

All probabilistic decisions are drawn from :class:`repro.common.rng`
streams seeded by the channel, so identical seeds produce identical fault
schedules — the reliability sweeps are reproducible run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class NetworkFaults:
    """A declarative fault plan for one lossy link.

    Attributes:
        drop_prob: probability a transmitted message is lost in transit.
        dup_prob: probability the network delivers a second copy.
        reorder_prob: probability a delivery is delayed past later sends.
        reorder_delay: extra transit seconds added to a reordered copy.
        partitions: ``(start, end)`` virtual-time windows (half-open)
            during which every message is dropped.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay: float = 0.25
    partitions: Tuple[Tuple[float, float], ...] = ()

    def validate(self) -> None:
        """Raise ``ValueError`` on a nonsensical plan."""
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drop_prob >= 1.0:
            raise ValueError("drop_prob must be < 1.0 (nothing would ever arrive)")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")
        for start, end in self.partitions:
            if end <= start:
                raise ValueError(f"partition window ({start}, {end}) is empty")

    @property
    def lossless(self) -> bool:
        """True when this plan never perturbs anything (the perfect pipe)."""
        return (
            self.drop_prob == 0.0
            and self.dup_prob == 0.0
            and self.reorder_prob == 0.0
            and not self.partitions
        )

    def in_partition(self, now: float) -> bool:
        """True when ``now`` falls inside a partition window."""
        return any(start <= now < end for start, end in self.partitions)


NO_FAULTS = NetworkFaults()
