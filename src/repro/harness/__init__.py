"""The experiment harness: build systems, replay traces, collect results.

- :mod:`repro.harness.runner` — construct any of the five sync systems
  behind a uniform facade and run a trace against it.
- :mod:`repro.harness.experiments` — one driver per paper table/figure.
- :mod:`repro.harness.microbench` — the local-IO latency model behind
  Table III.
"""

from repro.harness.runner import SystemUnderTest, build_system, run_trace, SOLUTIONS

__all__ = ["SystemUnderTest", "build_system", "run_trace", "SOLUTIONS"]
