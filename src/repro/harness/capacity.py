"""Server-capacity experiment: many clients against one cloud.

Backs the paper's Section VI claim quantitatively: because the DeltaCFS
server "only needs to apply incremental data", its per-client CPU demand
is tiny and one (even wimpy) server core sustains a large fleet. This
driver attaches ``n_clients`` DeltaCFS clients — each syncing its own
private folder (selective sharing, Section III-D) — to one CloudServer,
replays a per-client workload, and reports how server work scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import VirtualClock
from repro.common.rng import DeterministicRandom
from repro.cost.meter import CostMeter
from repro.harness.fleet import provision_clients
from repro.net.transport import NetworkStats
from repro.server.cloud import CloudServer


@dataclass
class CapacityResult:
    """Scaling measurements for one fleet size."""

    n_clients: int
    server_ticks: float
    server_ticks_per_client: float
    total_up_bytes: int
    duration: float


def run_capacity(
    n_clients: int,
    *,
    writes_per_client: int = 20,
    write_size: int = 4096,
    file_size: int = 256 * 1024,
    seed: int = 0,
) -> CapacityResult:
    """Each client maintains a private file with periodic in-place writes.

    Clients come from the fleet driver's construction path
    (:func:`repro.harness.fleet.provision_clients`) so capacity and
    fleet numbers stay comparable — same selective-share registration
    (one subscription scoped to ``/u{i}``, not a transient whole-account
    one), same per-client seed stream, same config.
    """
    clock = VirtualClock()
    server_meter = CostMeter()
    server = CloudServer(meter=server_meter)
    rng = DeterministicRandom(seed)

    clients, channels = provision_clients(
        n_clients,
        server=server,
        clock=clock,
        rng=rng,
        file_size=file_size,
        server_meter_for=lambda client_id: server_meter,
    )

    # seed uploads settle outside the measurement
    for _ in range(8):
        clock.advance(1.0)
        for client in clients:
            client.pump()
    for client in clients:
        client.flush()
    server_meter.reset()
    for channel in channels:
        # Full reset (not just up_bytes): seed-phase message counts and
        # down bytes must not leak into the measured window either.
        channel.stats = NetworkStats()

    for round_index in range(writes_per_client):
        for client_id, client in enumerate(clients, start=1):
            path = f"/u{client_id}/data.bin"
            offset = rng.randint(0, file_size - write_size - 1)
            client.write(path, offset, rng.random_bytes(write_size))
            client.close(path)
        clock.advance(5.0)
        for client in clients:
            client.pump()
    for client in clients:
        client.flush()

    total_up = sum(c.stats.up_bytes for c in channels)
    return CapacityResult(
        n_clients=n_clients,
        server_ticks=server_meter.total,
        server_ticks_per_client=server_meter.total / n_clients,
        total_up_bytes=total_up,
        duration=clock.now(),
    )
