"""Per-table/figure experiment drivers (see DESIGN.md section 4).

Each function regenerates one table or figure of the paper at a reduced
(but structure-preserving) scale and returns structured results the
benchmarks print and sanity-check. Scales divide file sizes; op counts,
op sequences, and the write-size-tied granularities (4 KB blocks/pages)
are kept at paper values, while structural granularities (4 MB dedup
units, 1 MB CDC chunks) scale with the files (see ``build_system``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.cost.profile import MOBILE_PROFILE, PC_PROFILE
from repro.harness.runner import build_system, run_trace
from repro.metrics.collector import RunResult
from repro.net.transport import MOBILE_NETWORK, PC_NETWORK
from repro.workloads import (
    append_write_trace,
    random_write_trace,
    wechat_trace,
    word_trace,
)
from repro.workloads.traces import Trace

# Benchmark scales: chosen so every run finishes in seconds while keeping
# file >> seafile chunk >> rsync block and dedup unit < file.
APPEND_SCALE = 4
RANDOM_SCALE = 4
WORD_SCALE = 8
WECHAT_SCALE = 16

PC_SOLUTIONS = ("dropbox", "seafile", "nfs", "deltacfs")
MOBILE_SOLUTIONS = ("fullsync", "deltacfs")


def bench_traces(fast: bool = False) -> Dict[str, Tuple[Trace, int]]:
    """The four traces at benchmark scale; returns {name: (trace, scale)}.

    ``fast=True`` further trims op counts for smoke tests.
    """
    word_saves = 12 if fast else 61
    wechat_mods = 40 if fast else 373
    appends = 10 if fast else 40
    writes = 10 if fast else 40
    return {
        "append_write": (
            append_write_trace(scale=APPEND_SCALE, appends=appends),
            APPEND_SCALE,
        ),
        "random_write": (
            random_write_trace(scale=RANDOM_SCALE, writes=writes),
            RANDOM_SCALE,
        ),
        "word": (word_trace(scale=WORD_SCALE, saves=word_saves), WORD_SCALE),
        "wechat": (
            wechat_trace(scale=WECHAT_SCALE, modifications=wechat_mods),
            WECHAT_SCALE,
        ),
    }


def _scaled_kwargs(scale: int) -> Dict[str, int]:
    return {
        "dropbox_dedup_size": max(64 * 1024, 4 * 1024 * 1024 // scale),
        "seafile_chunk_size": max(16 * 1024, 1024 * 1024 // scale),
    }


def _table2_config():
    """Plain DeltaCFS, as in Tables II and Figures 8/9.

    The paper treats the checksum store as a separate variant ("DeltaCFSc"
    appears only in Table III), so the headline CPU/traffic rows use the
    plain client.
    """
    from repro.common.config import DeltaCFSConfig

    return DeltaCFSConfig(enable_checksums=False)


# One (solution, trace, setting) run serves every table/figure that needs
# it — Table II and Figure 8 report different columns of the same runs, as
# in the paper ("During measuring CPU consumption ... we also measured
# their data transmission"). The key fingerprints the trace's actual
# content, not just its name, so differently-parameterized variants of the
# same workload never collide.
_run_cache: Dict[Tuple, RunResult] = {}


def _trace_fingerprint(trace: Trace) -> Tuple:
    return (
        trace.name,
        len(trace.ops),
        trace.stats.bytes_written,
        trace.stats.update_bytes,
    )


def run_pc(name: str, trace: Trace, scale: int, fast: bool = False, **kwargs) -> RunResult:
    """One PC-setting run (EC2-to-EC2 in the paper). Cached per trace."""
    key = (name, _trace_fingerprint(trace), "pc")
    if not kwargs and key in _run_cache:
        return _run_cache[key]
    result = run_trace(
        name,
        trace,
        profile=PC_PROFILE,
        network=PC_NETWORK,
        config=_table2_config() if name == "deltacfs" else None,
        **_scaled_kwargs(scale),
        **kwargs,
    )
    if not kwargs:
        _run_cache[key] = result
    return result


def run_mobile(name: str, trace: Trace, scale: int, fast: bool = False, **kwargs) -> RunResult:
    """One mobile-setting run (Galaxy Note3 on a WAN). Cached per trace."""
    key = (name, _trace_fingerprint(trace), "mobile")
    if not kwargs and key in _run_cache:
        return _run_cache[key]
    result = run_trace(
        name,
        trace,
        profile=MOBILE_PROFILE,
        network=MOBILE_NETWORK,
        config=_table2_config() if name == "deltacfs" else None,
        **_scaled_kwargs(scale),
        **kwargs,
    )
    if not kwargs:
        _run_cache[key] = result
    return result


# ---------------------------------------------------------------------------
# Table II — CPU usage of different sync solutions
# ---------------------------------------------------------------------------


def table2_cpu(fast: bool = False) -> List[RunResult]:
    """CPU ticks, client and server, PC rows then mobile rows."""
    results: List[RunResult] = []
    for trace_name, (trace, scale) in bench_traces(fast).items():
        for solution in PC_SOLUTIONS:
            results.append(run_pc(solution, trace, scale, fast))
    for trace_name, (trace, scale) in bench_traces(fast).items():
        for solution in MOBILE_SOLUTIONS:
            result = run_mobile(solution, trace, scale, fast)
            result.extra["setting"] = "mobile"
            results.append(result)
    return results


# ---------------------------------------------------------------------------
# Figure 8 — network transmission on PC
# ---------------------------------------------------------------------------


def fig8_network_pc(fast: bool = False) -> List[RunResult]:
    """Upload/download bytes for the four traces x four PC solutions."""
    results: List[RunResult] = []
    for trace_name, (trace, scale) in bench_traces(fast).items():
        for solution in PC_SOLUTIONS:
            results.append(run_pc(solution, trace, scale, fast))
    return results


# ---------------------------------------------------------------------------
# Figure 9 — network traffic on mobile
# ---------------------------------------------------------------------------


def fig9_network_mobile(fast: bool = False) -> List[RunResult]:
    """Upload/download bytes for the four traces, Dropsync vs DeltaCFS."""
    results: List[RunResult] = []
    for trace_name, (trace, scale) in bench_traces(fast).items():
        for solution in MOBILE_SOLUTIONS:
            result = run_mobile(solution, trace, scale, fast)
            # Stamp the setting here too (not only in table2_cpu), so the
            # report rows and bench-snapshot keys are the same whether or
            # not table2 populated the run cache first.
            result.extra["setting"] = "mobile"
            results.append(result)
    return results


# ---------------------------------------------------------------------------
# Policy sweep — Figure 8 traces x mechanism-selection policies
# ---------------------------------------------------------------------------

SWEEP_POLICIES = ("static", "cost-model", "always-rpc", "always-delta")


def policy_sweep(fast: bool = False) -> List[RunResult]:
    """DeltaCFS over the Figure-8 traces under every mechanism policy.

    The ``static`` rows must be byte-identical to Figure 8's ``deltacfs``
    rows (same traces, same config, default policy); ``always-rpc`` and
    ``always-delta`` bracket the selection space; ``cost-model`` must land
    within 5% of the better bracket on total uplink (the acceptance bar
    the policy bench lane gates). Runs are stamped with a
    ``policy-<name>`` setting so bench keys never collide with fig8's.
    """
    from repro.common.config import DeltaCFSConfig

    results: List[RunResult] = []
    for trace_name, (trace, scale) in bench_traces(fast).items():
        for policy in SWEEP_POLICIES:
            config = DeltaCFSConfig(enable_checksums=False, sync_policy=policy)
            result = run_trace(
                "deltacfs",
                trace,
                profile=PC_PROFILE,
                network=PC_NETWORK,
                config=config,
                **_scaled_kwargs(scale),
            )
            result.extra["setting"] = f"policy-{policy}"
            results.append(result)
    return results


# ---------------------------------------------------------------------------
# Figure 1 — motivation: client resource consumption (Dropbox vs Seafile)
# ---------------------------------------------------------------------------


def fig1_motivation(fast: bool = False) -> List[RunResult]:
    """The intro experiment: a Word file saved 23x and a chat SQLite file.

    Reports client CPU ticks, network traffic, and data *read* from disk
    (the IO cost the paper calls out: Dropbox issued >700 MB of reads for
    a 130 MB database).
    """
    # Figure 1's workloads: a Word file saved 23 times, and the SQLite file
    # "modified 4 times (composed of 85 write operations)".
    saves = 8 if fast else 23
    mods = 2 if fast else 4
    word = word_trace(scale=WORD_SCALE, saves=saves, seed=30)
    chat = wechat_trace(
        scale=WECHAT_SCALE, modifications=mods, seed=31, rewrites_range=(18, 24)
    )
    results: List[RunResult] = []
    for trace, scale in ((word, WORD_SCALE), (chat, WECHAT_SCALE)):
        for solution in ("dropbox", "seafile"):
            system = build_system(
                solution, profile=PC_PROFILE, network=PC_NETWORK,
                **_scaled_kwargs(scale),
            )
            from repro.harness.runner import _preload
            from repro.workloads.traces import replay

            _preload(system, trace)

            # The paper's Figure 1 subplots are CPU-over-time series whose
            # spikes line up with the saves; sample per-window tick deltas.
            window = 5.0
            timeline: List[float] = []
            state = {"last_sample": 0.0, "last_total": system.client_meter.total}

            def sampling_pump(now: float):
                system.pump(now)
                if now - state["last_sample"] >= window:
                    total = system.client_meter.total
                    timeline.append(total - state["last_total"])
                    state["last_total"] = total
                    state["last_sample"] = now

            replay(trace, system.fs, system.clock, pump=sampling_pump)
            for _ in range(10):
                system.clock.advance(1.0)
                sampling_pump(system.clock.now())
            system.flush()
            result = RunResult(
                solution=solution,
                trace=trace.name,
                client_ticks=system.client_meter.total,
                server_ticks=system.server_meter.total,
                up_bytes=system.channel.stats.up_bytes,
                down_bytes=system.channel.stats.down_bytes,
                update_bytes=trace.stats.update_bytes,
            )
            result.extra["read_bytes"] = system.client_meter.bytes_by_category.get(
                "scan_read", 0
            )
            result.extra["cpu_timeline"] = timeline
            result.extra["cpu_active_windows"] = sum(
                1 for ticks in timeline if ticks > 0.01
            )
            results.append(result)
    return results


# ---------------------------------------------------------------------------
# Figure 2 — WeChat via Dropsync on mobile: traffic, TUE, CPU timeline
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    """Dropsync-on-mobile characterization."""

    total_traffic: int = 0
    update_bytes: int = 0
    tue: float = 0.0
    cpu_ticks: float = 0.0
    # cumulative uploaded bytes sampled once per virtual minute
    traffic_timeline: List[Tuple[float, int]] = field(default_factory=list)


def fig2_dropsync_mobile(fast: bool = False) -> Fig2Result:
    """Replay the WeChat trace through Dropsync on the mobile setting."""
    mods = 30 if fast else 120
    trace = wechat_trace(scale=WECHAT_SCALE, modifications=mods, seed=32)
    system = build_system(
        "fullsync",
        profile=MOBILE_PROFILE,
        network=MOBILE_NETWORK,
        **_scaled_kwargs(WECHAT_SCALE),
    )
    from repro.harness.runner import _preload
    from repro.workloads.traces import replay

    _preload(system, trace)
    timeline: List[Tuple[float, int]] = []
    last_sample = [0.0]

    def pump_and_sample(now: float):
        system.pump(now)
        if now - last_sample[0] >= 60.0:
            timeline.append((now, system.channel.stats.up_bytes))
            last_sample[0] = now

    replay(trace, system.fs, system.clock, pump=pump_and_sample)
    for _ in range(30):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()
    total = system.channel.stats.total_bytes
    update = trace.stats.update_bytes
    return Fig2Result(
        total_traffic=total,
        update_bytes=update,
        tue=total / update if update else float("inf"),
        cpu_ticks=system.client_meter.total,
        traffic_timeline=timeline,
    )


# ---------------------------------------------------------------------------
# Table IV — reliability tests
# ---------------------------------------------------------------------------


@dataclass
class ReliabilityOutcome:
    """One service's behaviour in the three reliability scenarios."""

    service: str
    corrupted: str = ""  # "upload" | "detect"
    inconsistent: str = ""  # "upload" | "detect"
    causal_order: str = ""  # "Y" | "N"


def table4_reliability() -> List[ReliabilityOutcome]:
    """Run the corruption / crash-inconsistency / causal-order tests."""
    from repro.harness.reliability import (
        causal_order_test,
        corruption_test,
        crash_inconsistency_test,
    )

    outcomes = []
    for service in ("dropbox", "seafile", "deltacfs"):
        outcomes.append(
            ReliabilityOutcome(
                service=service,
                corrupted=corruption_test(service),
                inconsistent=crash_inconsistency_test(service),
                causal_order="Y" if causal_order_test(service) else "N",
            )
        )
    return outcomes
