"""Fleet-scale discrete-event simulation against the sharded cloud.

Where :mod:`repro.harness.capacity` replays a lock-step workload (every
client writes every round) against one ``CloudServer``, this driver runs
10^4 – 10^6 clients in **virtual time** against a :class:`ShardRouter`:
each client's writes arrive on its own stochastic schedule (Poisson or
bursty), uploads are debounced by the real Sync Queue, and each shard is
modelled as a single wimpy core draining its apply work FIFO. The
output is the scaling curve the paper's Section VI hand-waves: clients
vs p99 sync latency, with per-shard CPU-tick accounting.

Mechanics
---------

Every event is ``(time, seq, client, kind)`` on one heap; ``seq`` breaks
ties deterministically. A WRITE event performs the client's
``write``+``close`` through the full DeltaCFS pipeline and schedules a
PUMP at ``time + upload_delay`` (when the queue node becomes due). A
PUMP ships the client's due units into the router; the CPU ticks the
client's home shard charged during that pump, scaled by
``tick_seconds``, become the service demand appended to that shard's
busy horizon:

    start = max(now, shard_busy);  done = start + ticks * tick_seconds

Sync latency for each write is ``done - write_time`` — debounce wait,
queueing behind other tenants on the shard, and service, all included.

Telemetry is streaming and fixed-memory: instead of buffering every
latency sample, the driver feeds a :class:`~repro.obs.sketch.ShardWindows`
rollup (per-shard, per-virtual-time-window quantile sketches, queue-depth
peaks and busy time — O(shards × windows) memory regardless of client
count). Reported quantiles come from the merged sketches, within the
sketch's ``alpha`` relative-error bound; ``FleetResult.health()`` turns
the same rollup into an SLO health report (``repro fleet --health``).

Determinism: all randomness flows from one ``DeterministicRandom`` seed
via per-client forks, so a (seed, spec) pair reproduces the same curve
bit-for-bit on any machine — which is what lets ``BENCH_fleet.json``
be gated against a committed baseline.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.common.config import DeltaCFSConfig
from repro.common.rng import DeterministicRandom
from repro.core.client import DeltaCFSClient
from repro.cost.meter import CostMeter
from repro.net.transport import Channel, NetworkStats
from repro.obs import NULL_OBS, Observability
from repro.obs.health import HealthReport, health_from_windows
from repro.obs.sketch import ShardWindows
from repro.server.shard import ShardRouter

__all__ = [
    "FleetSpec",
    "FleetResult",
    "provision_clients",
    "run_fleet",
    "fleet_curve",
    "FLEET_CURVE",
]


def provision_clients(
    n_clients: int,
    *,
    server,
    clock: VirtualClock,
    rng: DeterministicRandom,
    file_size: int,
    server_meter_for: Callable[[int], CostMeter],
    config_factory: Optional[Callable[[int], DeltaCFSConfig]] = None,
    obs: Observability = NULL_OBS,
) -> Tuple[List[DeltaCFSClient], List[Channel]]:
    """The one client-construction path shared by capacity and fleet runs.

    Client ``i`` (1-based) gets its own ``MemoryFileSystem``, a channel
    charging ``server_meter_for(i)`` for server-side receive work, a
    share subscription scoped to its private ``/u{i}`` folder (Section
    III-D selective sharing — on a sharded server this pins the
    registration to one shard), and a seeded ``/u{i}/data.bin`` of
    ``file_size`` bytes drawn from ``rng.fork(str(i))``.

    The seed uploads are *enqueued*, not yet shipped: the caller settles
    them (and resets meters) before its measurement window, so different
    harnesses can settle at whatever cadence they need without this
    function perturbing their clocks.
    """
    from repro.vfs.filesystem import MemoryFileSystem

    clients: List[DeltaCFSClient] = []
    channels: List[Channel] = []
    for client_id in range(1, n_clients + 1):
        channel = Channel(server_meter=server_meter_for(client_id))
        config = (
            config_factory(client_id)
            if config_factory is not None
            else DeltaCFSConfig(enable_checksums=False)
        )
        client = DeltaCFSClient(
            MemoryFileSystem(),
            server=server,
            channel=channel,
            clock=clock,
            client_id=client_id,
            config=config,
            shares=(f"/u{client_id}",),
            obs=obs,
        )
        path = f"/u{client_id}/data.bin"
        client.mkdir(f"/u{client_id}")
        client.create(path)
        client.write(path, 0, rng.fork(str(client_id)).random_bytes(file_size))
        client.close(path)
        clients.append(client)
        channels.append(channel)
    return clients, channels


@dataclass
class FleetSpec:
    """One fleet-simulation configuration.

    Args:
        n_clients: simulated clients (each in a private namespace).
        n_shards: CloudServer shards behind the router.
        writes_per_client: in-place writes per client after seeding.
        write_size: bytes per write.
        file_size: seeded file size per client (kept small — 10^5
            clients at the capacity harness's 256 KiB would be 25 GiB).
        arrival: ``"poisson"`` (independent exponential gaps) or
            ``"bursty"`` (synchronized waves with uniform jitter — the
            everyone-saves-at-once shape that stresses shard queues).
        mean_gap: poisson — mean seconds between one client's writes.
        burst_every: bursty — seconds between waves.
        burst_jitter: bursty — uniform jitter width inside a wave.
        window_seconds: width of the telemetry rollup windows (virtual
            seconds); per-shard latency sketches, queue peaks and busy
            time aggregate per window.
        sketch_alpha: relative-error bound of the latency quantile
            sketches (0.005 → reported quantiles within 0.5% of exact).
        slo_seconds: the sync-latency objective — a write meets the SLO
            when its sync latency is at or under this.
        stall_horizon: a write whose sync takes longer than this counts
            as a stall in the health report.
        tick_seconds: virtual seconds of shard-core time per modelled
            CPU tick; the wimpy-core scale factor relating the cost
            model's ticks to the simulation's clock. The default (8.0)
            is calibrated so the committed 10^4-client curve runs its
            shards at moderate utilization — low enough that the paper's
            wimpy-server claim holds, high enough that the bursty
            arrival mix visibly queues.
        seed: root of the deterministic randomness tree.
        vnodes: hash-ring virtual nodes per shard.
    """

    n_clients: int = 10_000
    n_shards: int = 8
    writes_per_client: int = 3
    write_size: int = 512
    file_size: int = 4096
    arrival: str = "poisson"
    mean_gap: float = 20.0
    burst_every: float = 20.0
    burst_jitter: float = 4.0
    tick_seconds: float = 8.0
    seed: int = 0
    vnodes: int = 32
    window_seconds: float = 20.0
    sketch_alpha: float = 0.005
    slo_seconds: float = 15.0
    stall_horizon: float = 60.0

    def validate(self) -> None:
        if self.n_clients <= 0:
            raise ValueError("n_clients must be positive")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.write_size >= self.file_size:
            raise ValueError("write_size must be smaller than file_size")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if not 0.0 < self.sketch_alpha < 1.0:
            raise ValueError("sketch_alpha must be in (0, 1)")
        if self.slo_seconds <= 0 or self.stall_horizon <= 0:
            raise ValueError("slo_seconds and stall_horizon must be positive")


@dataclass
class FleetResult:
    """Measured outcome of one :func:`run_fleet`."""

    spec: FleetSpec
    writes: int
    p50_latency: float
    p90_latency: float
    p99_latency: float
    max_latency: float
    shard_ticks: List[float]
    shard_busy: List[float]
    shard_queue_peak: List[int]
    total_up_bytes: int
    duration: float
    migrations: int
    conflicts: int
    rollup: ShardWindows
    shard_stalls: List[int]
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ticks_per_client(self) -> float:
        return sum(self.shard_ticks) / self.spec.n_clients

    @property
    def stalls(self) -> int:
        return sum(self.shard_stalls)

    def health(
        self,
        *,
        slo_seconds: Optional[float] = None,
        attainment_target: Optional[float] = None,
    ) -> HealthReport:
        """SLO health report over this run's streaming rollups."""
        kwargs = {}
        if attainment_target is not None:
            kwargs["attainment_target"] = attainment_target
        return health_from_windows(
            self.rollup,
            slo_seconds=(
                self.spec.slo_seconds if slo_seconds is None else slo_seconds
            ),
            stall_horizon=self.spec.stall_horizon,
            stalls_by_shard={
                s: n for s, n in enumerate(self.shard_stalls) if n
            },
            **kwargs,
        )


_WRITE, _PUMP = 0, 1


def run_fleet(spec: FleetSpec, *, obs: Observability = NULL_OBS) -> FleetResult:
    """Run one fleet simulation in virtual time; fully deterministic."""
    spec.validate()
    clock = VirtualClock()
    obs.bind_clock(clock)
    rng = DeterministicRandom(spec.seed)
    router = ShardRouter(spec.n_shards, vnodes=spec.vnodes, obs=obs)

    def meter_for(client_id: int) -> CostMeter:
        return router.shard_meters[
            router.shard_index_for_path(f"/u{client_id}/data.bin")
        ]

    clients, channels = provision_clients(
        spec.n_clients,
        server=router,
        clock=clock,
        rng=rng,
        file_size=spec.file_size,
        server_meter_for=meter_for,
        obs=obs,
    )
    home_shard = [
        router.shard_index_for_path(f"/u{cid}/data.bin")
        for cid in range(1, spec.n_clients + 1)
    ]
    obs.set_gauge("fleet.clients", spec.n_clients)

    # Settle the seed uploads outside the measurement window.
    upload_delay = clients[0].config.upload_delay
    clock.advance(upload_delay + 1.0)
    for client in clients:
        client.pump()
        client.flush()
    for meter in router.shard_meters:
        meter.reset()
    for channel in channels:
        channel.stats = NetworkStats()

    # Per-client write schedules and payload streams.
    arrival_rngs = [rng.fork(f"t{cid}") for cid in range(1, spec.n_clients + 1)]
    write_rngs = [rng.fork(f"w{cid}") for cid in range(1, spec.n_clients + 1)]

    t0 = clock.now()
    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(spec.n_clients):
        t = t0 + _next_gap(spec, arrival_rngs[i], wave=0)
        heapq.heappush(heap, (t, seq, i, _WRITE))
        seq += 1

    writes_left = [spec.writes_per_client] * spec.n_clients
    waves = [0] * spec.n_clients
    pending: List[List[float]] = [[] for _ in range(spec.n_clients)]
    # Streaming telemetry: fixed-memory windowed rollups instead of an
    # O(writes) latency buffer. Tracked unconditionally so reported
    # quantiles are identical with observability on or off.
    rollup = ShardWindows(
        spec.n_shards,
        spec.window_seconds,
        t0=t0,
        alpha=spec.sketch_alpha,
    )
    shard_stalls = [0] * spec.n_shards
    shard_busy = [0.0] * spec.n_shards
    shard_busy_total = [0.0] * spec.n_shards
    shard_depth = [0] * spec.n_shards
    shard_queue_peak = [0] * spec.n_shards
    completions: List[Tuple[float, int]] = []  # (done_time, shard)
    up_marks = [0] * spec.n_clients
    writes_issued = 0

    def drain_completions(now: float) -> None:
        while completions and completions[0][0] <= now:
            _, shard = heapq.heappop(completions)
            shard_depth[shard] -= 1

    while heap:
        t, _, i, kind = heapq.heappop(heap)
        now = clock.now()
        if t > now:
            clock.advance(t - now)
        drain_completions(t)
        client = clients[i]
        cid = i + 1
        path = f"/u{cid}/data.bin"
        if kind == _WRITE:
            wrng = write_rngs[i]
            offset = wrng.randint(0, spec.file_size - spec.write_size - 1)
            client.write(path, offset, wrng.random_bytes(spec.write_size))
            client.close(path)
            pending[i].append(t)
            writes_issued += 1
            writes_left[i] -= 1
            obs.inc("fleet.writes.issued")
            heapq.heappush(heap, (t + upload_delay + 1e-9, seq, i, _PUMP))
            seq += 1
            if writes_left[i] > 0:
                waves[i] += 1
                gap = _next_gap(spec, arrival_rngs[i], wave=waves[i])
                base = t if spec.arrival == "poisson" else t0
                heapq.heappush(heap, (base + gap, seq, i, _WRITE))
                seq += 1
        else:  # _PUMP
            shard = home_shard[i]
            meter = router.shard_meters[shard]
            ticks_before = meter.total
            client.pump()
            shipped = channels[i].stats.up_bytes > up_marks[i]
            if not shipped:
                continue
            up_marks[i] = channels[i].stats.up_bytes
            service = (meter.total - ticks_before) * spec.tick_seconds
            start = max(t, shard_busy[shard])
            done = start + service
            shard_busy[shard] = done
            shard_busy_total[shard] += service
            heapq.heappush(completions, (done, shard))
            shard_depth[shard] += 1
            if shard_depth[shard] > shard_queue_peak[shard]:
                shard_queue_peak[shard] = shard_depth[shard]
            rollup.record_depth(shard, t, shard_depth[shard])
            rollup.record_busy(shard, start, service)
            if obs.enabled:
                obs.set_gauge(
                    "fleet.shard.queue_depth", shard_depth[shard], shard=shard
                )
                obs.inc("fleet.shard.busy_time", service, shard=shard)
            for write_t in pending[i]:
                latency = done - write_t
                rollup.record_latency(shard, done, latency)
                obs.observe("fleet.sync.latency", latency)
                if latency > spec.stall_horizon:
                    shard_stalls[shard] += 1
                    if obs.enabled:
                        obs.event(
                            "health.stall",
                            shard=shard,
                            client=cid,
                            path=path,
                            waited=latency,
                        )
            pending[i].clear()

    # Anything still queued (a write whose pump raced the heap drain)
    # ships at the end of the horizon.
    for i, client in enumerate(clients):
        if not pending[i]:
            continue
        shard = home_shard[i]
        meter = router.shard_meters[shard]
        ticks_before = meter.total
        client.flush()
        service = (meter.total - ticks_before) * spec.tick_seconds
        start = max(clock.now(), shard_busy[shard])
        done = start + service
        shard_busy[shard] = done
        shard_busy_total[shard] += service
        rollup.record_busy(shard, start, service)
        for write_t in pending[i]:
            latency = done - write_t
            rollup.record_latency(shard, done, latency)
            obs.observe("fleet.sync.latency", latency)
            if latency > spec.stall_horizon:
                shard_stalls[shard] += 1
                if obs.enabled:
                    obs.event(
                        "health.stall",
                        shard=shard,
                        client=i + 1,
                        path=f"/u{i + 1}/data.bin",
                        waited=latency,
                    )
        pending[i].clear()

    if obs.enabled:
        _emit_telemetry(obs, spec, rollup, shard_stalls)

    overall = rollup.overall_sketch()
    total_up = sum(c.stats.up_bytes for c in channels)
    conflicts = sum(
        1 for shard in router.shards for r in shard.apply_log if not r.ok
    )
    return FleetResult(
        spec=spec,
        writes=writes_issued,
        p50_latency=overall.quantile(0.50),
        p90_latency=overall.quantile(0.90),
        p99_latency=overall.quantile(0.99),
        max_latency=overall.max if overall.count else 0.0,
        shard_ticks=[m.total for m in router.shard_meters],
        shard_busy=shard_busy_total,
        shard_queue_peak=shard_queue_peak,
        total_up_bytes=total_up,
        duration=clock.now(),
        migrations=router.migrations,
        conflicts=conflicts,
        rollup=rollup,
        shard_stalls=shard_stalls,
    )


def _emit_telemetry(
    obs: Observability,
    spec: FleetSpec,
    rollup: ShardWindows,
    shard_stalls: List[int],
) -> None:
    """Flush the streaming rollups into the obs sink (obs-enabled only)."""
    obs.set_gauge("fleet.window.seconds", spec.window_seconds)
    for cell in rollup.windows():
        obs.inc("fleet.window.rollovers", shard=cell.shard)
        obs.event(
            "fleet.window.closed",
            shard=cell.shard,
            window=cell.window,
            start=cell.start,
            end=cell.end,
            writes=cell.writes,
            p50=cell.sketch.quantile(0.50),
            p99=cell.sketch.quantile(0.99),
            queue_peak=cell.queue_peak,
            busy=cell.busy,
        )
    report = health_from_windows(
        rollup,
        slo_seconds=spec.slo_seconds,
        stall_horizon=spec.stall_horizon,
        stalls_by_shard={s: n for s, n in enumerate(shard_stalls) if n},
    )
    for shard_health in report.shards:
        obs.set_gauge(
            "health.slo.attainment",
            shard_health.slo_attainment,
            shard=shard_health.shard,
        )
        if shard_health.stalls:
            obs.inc("health.stalls", shard_health.stalls, shard=shard_health.shard)
        if shard_health.regressed_windows:
            obs.inc(
                "health.regressions",
                len(shard_health.regressed_windows),
                shard=shard_health.shard,
            )


def _next_gap(spec: FleetSpec, rng: DeterministicRandom, *, wave: int) -> float:
    """Next arrival offset for one client.

    Poisson: an exponential gap from the previous write. Bursty: wave
    ``k`` fires at ``(k + 1) * burst_every`` plus uniform jitter — every
    client hits the same wall-clock wave, which is the worst case for a
    FIFO shard core.
    """
    if spec.arrival == "poisson":
        return -math.log(1.0 - rng.random()) * spec.mean_gap
    return (wave + 1) * spec.burst_every + rng.random() * spec.burst_jitter


def _quantile(sorted_values: List[float], q: float) -> float:
    """Exact linear-interpolation quantile of a pre-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


# The committed scaling curve: fixed spec per point so the BENCH_fleet
# snapshot is comparable across commits. 8 shards throughout; client
# count sweeps through the 10^4 acceptance scale; the bursty point
# stresses queueing at the same size as the largest poisson point.
FLEET_CURVE: Tuple[FleetSpec, ...] = (
    FleetSpec(n_clients=1_000, n_shards=8),
    FleetSpec(n_clients=4_000, n_shards=8),
    FleetSpec(n_clients=10_000, n_shards=8),
    FleetSpec(n_clients=10_000, n_shards=8, arrival="bursty"),
)


def fleet_curve(
    specs: Tuple[FleetSpec, ...] = FLEET_CURVE,
    *,
    obs: Observability = NULL_OBS,
) -> List[FleetResult]:
    """Run the committed scaling curve (or a custom sweep)."""
    return [run_fleet(spec, obs=obs) for spec in specs]


def bench_doc(results: List[FleetResult]) -> Dict[str, object]:
    """``BENCH_fleet.json`` document for :mod:`tools.bench_gate`."""
    metrics: Dict[str, float] = {}
    for result in results:
        spec = result.spec
        key = f"fleet-{spec.n_clients}x{spec.n_shards}-{spec.arrival}"
        metrics[f"{key}/p50_latency_s"] = result.p50_latency
        metrics[f"{key}/p99_latency_s"] = result.p99_latency
        metrics[f"{key}/shard_ticks_max"] = max(result.shard_ticks)
        metrics[f"{key}/ticks_per_client"] = result.ticks_per_client
        metrics[f"{key}/up_bytes"] = float(result.total_up_bytes)
    return {"bench": "fleet", "schema": 1, "metrics": metrics}
