"""Local read/write performance model (paper Table III, Section IV-D).

The paper measures filebench throughput on four stacks: native ext4,
loopback FUSE, DeltaCFS, and DeltaCFS with checksums. We cannot measure
real disks, so we combine:

- a **disk/latency model** with explicit parameters (write bandwidth,
  cached-read cost, per-op costs, fsync commit cost);
- the **real DeltaCFS client** executing the op stream (server detached,
  uploads dropped — the paper does the same: "we drop the data dequeued
  from Sync Queue"), so the sync engine's data structures actually run.

Stack effects reproduced (and where their parameters come from):

- **FUSE** adds a user/kernel round trip per op, but its kernel module's
  cache and prefetch *help* read-heavy workloads — Table III shows FUSE
  beating native on Varmail and Webserver, and the paper notes FUSE's 2×
  request latency is hidden by multithreaded IO on Fileserver.
- **DeltaCFS** processes every written byte (hash-table lookup, node
  append, enqueue memcpy) and must pack write nodes on fsync; under
  sustained writes the Sync Queue fills and back-pressure throttles the
  writer ("Sync Queue becomes full very quickly" — Fileserver, Varmail).
- **DeltaCFSc** adds rolling-checksum computation on the write path;
  "this latency is not a problem for Varmail and Webserver, since it is
  very small compared to disk seek latency" — it only shows where raw
  bandwidth dominates (Fileserver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.config import DeltaCFSConfig
from repro.core.client import DeltaCFSClient
from repro.vfs.filesystem import MemoryFileSystem
from repro.workloads.filebench import FilebenchOp

STACKS = ("native", "fuse", "deltacfs", "deltacfsc")


@dataclass(frozen=True)
class LatencyModel:
    """Explicit timing parameters (seconds and bytes/second)."""

    # base disk model
    write_bandwidth: float = 125e6  # sequential write to disk
    read_bandwidth: float = 350e6  # page-cache read streaming
    read_op_cost: float = 0.00078  # open+stat+read+close round trip
    write_op_cost: float = 0.00004
    fsync_cost: float = 0.0023  # journal commit + seek
    create_cost: float = 0.0004
    delete_cost: float = 0.0003
    # FUSE layer
    fuse_write_op_cost: float = 0.00002  # extra round trip (hidden by MT IO)
    fuse_read_factor: float = 0.94  # kernel-module cache + prefetch benefit
    fuse_fsync_factor: float = 0.78  # writeback batching of the commit
    # DeltaCFS layer
    sync_process_bandwidth: float = 110e6  # per-written-byte engine work
    pack_on_fsync_cost: float = 0.0011  # pack node + commit queue state
    drain_bandwidth: float = 50e6  # background upload drain
    queue_stall_bytes: int = 48 * 1024 * 1024  # back-pressure threshold
    # checksum store (DeltaCFSc)
    checksum_write_bandwidth: float = 280e6  # rolling checksum on writes
    checksum_read_bandwidth: float = 2.0e9  # verify on cached reads


@dataclass
class MicrobenchResult:
    """Throughput of one (workload, stack) combination.

    ``input_mb`` (MiB moved) and ``block_size`` (the sync engine's rsync
    block, 0 for stacks without one) ride along so a serialized result is
    self-describing: MB/s stays recoverable as ``input_mb / seconds``
    without re-deriving the workload, and the same row shape serves both
    the modelled lane and the wall-clock lane's context section.
    """

    workload: str
    stack: str
    mb_per_s: float
    bytes_moved: int
    seconds: float
    stalls: int = 0
    block_size: int = 0
    input_mb: float = 0.0


def run_microbench(
    workload: str,
    ops: List[FilebenchOp],
    stack: str,
    *,
    model: LatencyModel | None = None,
) -> MicrobenchResult:
    """Execute ``ops`` on ``stack`` and return modelled throughput."""
    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r}; pick one of {STACKS}")
    model = model if model is not None else LatencyModel()

    fs = MemoryFileSystem()
    for directory in ("/fset", "/mail", "/htdocs"):
        fs.mkdir(directory)
    block_size = 0
    if stack in ("deltacfs", "deltacfsc"):
        config = DeltaCFSConfig(
            enable_checksums=(stack == "deltacfsc"),
            enable_undo_log=False,  # microbench writes are appends
        )
        block_size = config.block_size
        surface: object = DeltaCFSClient(fs, server=None, config=config)
    else:
        surface = fs

    is_fuse_stack = stack != "native"
    is_delta_stack = stack in ("deltacfs", "deltacfsc")
    with_checksums = stack == "deltacfsc"

    sizes: Dict[str, int] = {}
    total_time = 0.0
    bytes_moved = 0
    queued = 0.0
    stalls = 0

    for op in ops:
        dt = 0.0
        if op.kind == "create":
            surface.create(op.path)
            sizes[op.path] = 0
            dt += model.create_cost
        elif op.kind in ("write", "append"):
            offset = sizes.get(op.path, 0) if op.kind == "append" else op.offset
            data = b"\xa5" * op.size
            surface.write(op.path, offset, data)
            sizes[op.path] = max(sizes.get(op.path, 0), offset + op.size)
            bytes_moved += op.size
            dt += model.write_op_cost + op.size / model.write_bandwidth
            if is_fuse_stack:
                dt += model.fuse_write_op_cost
            if is_delta_stack:
                dt += op.size / model.sync_process_bandwidth
                queued += op.size
            if with_checksums:
                dt += op.size / model.checksum_write_bandwidth
        elif op.kind == "read":
            size = sizes.get(op.path, 0)
            if size:
                surface.read(op.path, 0, size)
                bytes_moved += size
                read_time = model.read_op_cost + size / model.read_bandwidth
                if is_fuse_stack:
                    read_time *= model.fuse_read_factor
                dt += read_time
                if with_checksums:
                    dt += size / model.checksum_read_bandwidth
        elif op.kind == "delete":
            if surface.exists(op.path):
                surface.unlink(op.path)
            sizes.pop(op.path, None)
            dt += model.delete_cost
        elif op.kind == "fsync":
            commit = model.fsync_cost
            if is_fuse_stack:
                commit *= model.fuse_fsync_factor
            if is_delta_stack:
                commit += model.pack_on_fsync_cost
            dt += commit
        elif op.kind == "close":
            surface.close(op.path)
        elif op.kind == "open":
            pass
        else:
            raise ValueError(f"unknown filebench op kind {op.kind!r}")

        # background drain + back-pressure for the DeltaCFS stacks
        if is_delta_stack:
            queued = max(0.0, queued - dt * model.drain_bandwidth)
            if queued > model.queue_stall_bytes:
                stall = (queued - model.queue_stall_bytes) / model.drain_bandwidth
                dt += stall
                queued = float(model.queue_stall_bytes)
                stalls += 1
        total_time += dt

    input_mb = bytes_moved / (1024 * 1024)
    mbps = input_mb / total_time if total_time > 0 else 0.0
    return MicrobenchResult(
        workload=workload,
        stack=stack,
        mb_per_s=mbps,
        bytes_moved=bytes_moved,
        seconds=total_time,
        stalls=stalls,
        block_size=block_size,
        input_mb=input_mb,
    )


def microbench_snapshot(results: List[MicrobenchResult]) -> Dict[str, object]:
    """The ``BENCH_table3.json`` document for ``tools/bench_gate.py``.

    The latency model is deterministic, so the baseline can be exact:
    every metric (modelled MB/s, modelled seconds, input MiB, block size)
    gates at the default tolerance. Keys are ``workload/stack/metric``.
    """
    metrics: Dict[str, float] = {}
    for r in results:
        prefix = f"{r.workload}/{r.stack}"
        if f"{prefix}/mb_per_s" in metrics:
            raise ValueError(f"duplicate microbench row {prefix!r}")
        metrics[f"{prefix}/mb_per_s"] = round(r.mb_per_s, 4)
        metrics[f"{prefix}/seconds"] = round(r.seconds, 6)
        metrics[f"{prefix}/input_mb"] = round(r.input_mb, 4)
        metrics[f"{prefix}/block_size"] = float(r.block_size)
    return {"bench": "table3", "schema": 1, "metrics": metrics}
