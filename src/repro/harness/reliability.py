"""The Table IV reliability scenarios (paper Section IV-E).

Three tests per service:

- **Corrupted data**: flip a bit beneath the file system, restart the sync
  client, write 1 byte to the file. Dropbox/Seafile cannot tell user
  modification from corruption — their restart rescan uploads the corrupted
  content. DeltaCFS's block checksums catch the mismatch and recover from
  the cloud.
- **Crash inconsistency**: power-cut while a file is being written, then
  (simulating ordered-journaling's torn window) inject data that changed
  without metadata. Dropbox/Seafile upload the inconsistent file when they
  notice it changed; DeltaCFS's post-crash sweep compares blocks against
  the checksum store and flags the file.
- **Causal upload order**: create files of different sizes in order.
  DeltaCFS's FIFO Sync Queue preserves the update order on the cloud;
  Dropbox/Seafile upload concurrently per file, so small files routinely
  complete first.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import CorruptionDetected
from repro.faults.corruption import flip_bit
from repro.faults.crash import inject_crash_inconsistency, simulate_crash
from repro.harness.runner import build_system

_FILE = "/data.bin"
_SIZE = 256 * 1024


def _seed_content(n: int = _SIZE) -> bytes:
    return bytes((i * 131 + 17) % 256 for i in range(n))


def _build_and_seed(service: str):
    system = build_system(service)
    system.fs.create(_FILE)
    system.fs.write(_FILE, 0, _seed_content())
    system.fs.close(_FILE)
    for _ in range(6):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()
    return system


def _backing_fs(system):
    if system.name == "deltacfs":
        return system.client.inner
    return system.client.fs.inner  # WatchedFileSystem -> MemoryFileSystem


def corruption_test(service: str) -> str:
    """Returns "detect" or "upload" for the corrupted-data scenario."""
    system = _build_and_seed(service)
    original = _seed_content()
    corrupt_offset = 64 * 1024  # inside block 16
    flip_bit(_backing_fs(system), _FILE, corrupt_offset, bit=3)

    # restart + the 1-byte user write (far from the corrupted block)
    if service == "deltacfs":
        system.fs.write(_FILE, 10, b"x")
        system.fs.close(_FILE)
        # the application reads the file: verification runs here
        system.fs.read(_FILE, 0, None)
        system.clock.advance(6.0)
        system.pump(system.clock.now())
        system.flush()
        detected = system.client.stats.corruptions_detected > 0
        server_byte = system.server.file_content(_FILE)[corrupt_offset]
        uploaded_corruption = server_byte != original[corrupt_offset]
        return "detect" if detected and not uploaded_corruption else "upload"

    system.fs.write(_FILE, 10, b"x")
    system.fs.close(_FILE)
    system.clock.advance(6.0)
    system.pump(system.clock.now())
    system.flush()
    server_byte = system.server.file_content(_FILE)[corrupt_offset]
    return "upload" if server_byte != original[corrupt_offset] else "detect"


def crash_inconsistency_test(service: str) -> str:
    """Returns "detect" or "upload" for the crash-inconsistency scenario."""
    system = _build_and_seed(service)

    # a write is in flight when the power goes out
    system.fs.write(_FILE, 1024, b"q" * 512)

    if service == "deltacfs":
        dirty = simulate_crash(system.client)
        offset = inject_crash_inconsistency(_backing_fs(system), _FILE, seed=7)
        bad = system.client.crash_recovery_scan(sorted(set(dirty) | {_FILE}))
        if _FILE in bad:
            # prevented from uploading; pull the correct cloud version
            system.client.recover_file(_FILE)
            return "detect"
        return "upload"

    inject_crash_inconsistency(_backing_fs(system), _FILE, seed=7)
    # the restart rescan notices the (already dirty) file and uploads it
    system.clock.advance(6.0)
    system.pump(system.clock.now())
    system.flush()
    server = system.server.file_content(_FILE)
    local = _backing_fs(system).read_file(_FILE)
    return "upload" if server == local else "detect"


def causal_order_test(service: str) -> bool:
    """True when upload order matches update order for mixed-size files."""
    sizes = [("/big.bin", 2 * 1024 * 1024), ("/small.bin", 20 * 1024), ("/mid.bin", 500 * 1024)]
    system = build_system(service)
    for path, size in sizes:
        system.fs.create(path)
        system.fs.write(path, 0, b"\x7e" * size)
        system.fs.close(path)
        system.clock.advance(0.3)

    if service == "deltacfs":
        system.clock.advance(6.0)
        system.pump(system.clock.now())
        system.flush()
        order = _first_touch_order(system.server.upload_order)
        return order == [p for p, _ in sizes]

    # Dropbox/Seafile transfer concurrently (one TCP stream per file);
    # completion time is proportional to size, so the arrival order on the
    # cloud is size order, not update order.
    system.clock.advance(6.0)
    system.pump(system.clock.now())
    system.flush()
    bandwidth = system.channel.model.bandwidth_up
    completions: List[Tuple[float, str]] = [
        (size / bandwidth, path) for path, size in sizes
    ]
    arrival = [path for _, path in sorted(completions)]
    return arrival == [p for p, _ in sizes]


def _first_touch_order(upload_order: List[str]) -> List[str]:
    seen = []
    for path in upload_order:
        if path not in seen:
            seen.append(path)
    return seen
