"""The Table IV reliability scenarios (paper Section IV-E).

Three tests per service:

- **Corrupted data**: flip a bit beneath the file system, restart the sync
  client, write 1 byte to the file. Dropbox/Seafile cannot tell user
  modification from corruption — their restart rescan uploads the corrupted
  content. DeltaCFS's block checksums catch the mismatch and recover from
  the cloud.
- **Crash inconsistency**: power-cut while a file is being written, then
  (simulating ordered-journaling's torn window) inject data that changed
  without metadata. Dropbox/Seafile upload the inconsistent file when they
  notice it changed; DeltaCFS's post-crash sweep compares blocks against
  the checksum store and flags the file.
- **Causal upload order**: create files of different sizes in order.
  DeltaCFS's FIFO Sync Queue preserves the update order on the cloud;
  Dropbox/Seafile upload concurrently per file, so small files routinely
  complete first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.common.errors import CorruptionDetected
from repro.common.rng import DeterministicRandom
from repro.core.client import DeltaCFSClient
from repro.faults.corruption import flip_bit
from repro.faults.crash import inject_crash_inconsistency, simulate_crash
from repro.faults.network import NetworkFaults
from repro.harness.runner import build_system
from repro.kvstore.kv import KVStore, LogStructuredKV, MemoryKV
from repro.net.reliable import RetryPolicy
from repro.net.transport import Channel
from repro.obs import NULL_OBS, Observability
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import MemoryFileSystem
from repro.workloads.traces import replay
from repro.workloads.word import word_trace

_FILE = "/data.bin"
_SIZE = 256 * 1024


def _seed_content(n: int = _SIZE) -> bytes:
    return bytes((i * 131 + 17) % 256 for i in range(n))


def _build_and_seed(service: str):
    system = build_system(service)
    system.fs.create(_FILE)
    system.fs.write(_FILE, 0, _seed_content())
    system.fs.close(_FILE)
    for _ in range(6):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()
    return system


def _backing_fs(system):
    if system.name == "deltacfs":
        return system.client.inner
    return system.client.fs.inner  # WatchedFileSystem -> MemoryFileSystem


def corruption_test(service: str) -> str:
    """Returns "detect" or "upload" for the corrupted-data scenario."""
    system = _build_and_seed(service)
    original = _seed_content()
    corrupt_offset = 64 * 1024  # inside block 16
    flip_bit(_backing_fs(system), _FILE, corrupt_offset, bit=3)

    # restart + the 1-byte user write (far from the corrupted block)
    if service == "deltacfs":
        system.fs.write(_FILE, 10, b"x")
        system.fs.close(_FILE)
        # the application reads the file: verification runs here
        system.fs.read(_FILE, 0, None)
        system.clock.advance(6.0)
        system.pump(system.clock.now())
        system.flush()
        detected = system.client.stats.corruptions_detected > 0
        server_byte = system.server.file_content(_FILE)[corrupt_offset]
        uploaded_corruption = server_byte != original[corrupt_offset]
        return "detect" if detected and not uploaded_corruption else "upload"

    system.fs.write(_FILE, 10, b"x")
    system.fs.close(_FILE)
    system.clock.advance(6.0)
    system.pump(system.clock.now())
    system.flush()
    server_byte = system.server.file_content(_FILE)[corrupt_offset]
    return "upload" if server_byte != original[corrupt_offset] else "detect"


def crash_inconsistency_test(service: str) -> str:
    """Returns "detect" or "upload" for the crash-inconsistency scenario."""
    system = _build_and_seed(service)

    # a write is in flight when the power goes out
    system.fs.write(_FILE, 1024, b"q" * 512)

    if service == "deltacfs":
        dirty = simulate_crash(system.client)
        offset = inject_crash_inconsistency(_backing_fs(system), _FILE, seed=7)
        bad = system.client.crash_recovery_scan(sorted(set(dirty) | {_FILE}))
        if _FILE in bad:
            # prevented from uploading; pull the correct cloud version
            system.client.recover_file(_FILE)
            return "detect"
        return "upload"

    inject_crash_inconsistency(_backing_fs(system), _FILE, seed=7)
    # the restart rescan notices the (already dirty) file and uploads it
    system.clock.advance(6.0)
    system.pump(system.clock.now())
    system.flush()
    server = system.server.file_content(_FILE)
    local = _backing_fs(system).read_file(_FILE)
    return "upload" if server == local else "detect"


def causal_order_test(service: str) -> bool:
    """True when upload order matches update order for mixed-size files."""
    sizes = [("/big.bin", 2 * 1024 * 1024), ("/small.bin", 20 * 1024), ("/mid.bin", 500 * 1024)]
    obs = Observability()
    system = build_system(service, obs=obs)
    for path, size in sizes:
        system.fs.create(path)
        system.fs.write(path, 0, b"\x7e" * size)
        system.fs.close(path)
        system.clock.advance(0.3)

    if service == "deltacfs":
        system.clock.advance(6.0)
        system.pump(system.clock.now())
        system.flush()
        order = _first_touch_order(system.server.upload_order)
        return order == [p for p, _ in sizes]

    # Dropbox/Seafile have no FIFO upload queue: each sync round walks the
    # dirty set in name order, so the order content lands on the cloud is
    # decoupled from the order the user produced it. Read the arrival
    # order off the *simulated* channel — the last uplink completion time
    # of each file's messages — rather than any analytic formula.
    system.clock.advance(6.0)
    system.pump(system.clock.now())
    system.flush()
    wanted = {path for path, _ in sizes}
    completion: Dict[str, float] = {}
    for ev in obs.tracer.events():
        if ev.type != "event" or ev.name != "channel.upload":
            continue
        path = str(ev.attrs.get("path", ""))
        if path in wanted:
            done = float(ev.attrs["done_at"])
            completion[path] = max(completion.get(path, 0.0), done)
    arrival = [p for p, _ in sorted(completion.items(), key=lambda kv: kv[1])]
    return arrival == [p for p, _ in sizes]


def _first_touch_order(upload_order: List[str]) -> List[str]:
    seen = []
    for path in upload_order:
        if path not in seen:
            seen.append(path)
    return seen


# -- lossy-link convergence (the fault-tolerant transport's acceptance) -----


@dataclass
class LossOutcome:
    """Result of one DeltaCFS run over a seeded lossy link."""

    loss_rate: float
    converged: bool
    mismatched: List[str] = field(default_factory=list)
    conflict_copies: int = 0
    conflicts: int = 0
    retries: int = 0
    timeouts: int = 0
    dedup_drops: int = 0
    up_bytes: int = 0
    down_bytes: int = 0
    retransmit_log: List[Tuple[float, int, int]] = field(default_factory=list)


# -- crash → recover → verify round trip (the journal's acceptance) ---------


@dataclass
class CrashRecoveryOutcome:
    """Result of one crash→recover→verify round trip."""

    converged: bool
    mismatched: List[str] = field(default_factory=list)
    dirty_bytes: int = 0
    damaged_span: int = 0
    recovery_up_bytes: int = 0
    recovery_down_bytes: int = 0
    nodes_replayed: int = 0
    nodes_already_applied: int = 0
    nodes_rebased: int = 0
    blocks_repaired: int = 0
    full_file_fallbacks: int = 0

    @property
    def bounded(self) -> bool:
        """Recovery traffic stayed below one seed-file size in each
        direction — i.e. no whole-file re-upload or re-download happened."""
        return (
            self.recovery_up_bytes < _SIZE and self.recovery_down_bytes < _SIZE
        )


def _reopened(kv: KVStore) -> KVStore:
    """Model the restart for the durable KVs: close and reopen from disk.

    A :class:`MemoryKV` survives by object identity (the in-process crash
    model); a :class:`LogStructuredKV` goes through a real close/replay
    cycle so the round trip also exercises WAL recovery.
    """
    if isinstance(kv, LogStructuredKV):
        path, sync = kv._path, kv._sync
        kv.close()
        return LogStructuredKV(path, sync=sync)
    return kv


def crash_recovery_roundtrip(
    *,
    seed: int = 7,
    dirty_writes: int = 4,
    write_size: int = 2048,
    kv_factory: Optional[Callable[[str], KVStore]] = None,
    obs: Observability = NULL_OBS,
) -> CrashRecoveryOutcome:
    """Crash a journaled client mid-burst, restart it, recover, verify.

    A full process-death model: the first client instance is abandoned
    (its volatile queue/relations/undo vanish with it), crash damage is
    injected beneath the file system, and a **fresh** client is built over
    the surviving file system + durable KVs. ``recover()`` must converge
    the client and the cloud byte-identically while re-uploading only the
    dirty burst and re-downloading only the damaged span.

    ``kv_factory`` builds the two durable stores (called with ``"journal"``
    and ``"checksums"``); default is in-memory. Pass a factory returning
    :class:`LogStructuredKV` (``sync=True`` for the journal) to exercise
    the real WAL restart path.
    """
    factory = kv_factory if kv_factory is not None else (lambda _name: MemoryKV())
    clock = VirtualClock()
    obs.bind_clock(clock)
    server = CloudServer(obs=obs)
    fs = MemoryFileSystem()
    journal_kv = factory("journal")
    checksum_kv = factory("checksums")
    rng = DeterministicRandom(seed).fork("crash-roundtrip")

    client = DeltaCFSClient(
        fs,
        server=server,
        channel=Channel(),
        clock=clock,
        checksum_kv=checksum_kv,
        journal_kv=journal_kv,
        obs=obs,
    )
    client.create(_FILE)
    client.write(_FILE, 0, _seed_content())
    client.close(_FILE)
    for _ in range(6):
        clock.advance(1.0)
        client.pump(clock.now())
    client.flush()

    # The dirty burst the power cut interrupts: journaled, never uploaded.
    dirty_bytes = 0
    for _ in range(dirty_writes):
        offset = rng.randint(0, _SIZE - write_size)
        client.write(_FILE, offset, rng.random_bytes(write_size))
        dirty_bytes += write_size
    expected = fs.read_file(_FILE)

    # Power cut: the process dies. Drop the client, restart the KVs.
    server.unregister_client(client.client_id)
    journal_kv = _reopened(journal_kv)
    checksum_kv = _reopened(checksum_kv)
    damaged_span = 4096
    inject_crash_inconsistency(fs, _FILE, seed=seed, span=damaged_span)

    # Restart: a fresh client over the surviving fs + durable stores,
    # with a fresh channel so its stats isolate the recovery traffic.
    channel = Channel()
    client2 = DeltaCFSClient(
        fs,
        server=server,
        channel=channel,
        clock=clock,
        client_id=client.client_id,
        checksum_kv=checksum_kv,
        journal_kv=journal_kv,
        obs=obs,
    )
    report = client2.recover()
    for _ in range(6):
        clock.advance(1.0)
        client2.pump(clock.now())
    client2.flush()

    mismatched: List[str] = []
    local = fs.read_file(_FILE)
    if local != expected:
        mismatched.append(_FILE + " (local diverged from pre-crash content)")
    if not server.store.exists(_FILE) or server.file_content(_FILE) != local:
        mismatched.append(_FILE)
    return CrashRecoveryOutcome(
        converged=not mismatched,
        mismatched=mismatched,
        dirty_bytes=dirty_bytes,
        damaged_span=damaged_span,
        recovery_up_bytes=channel.stats.up_bytes,
        recovery_down_bytes=channel.stats.down_bytes,
        nodes_replayed=report.nodes_replayed,
        nodes_already_applied=report.nodes_already_applied,
        nodes_rebased=report.nodes_rebased,
        blocks_repaired=report.blocks_repaired,
        full_file_fallbacks=report.full_file_fallbacks,
    )


def loss_convergence_test(
    loss_rate: float,
    *,
    dup_rate: float = 0.0,
    reorder_rate: float = 0.0,
    seed: int = 0,
    saves: int = 8,
    scale: int = 64,
) -> LossOutcome:
    """Run the Word trace over a lossy link; check byte-level convergence.

    The reliable transport must deliver exactly-once *effect* despite
    at-least-once delivery: after the run settles, every client file
    (outside the preservation tmp area) must be byte-identical on the
    cloud, with no spurious conflict copies materialized by retransmits.
    """
    faults = NetworkFaults(
        drop_prob=loss_rate, dup_prob=dup_rate, reorder_prob=reorder_rate
    )
    trace = word_trace(scale=scale, saves=saves)
    system = build_system(
        "deltacfs", faults=faults, retry=RetryPolicy(), fault_seed=seed
    )
    for path, content in sorted(trace.preload.items()):
        system.fs.create(path)
        if content:
            system.fs.write(path, 0, content)
        system.fs.close(path)
    for _ in range(12):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()  # settles the transport: preload fully acked
    system.reset_counters()

    replay(trace, system.fs, system.clock, pump=system.pump)
    for _ in range(10):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()

    client = system.client
    tmp = client.config.tmp_dir
    mismatched: List[str] = []
    client_paths = sorted(
        p
        for p in client.inner.walk_files()
        if not (p == tmp or p.startswith(tmp + "/"))
    )
    for path in client_paths:
        local = client.inner.read_file(path)
        if not system.server.store.exists(path):
            mismatched.append(path)
        elif system.server.file_content(path) != local:
            mismatched.append(path)
    conflict_copies = sum(
        1 for p in system.server.store.paths() if "conflicted copy" in p
    )
    transport = system.transport
    return LossOutcome(
        loss_rate=loss_rate,
        converged=not mismatched and conflict_copies == 0,
        mismatched=mismatched,
        conflict_copies=conflict_copies,
        conflicts=client.stats.conflicts,
        retries=transport.stats.retransmits if transport else 0,
        timeouts=transport.stats.timeouts if transport else 0,
        dedup_drops=system.server.dedup_drops,
        up_bytes=system.channel.stats.up_bytes,
        down_bytes=system.channel.stats.down_bytes,
        retransmit_log=list(transport.retransmit_log) if transport else [],
    )
