"""Uniform construction and trace execution for all five sync systems."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.dropbox import DropboxClient
from repro.baselines.fullsync import FullUploadClient
from repro.baselines.nfs import NFSClient
from repro.baselines.seafile import SeafileClient
from repro.common.clock import VirtualClock
from repro.common.config import DeltaCFSConfig
from repro.core.client import DeltaCFSClient
from repro.cost.meter import CostMeter
from repro.cost.profile import CostProfile, PC_PROFILE
from repro.faults.network import NO_FAULTS, NetworkFaults
from repro.metrics.collector import RunResult
from repro.net.reliable import ReliableTransport, RetryPolicy
from repro.net.transport import Channel, LossyChannel, NetworkModel, NetworkStats, PC_NETWORK
from repro.obs import NULL_OBS, Observability
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import FileSystemAPI, MemoryFileSystem
from repro.workloads.traces import Trace, replay

SOLUTIONS = ("deltacfs", "dropbox", "seafile", "nfs", "fullsync")


@dataclass
class SystemUnderTest:
    """One sync system wired to a simulated cloud, ready to replay a trace."""

    name: str
    fs: FileSystemAPI  # the surface the workload writes to
    clock: VirtualClock
    channel: Channel
    client_meter: CostMeter
    server_meter: CostMeter
    server: CloudServer
    pump: Callable[[float], object]
    flush: Callable[[], object]
    client: object  # the underlying client, for system-specific inspection
    transport: Optional[ReliableTransport] = None  # set in reliable mode

    def reset_counters(self) -> None:
        """Zero meters and traffic counters (after preload)."""
        self.client_meter.reset()
        self.server_meter.reset()
        self.channel.stats = NetworkStats()


def build_system(
    name: str,
    *,
    profile: CostProfile = PC_PROFILE,
    network: NetworkModel = PC_NETWORK,
    config: Optional[DeltaCFSConfig] = None,
    clock: Optional[VirtualClock] = None,
    sync_interval: Optional[float] = None,
    wait_for_idle_link: Optional[bool] = None,
    dropbox_dedup_size: int = 4 * 1024 * 1024,
    seafile_chunk_size: int = 1024 * 1024,
    obs: Observability = NULL_OBS,
    faults: NetworkFaults = NO_FAULTS,
    retry: Optional[RetryPolicy] = None,
    fault_seed: int = 0,
    journal_kv=None,
) -> SystemUnderTest:
    """Construct a sync system by name.

    ``journal_kv`` (DeltaCFS only) attaches a crash-recovery journal backed
    by the given KV store, enabling ``client.recover()`` after a crash.

    ``profile`` selects PC vs mobile CPU costs; ``network`` the link model
    (slow WAN for mobile). ``wait_for_idle_link`` defaults to True for the
    fullsync (Dropsync) client, False otherwise. ``obs`` (default: the
    no-op ``NULL_OBS``) is wired into the channel, the server, and — for
    DeltaCFS — the client engine; its trace clock is bound to the run's
    virtual clock.

    A non-lossless ``faults`` plan (or an explicit ``retry`` policy) builds
    the system in *reliable mode*: uploads travel over a
    :class:`LossyChannel` seeded with ``fault_seed``, wrapped in
    :class:`ReliableTransport` envelopes, with the flush wrapper settling
    the transport (retransmitting until every message is acked). Only the
    DeltaCFS client supports reliable mode.

    When a trace is generated at ``1/scale`` of the paper's file sizes, the
    *structural* baseline granularities (Dropbox's 4 MB dedup unit,
    Seafile's 1 MB chunk) should be scaled by the same factor so the
    file-to-chunk ratios stay faithful; granularities tied to absolute
    write sizes (the 4 KB rsync block and NFS page) are not scaled.
    """
    if name not in SOLUTIONS:
        raise ValueError(f"unknown solution {name!r}; pick one of {SOLUTIONS}")
    reliable = not faults.lossless or retry is not None
    if reliable and name != "deltacfs":
        raise ValueError(
            f"reliable mode (fault injection) is only wired for 'deltacfs', "
            f"not {name!r}"
        )
    if journal_kv is not None and name != "deltacfs":
        raise ValueError(
            f"the crash-recovery journal is only wired for 'deltacfs', "
            f"not {name!r}"
        )
    clock = clock if clock is not None else VirtualClock()
    obs.bind_clock(clock)
    client_meter = CostMeter(profile)
    server_meter = CostMeter(profile if name == "fullsync" else PC_PROFILE)
    server = CloudServer(meter=server_meter, obs=obs)
    if reliable:
        channel: Channel = LossyChannel(
            model=network,
            faults=faults,
            seed=fault_seed,
            client_meter=client_meter,
            server_meter=server_meter,
            obs=obs,
        )
    else:
        channel = Channel(
            model=network,
            client_meter=client_meter,
            server_meter=server_meter,
            obs=obs,
        )

    if name == "deltacfs":
        transport: Optional[ReliableTransport] = None
        if reliable:
            transport = ReliableTransport(
                channel,
                server,
                policy=retry,
                seed=fault_seed,
                obs=obs,
            )
        client = DeltaCFSClient(
            MemoryFileSystem(),
            server=server,
            channel=channel,
            clock=clock,
            meter=client_meter,
            config=config,
            obs=obs,
            transport=transport,
            journal_kv=journal_kv,
        )
        if transport is not None:
            transport.client_id = client.client_id

        def flush() -> object:
            shipped = client.flush()
            if transport is not None:
                # Drive retransmission until every envelope is acked —
                # flush alone cannot advance virtual time.
                transport.settle(clock)
            return shipped

        return SystemUnderTest(
            name=name,
            fs=client,
            clock=clock,
            channel=channel,
            client_meter=client_meter,
            server_meter=server_meter,
            server=server,
            pump=client.pump,
            flush=flush,
            client=client,
            transport=transport,
        )

    if name == "nfs":
        # NFS traffic is not TLS-wrapped.
        channel = Channel(
            model=NetworkModel(
                bandwidth_up=network.bandwidth_up,
                bandwidth_down=network.bandwidth_down,
                latency=network.latency,
                encrypted=False,
            ),
            client_meter=client_meter,
            server_meter=server_meter,
            obs=obs,
        )
        client = NFSClient(
            MemoryFileSystem(),
            server=server,
            channel=channel,
            meter=client_meter,
        )
        return SystemUnderTest(
            name=name,
            fs=client,
            clock=clock,
            channel=channel,
            client_meter=client_meter,
            server_meter=server_meter,
            server=server,
            pump=client.pump,
            flush=lambda: client.flush(clock.now()),
            client=client,
        )

    idle_gate = wait_for_idle_link if wait_for_idle_link is not None else (
        name == "fullsync"
    )
    if sync_interval is None:
        # Dropbox syncs eagerly on inotify events — it repeatedly re-scans
        # files that are *still being written* ("triggered by file
        # modification events which occurs much more frequently than our
        # relation triggered delta encoding", Section IV-B). Seafile
        # commits on a longer quiescence window.
        sync_interval = {"dropbox": 0.45, "seafile": 2.0}.get(name, 1.0)
    if name == "dropbox":
        client = DropboxClient(
            server=server,
            channel=channel,
            meter=client_meter,
            sync_interval=sync_interval,
            wait_for_idle_link=idle_gate,
            dedup_size=dropbox_dedup_size,
        )
    elif name == "seafile":
        client = SeafileClient(
            server=server,
            channel=channel,
            meter=client_meter,
            sync_interval=sync_interval,
            wait_for_idle_link=idle_gate,
            chunk_size=seafile_chunk_size,
        )
    else:  # fullsync
        client = FullUploadClient(
            server=server,
            channel=channel,
            meter=client_meter,
            sync_interval=sync_interval,
            wait_for_idle_link=idle_gate,
            # Dropsync rides Dropbox's transport, which compresses uploads.
            compression_ratio=0.8,
        )
    return SystemUnderTest(
        name=name,
        fs=client.fs,
        clock=clock,
        channel=channel,
        client_meter=client_meter,
        server_meter=server_meter,
        server=server,
        pump=client.pump,
        flush=lambda: client.flush(clock.now()),
        client=client,
    )


def _counted_pump(system: SystemUnderTest, obs: Observability):
    """Wrap the system pump with run-level counters (no-op when disabled)."""
    if not obs.enabled:
        return system.pump

    def pump(now: float):
        obs.inc("run.pump.calls")
        shipped = system.pump(now)
        if isinstance(shipped, int) and shipped > 0:
            obs.inc("run.pump.shipped", shipped)
        return shipped

    return pump


def _preload(system: SystemUnderTest, trace: Trace) -> None:
    """Install preloaded files and let them sync outside the measurement."""
    if not trace.preload:
        return
    for path, content in sorted(trace.preload.items()):
        system.fs.create(path)
        if content:
            system.fs.write(path, 0, content)
        system.fs.close(path)
    # give time-based engines room to upload the seed content
    for _ in range(12):
        system.clock.advance(1.0)
        system.pump(system.clock.now())
    system.flush()
    system.reset_counters()


def run_trace(
    name: str,
    trace: Trace,
    *,
    profile: CostProfile = PC_PROFILE,
    network: NetworkModel = PC_NETWORK,
    config: Optional[DeltaCFSConfig] = None,
    sync_interval: Optional[float] = None,
    pump_interval: float = 1.0,
    dropbox_dedup_size: int = 4 * 1024 * 1024,
    seafile_chunk_size: int = 1024 * 1024,
    obs: Observability = NULL_OBS,
    faults: NetworkFaults = NO_FAULTS,
    retry: Optional[RetryPolicy] = None,
    fault_seed: int = 0,
    journal_kv=None,
) -> RunResult:
    """Build ``name``, preload, replay ``trace``, flush, and collect.

    When ``obs`` is a live :class:`~repro.obs.Observability`, the run is
    wrapped in the documented span hierarchy (``run`` > ``run.preload`` /
    ``run.replay`` / ``run.settle`` / ``run.flush``) and every scalar
    metric series lands in :attr:`RunResult.extra` under its registry name.
    """
    system = build_system(
        name,
        profile=profile,
        network=network,
        config=config,
        sync_interval=sync_interval,
        dropbox_dedup_size=dropbox_dedup_size,
        seafile_chunk_size=seafile_chunk_size,
        obs=obs,
        faults=faults,
        retry=retry,
        fault_seed=fault_seed,
        journal_kv=journal_kv,
    )
    with obs.span("run", solution=name, trace=trace.name):
        with obs.span("run.preload"):
            _preload(system, trace)
        if obs.enabled:
            # Mirror reset_counters(): metrics cover the measured window
            # only, so channel.* totals agree with NetworkStats. The trace
            # is left intact — run.preload records stay visible.
            obs.metrics.reset()
        with obs.span("run.replay"):
            replay(
                trace,
                system.fs,
                system.clock,
                pump=_counted_pump(system, obs),
                pump_interval=pump_interval,
            )
        # settle: let upload delays elapse under normal pumping, then drain
        with obs.span("run.settle"):
            pump = _counted_pump(system, obs)
            for _ in range(10):
                system.clock.advance(1.0)
                pump(system.clock.now())
        with obs.span("run.flush"):
            system.flush()

    extra = {}
    if name == "deltacfs":
        stats = system.client.stats
        extra = {
            "deltas_triggered": stats.deltas_triggered,
            "deltas_kept": stats.deltas_kept,
            "inplace_deltas": stats.inplace_deltas,
            "nodes_uploaded": stats.nodes_uploaded,
            "conflicts": stats.conflicts,
        }
        if system.transport is not None:
            tstats = system.transport.stats
            extra.update(
                {
                    "transport_sent": tstats.sent,
                    "transport_retransmits": tstats.retransmits,
                    "transport_timeouts": tstats.timeouts,
                    "transport_acked": tstats.acked,
                    "server_dedup_drops": system.server.dedup_drops,
                }
            )
    elif hasattr(system.client, "sync_rounds"):
        extra = {"sync_rounds": system.client.sync_rounds}
    if obs.enabled:
        extra.update(obs.metrics.scalar_snapshot())
    return RunResult(
        solution=name,
        trace=trace.name,
        client_ticks=system.client_meter.total,
        server_ticks=system.server_meter.total,
        up_bytes=system.channel.stats.up_bytes,
        down_bytes=system.channel.stats.down_bytes,
        update_bytes=trace.stats.update_bytes,
        duration=system.clock.now(),
        extra=extra,
    )


# ---------------------------------------------------------------------------
# benchmark snapshots (the BENCH_<name>.json trajectory)
# ---------------------------------------------------------------------------

BENCH_SCHEMA = 1


def bench_metrics(result: RunResult) -> Dict[str, float]:
    """Flatten one run into the gate-comparable metric map.

    Keys are ``{setting/}trace/solution/metric`` (setting appears only
    when the experiment recorded one, e.g. ``mobile``), values are plain
    floats so the snapshot JSON-serializes losslessly. ``tue`` is emitted
    only when defined — division-by-zero runs (no logical update) have
    nothing to gate.
    """
    prefix = f"{result.trace}/{result.solution}"
    setting = result.extra.get("setting")
    if setting:
        prefix = f"{setting}/{prefix}"
    out: Dict[str, float] = {
        f"{prefix}/up_bytes": float(result.up_bytes),
        f"{prefix}/down_bytes": float(result.down_bytes),
        f"{prefix}/client_ticks": float(result.client_ticks),
        f"{prefix}/server_ticks": float(result.server_ticks),
    }
    if math.isfinite(result.tue):
        out[f"{prefix}/tue"] = float(result.tue)
    return out


def bench_snapshot(name: str, results: List[RunResult]) -> Dict[str, object]:
    """The ``BENCH_<name>.json`` document for one experiment's runs.

    The same shape is checked in as a baseline under
    ``benchmarks/baselines/`` and compared by ``tools/bench_gate.py``;
    baselines may additionally carry a ``tolerances`` map.
    """
    metrics: Dict[str, float] = {}
    for result in results:
        for key, value in bench_metrics(result).items():
            if key in metrics:
                raise ValueError(f"duplicate bench metric key {key!r} in {name}")
            metrics[key] = value
    return {"bench": name, "schema": BENCH_SCHEMA, "metrics": metrics}
