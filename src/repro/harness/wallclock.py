"""Wall-clock benchmark lane: real MB/s for the byte-level hot paths.

Everything else in ``repro.harness`` measures *modelled* cost (CPU ticks,
bytes on a simulated wire). This lane is the exception: it times the
optimized engines against the per-byte reference implementations in
:mod:`repro.chunking._reference` with ``time.perf_counter`` and reports
**measured** throughput. Two numbers come out of every lane:

- ``fast_mb_per_s`` / ``ref_mb_per_s`` — absolute throughput of the
  production engine and the pre-optimization reference. These are
  machine-dependent and **not** gated.
- ``speedup`` — their ratio. The ratio divides out the machine, so it is
  stable enough to gate: ``benchmarks/baselines/wallclock.json`` commits
  the contract floors and ``tools/bench_gate.py --tolerance 0.2`` fails
  CI when an edit makes an engine slower than the floor allows.

Timing protocol (docs/performance.md): each measurement runs
``repeats`` times and keeps the **median**, which shrugs off one-off
scheduler hiccups without the optimistic bias of ``min``. Inputs are
generated from :class:`repro.common.rng.DeterministicRandom` with a fixed
seed so every run times identical bytes.

This module is exempt from the DET001 determinism rule (see
``repro.check.config``): wall-clock time is its entire point, and its
outputs never feed back into simulation state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.chunking import _reference as reference
from repro.chunking._fast import all_offset_weak_checksums, block_weak_checksums
from repro.common.rng import DeterministicRandom
from repro.core.sync_queue import DeltaNode, SyncQueue, WriteNode
from repro.delta.format import Delta
from repro.delta.rsync import compute_delta, compute_signature

WALLCLOCK_SCHEMA = 1
DEFAULT_INPUT_BYTES = 2 * 1024 * 1024
DEFAULT_BLOCK_SIZE = 4096
DEFAULT_REPEATS = 3
_SEED = 0xD117A


@dataclass(frozen=True)
class LaneResult:
    """One engine's measured fast-vs-reference comparison."""

    lane: str
    fast_mb_per_s: float
    ref_mb_per_s: float
    speedup: float
    input_mb: float


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds over ``repeats`` runs of ``fn``."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return max(times[len(times) // 2], 1e-9)


def _lane(
    name: str,
    fast: Callable[[], object],
    ref: Callable[[], object],
    nbytes: int,
    repeats: int,
) -> LaneResult:
    fast_s = _median_seconds(fast, repeats)
    ref_s = _median_seconds(ref, repeats)
    mb = nbytes / 1e6
    return LaneResult(
        lane=name,
        fast_mb_per_s=mb / fast_s,
        ref_mb_per_s=mb / ref_s,
        speedup=ref_s / fast_s,
        input_mb=mb,
    )


def _edit_every_block(
    base: bytes, block_size: int, rng: DeterministicRandom
) -> bytes:
    """A document-save-like target: a 40-byte splice in every block.

    This is the workload the paper's traces (Word/WeChat saves) produce —
    edits scattered through the whole file — and the one that exercises
    the rolling scan end to end. Speedup ratios are density-sensitive in
    the *other* direction: on match-dense targets both engines converge
    on the same per-block confirmation compares (ratio → 1), which is why
    docs/performance.md gates this edit-heavy shape and not a best case.
    """
    target = bytearray(base)
    for block_start in range(0, len(base) - block_size, block_size):
        off = block_start + min(100, block_size - 40)
        target[off : off + 40] = rng.random_bytes(40)
    return bytes(target)


def _build_drain_queue(groups: int, payload: bytes) -> SyncQueue:
    """A queue shaped like the client's steady state: spans included.

    Each group enqueues seven write nodes and then delta-replaces the
    last one, leaving a backindex span — the structure that made the old
    per-node ``next_unit`` loop quadratic (every span unit re-scanned and
    rebuilt the whole node list).
    """
    queue = SyncQueue(upload_delay=0.0, capacity=8 * groups + 1)
    for g in range(groups):
        victim: WriteNode | None = None
        for i in range(7):
            node = WriteNode(path=f"/bench/g{g}-f{i}")
            queue.enqueue(node, now=0.0)
            node.add_write(0, payload)
            victim = node
        assert victim is not None
        queue.replace_with_delta(
            [victim], DeltaNode(path=victim.path, delta=Delta()), now=0.0
        )
    return queue


def _drain_reference(queue: SyncQueue, now: float) -> int:
    """The retained per-node slow path: one ``next_unit`` per shipped node."""
    shipped = 0
    while queue.next_unit(now) is not None:
        shipped += 1
    return shipped


def run_wallclock(
    *,
    input_bytes: int = DEFAULT_INPUT_BYTES,
    block_size: int = DEFAULT_BLOCK_SIZE,
    repeats: int = DEFAULT_REPEATS,
) -> List[LaneResult]:
    """Time every engine lane; returns one :class:`LaneResult` per lane."""
    rng = DeterministicRandom(_SEED)
    base = rng.random_bytes(input_bytes)
    target = _edit_every_block(base, block_size, rng)

    lanes = [
        _lane(
            "rolling_scan",
            lambda: all_offset_weak_checksums(target, block_size),
            lambda: reference.all_offset_weak_checksums_ref(target, block_size),
            input_bytes,
            repeats,
        ),
        _lane(
            "checksum_sweep",
            lambda: block_weak_checksums(base, block_size),
            lambda: reference.checksum_sweep_ref(base, block_size),
            input_bytes,
            repeats,
        ),
    ]

    remote_sig = compute_signature(base, block_size, with_strong=True)
    lanes.append(
        _lane(
            "delta_encode/remote",
            lambda: compute_delta(remote_sig, target),
            lambda: reference.compute_delta_ref(remote_sig, target),
            input_bytes,
            repeats,
        )
    )
    bitwise_sig = compute_signature(base, block_size, with_strong=False)
    lanes.append(
        _lane(
            "delta_encode/bitwise",
            lambda: compute_delta(bitwise_sig, target, base=base),
            lambda: reference.compute_delta_ref(bitwise_sig, target, base=base),
            input_bytes,
            repeats,
        )
    )

    # Queue drain: same nodes, batched drain_due sweep vs the retained
    # per-node next_unit loop (which rebuilds the node list per ship).
    # Queues are prebuilt — one per timed repeat — so only the drain
    # itself sits inside the measurement.
    node_payload = rng.random_bytes(1024)
    groups = max(2, input_bytes // (16 * len(node_payload)))
    fast_queues = [
        _build_drain_queue(groups, node_payload) for _ in range(repeats)
    ]
    ref_queues = [
        _build_drain_queue(groups, node_payload) for _ in range(repeats)
    ]
    queue_bytes = fast_queues[0].queued_bytes()
    lanes.append(
        _lane(
            "queue_drain",
            lambda: fast_queues.pop().drain_due(1e9),
            lambda: _drain_reference(ref_queues.pop(), 1e9),
            queue_bytes,
            repeats,
        )
    )
    return lanes


def wallclock_snapshot(
    *,
    input_bytes: int = DEFAULT_INPUT_BYTES,
    block_size: int = DEFAULT_BLOCK_SIZE,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, object]:
    """The ``BENCH_wallclock.json`` document for ``tools/bench_gate.py``.

    Only the machine-normalized ``<lane>/speedup`` ratios land in
    ``metrics`` (the gated surface); absolute MB/s and the input
    parameters ride along in ``context`` for humans and the docs.
    """
    lanes = run_wallclock(
        input_bytes=input_bytes, block_size=block_size, repeats=repeats
    )
    metrics = {f"{r.lane}/speedup": round(r.speedup, 2) for r in lanes}
    context: Dict[str, object] = {
        "input_mb": round(input_bytes / 1e6, 3),
        "block_size": block_size,
        "repeats": repeats,
        "lanes": {
            r.lane: {
                "fast_mb_per_s": round(r.fast_mb_per_s, 2),
                "ref_mb_per_s": round(r.ref_mb_per_s, 3),
                "input_mb": round(r.input_mb, 3),
            }
            for r in lanes
        },
    }
    return {
        "bench": "wallclock",
        "schema": WALLCLOCK_SCHEMA,
        "metrics": metrics,
        "context": context,
    }
