"""A small persistent key-value store — the LevelDB substitute.

DeltaCFS stores block checksums in LevelDB (paper Section III-E). We provide
the same contract: ordered string/bytes keys, get/put/delete, iteration,
and crash-safe persistence via a checksummed write-ahead log with
compaction. ``MemoryKV`` is the no-persistence variant used in tests and
simulations that don't exercise crashes.
"""

from repro.kvstore.kv import KVStore, MemoryKV, LogStructuredKV

__all__ = ["KVStore", "MemoryKV", "LogStructuredKV"]
