"""The KV store implementations."""

from __future__ import annotations

import os
from typing import Dict, Iterator, Tuple

from repro.kvstore import wal


class KVStore:
    """Abstract ordered byte-key/byte-value store (the LevelDB contract)."""

    def get(self, key: bytes) -> bytes | None:
        """Value for ``key`` or ``None``."""
        raise NotImplementedError

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite."""
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        """Remove ``key`` if present (idempotent)."""
        raise NotImplementedError

    def items(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        """All (key, value) pairs with the given prefix, in key order."""
        raise NotImplementedError

    def delete_prefix(self, prefix: bytes) -> int:
        """Remove every key with ``prefix``; returns the count removed."""
        doomed = [k for k, _ in self.items(prefix)]
        for key in doomed:
            self.delete(key)
        return len(doomed)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())


class MemoryKV(KVStore):
    """Dict-backed store with no persistence."""

    def __init__(self):
        self._data: Dict[bytes, bytes] = {}

    def get(self, key: bytes) -> bytes | None:
        # Normalize like put() does: a bytearray/memoryview key must find
        # (and below, delete) the entry its bytes-typed twin inserted.
        return self._data.get(bytes(key))

    def put(self, key: bytes, value: bytes) -> None:
        self._data[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        self._data.pop(bytes(key), None)

    def items(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        prefix = bytes(prefix)
        for key in sorted(k for k in self._data if k.startswith(prefix)):
            yield key, self._data[key]


class LogStructuredKV(KVStore):
    """Durable store: in-memory index + append-only checksummed WAL.

    Every mutation appends a WAL record before updating the index; reopen
    replays the log, discarding any torn tail. ``compact()`` rewrites the
    log to current state (atomic via rename) once dead records accumulate.

    ``sync=True`` fsyncs after every append: an acked write then survives a
    power cut, not just a process crash. The recovery journal requires this
    — its whole point is outliving the power cut it models — while the
    checksum store can keep the cheaper flush-only default (a stale
    checksum only ever causes a false *positive* sweep hit).
    """

    def __init__(
        self, path: str, *, auto_compact_ratio: float = 4.0, sync: bool = False
    ):
        self._path = path
        self._auto_compact_ratio = auto_compact_ratio
        self._sync = sync
        self._data: Dict[bytes, bytes] = {}
        self._records = 0
        if os.path.exists(path):
            with open(path, "rb") as fh:
                buf = fh.read()
            for op, key, value in wal.iter_records(buf):
                self._records += 1
                if op == wal.PUT:
                    self._data[key] = value
                else:
                    self._data.pop(key, None)
            # Drop any torn tail so future appends start on a clean record
            # boundary.
            self._rewrite()
        self._fh = open(path, "ab")

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(bytes(key))

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        self._append(wal.PUT, key, value)
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        key = bytes(key)
        if key not in self._data:
            return
        self._append(wal.DELETE, key)
        self._data.pop(key, None)

    def items(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        prefix = bytes(prefix)
        for key in sorted(k for k in self._data if k.startswith(prefix)):
            yield key, self._data[key]

    def compact(self) -> None:
        """Rewrite the log to hold exactly the live records."""
        self._fh.close()
        self._rewrite()
        self._fh = open(self._path, "ab")

    def close(self) -> None:
        """Flush, fsync, and close the log file.

        The fsync runs regardless of ``sync`` mode: close is the one point
        where even a flush-only store promises its records are on disk.
        """
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "LogStructuredKV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _append(self, op: int, key: bytes, value: bytes = b"") -> None:
        self._fh.write(wal.encode_record(op, key, value))
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
        self._records += 1
        live = max(1, len(self._data))
        if self._records > live * self._auto_compact_ratio and self._records > 64:
            self.compact()

    def _rewrite(self) -> None:
        tmp_path = self._path + ".compact"
        with open(tmp_path, "wb") as out:
            for key in sorted(self._data):
                out.write(wal.encode_record(wal.PUT, key, self._data[key]))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp_path, self._path)
        self._records = len(self._data)
