"""Write-ahead log record format.

Each record is ``[length u32][crc32 u32][payload]`` where payload is
``[op u8][klen u32][key][value]``. A torn final record (crash mid-append)
fails its CRC or length check and is ignored on replay — the standard WAL
recovery contract.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Tuple

PUT = 1
DELETE = 2

_HEADER = struct.Struct("<II")
_PAYLOAD_HEADER = struct.Struct("<BI")


def encode_record(op: int, key: bytes, value: bytes = b"") -> bytes:
    """Serialize one WAL record."""
    if op not in (PUT, DELETE):
        raise ValueError(f"unknown op {op}")
    payload = _PAYLOAD_HEADER.pack(op, len(key)) + key + value
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_records(buf: bytes) -> Iterator[Tuple[int, bytes, bytes]]:
    """Yield ``(op, key, value)`` for every intact record in ``buf``.

    Stops silently at the first torn or corrupt record — everything after
    a partial write is untrustworthy.
    """
    pos = 0
    n = len(buf)
    while pos + _HEADER.size <= n:
        length, crc = _HEADER.unpack_from(buf, pos)
        start = pos + _HEADER.size
        end = start + length
        if end > n:
            return  # torn tail
        payload = buf[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt tail
        op, klen = _PAYLOAD_HEADER.unpack_from(payload, 0)
        key_start = _PAYLOAD_HEADER.size
        key = payload[key_start : key_start + klen]
        value = payload[key_start + klen :]
        yield op, key, value
        pos = end
