"""Result collection and table/figure formatting for the benchmark harness."""

from repro.metrics.collector import RunResult
from repro.metrics.report import format_table, format_bytes, series_summary

__all__ = ["RunResult", "format_table", "format_bytes", "series_summary"]
