"""Result collection and table/figure formatting for the benchmark harness."""

from repro.metrics.collector import RunResult, TUE_UNDEFINED
from repro.metrics.report import format_table, format_bytes, format_tue, series_summary

__all__ = [
    "RunResult",
    "TUE_UNDEFINED",
    "format_table",
    "format_bytes",
    "format_tue",
    "series_summary",
]
