"""The per-run result record every experiment produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

# Sentinel returned by :attr:`RunResult.tue` when the trace produced no
# logical update bytes, so traffic-per-update-byte is undefined (division
# by zero). It is ``float("inf")``: any finite threshold comparison treats
# an undefined TUE as "worse than everything", and ``math.isinf`` detects
# it. Render it with :func:`repro.metrics.report.format_tue`, which prints
# "undefined" instead of "inf". Documented in docs/cost-model.md.
TUE_UNDEFINED = float("inf")


@dataclass
class RunResult:
    """Measurements from one (solution, trace) run.

    Attributes:
        solution: system name ("deltacfs", "dropbox", "seafile", "nfs",
            "fullsync").
        trace: trace name.
        client_ticks: client CPU (Table II client columns).
        server_ticks: server CPU (Table II server columns).
        up_bytes / down_bytes: network transfer (Figures 8/9).
        update_bytes: the trace's logical update size (TUE denominator).
        duration: virtual seconds the run covered.
        extra: free-form per-system counters (deltas triggered, sync
            rounds, ...).
    """

    solution: str
    trace: str
    client_ticks: float = 0.0
    server_ticks: float = 0.0
    up_bytes: int = 0
    down_bytes: int = 0
    update_bytes: int = 0
    duration: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.up_bytes + self.down_bytes

    @property
    def tue(self) -> float:
        """Traffic Usage Efficiency: total sync traffic / update size [2].

        Returns :data:`TUE_UNDEFINED` (``inf``) when ``update_bytes <= 0``
        — the ratio is undefined for a trace with no logical update.
        """
        if self.update_bytes <= 0:
            return TUE_UNDEFINED
        return self.total_bytes / self.update_bytes
