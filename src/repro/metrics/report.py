"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables/figures
report; these helpers keep the formatting consistent and readable in pytest
output.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def format_tue(value: float) -> str:
    """Render a TUE ratio; the :data:`~repro.metrics.collector.TUE_UNDEFINED`
    sentinel (and any non-finite value) prints as ``"undefined"``."""
    if not math.isfinite(value):
        return "undefined"
    return f"{value:.2f}"


def format_bytes(n: float) -> str:
    """Human-readable byte count (fixed width friendly)."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GB"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_summary(name: str, values: Sequence[float]) -> str:
    """One-line min/mean/max summary of a numeric series."""
    if not values:
        return f"{name}: (empty)"
    mean = sum(values) / len(values)
    return f"{name}: min={min(values):.2f} mean={mean:.2f} max={max(values):.2f} n={len(values)}"
