"""Simulated wide-area network: messages, byte accounting, bandwidth model.

The paper measures network transmission (Figures 8 and 9) by counting bytes
on the wire between an EC2 client and server. We reproduce that with a
message protocol whose every message knows its serialized size, and a
:class:`Channel` that accounts bytes per direction, charges CPU for the
network stack and OpenSSL encryption, and models transfer time against the
link bandwidth (which is what produces the mobile batching effect in
Figure 9).
"""

from repro.net.messages import (
    Message,
    UploadFull,
    UploadWrite,
    UploadWriteBatch,
    UploadTruncate,
    UploadDelta,
    MetaOp,
    TxnGroup,
    SignatureMessage,
    ChunkHave,
    ChunkData,
    Ack,
    ConflictNotice,
    FileDownload,
)
from repro.net.transport import Channel, NetworkModel, NetworkStats

__all__ = [
    "Message",
    "UploadFull",
    "UploadWrite",
    "UploadWriteBatch",
    "UploadTruncate",
    "UploadDelta",
    "MetaOp",
    "TxnGroup",
    "SignatureMessage",
    "ChunkHave",
    "ChunkData",
    "Ack",
    "ConflictNotice",
    "FileDownload",
    "Channel",
    "NetworkModel",
    "NetworkStats",
]
