"""The sync wire protocol.

Each message computes its own serialized size; the :class:`Channel` charges
those bytes to the traffic counters that reproduce Figures 8 and 9. Header
overhead is deliberately modest and uniform — the paper notes DeltaCFS
uploads slightly more than NFS because it "has to send some control
information such as files' versions", and that is exactly the per-message
version overhead modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # obs-only annotation; never imported at runtime
    from repro.obs.tracer import TraceContext

from repro.common.version import VersionStamp
from repro.common.wire import u8 as _u8
from repro.common.wire import u16 as _u16
from repro.common.wire import u32 as _u32
from repro.common.wire import u64 as _u64
from repro.delta.format import Delta

_PATH_OVERHEAD = 2  # length prefix for path strings
_MSG_HEADER = 8  # type tag + length framing


def _path_size(path: str) -> int:
    return _PATH_OVERHEAD + len(path.encode())


def _version_size(version: Optional[VersionStamp]) -> int:
    return 1 + (version.wire_size() if version is not None else 0)


class Message:
    """Base class; subclasses implement :meth:`wire_size`."""

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class UploadFull(Message):
    """Full-content upload of one file (baselines, and first uploads)."""

    path: str
    data: bytes = field(repr=False)
    base_version: Optional[VersionStamp] = None
    new_version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + 4
            + len(self.data)
            + _version_size(self.base_version)
            + _version_size(self.new_version)
        )


@dataclass(frozen=True)
class UploadWrite(Message):
    """NFS-like file RPC: one intercepted write (or a coalesced batch)."""

    path: str
    offset: int
    data: bytes = field(repr=False)
    base_version: Optional[VersionStamp] = None
    new_version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + _u64(self.offset)
            + 4  # length
            + len(self.data)
            + _version_size(self.base_version)
            + _version_size(self.new_version)
        )


@dataclass(frozen=True)
class UploadWriteBatch(Message):
    """A packed write node: several disjoint write runs, applied atomically.

    This is the Sync Queue's "batching" of writes to the same file
    (Section III-B): all runs share one base/new version pair because the
    node is versioned as a unit.
    """

    path: str
    runs: Sequence = ()  # of (offset, bytes)
    base_version: Optional[VersionStamp] = None
    new_version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + 4
            + sum(12 + len(data) for _, data in self.runs)
            + _version_size(self.base_version)
            + _version_size(self.new_version)
        )


@dataclass(frozen=True)
class UploadTruncate(Message):
    """Propagate a truncate (WeChat journal pattern: ``truncate f_journal 0``)."""

    path: str
    length: int
    base_version: Optional[VersionStamp] = None
    new_version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + _u64(self.length)
            + _version_size(self.base_version)
            + _version_size(self.new_version)
        )


@dataclass(frozen=True)
class UploadDelta(Message):
    """A delta produced by (bitwise) rsync, applied server-side.

    ``base_version`` is the conflict-check version of the target path at
    the apply point; ``content_base`` names the old-version snapshot the
    delta's COPY instructions reference (the server keeps recent versions,
    Section III-C).
    """

    path: str
    delta: Delta
    base_version: Optional[VersionStamp] = None
    new_version: Optional[VersionStamp] = None
    content_base: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + self.delta.wire_size()
            + _version_size(self.base_version)
            + _version_size(self.new_version)
            + _version_size(self.content_base)
        )


@dataclass(frozen=True)
class MetaOp(Message):
    """A metadata operation: create/rename/link/unlink/mkdir/rmdir."""

    kind: str
    path: str
    dest: Optional[str] = None
    new_version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _u8(self.kind)  # op-kind tag
            + _path_size(self.path)
            + (_path_size(self.dest) if self.dest else 1)
            + _version_size(self.new_version)
        )


@dataclass(frozen=True)
class TxnGroup(Message):
    """A backindex span: member messages applied transactionally.

    Paper Section III-E: "All the operations covered by the backindex should
    be applied transactionally on the cloud."
    """

    members: Sequence[Message] = ()

    def wire_size(self) -> int:
        return _MSG_HEADER + 4 + sum(m.wire_size() for m in self.members)


@dataclass(frozen=True)
class SignatureMessage(Message):
    """Block-signature exchange for remote rsync (Dropbox protocol).

    ``block_count`` weak+strong pairs: 4 + 16 bytes each.
    """

    path: str
    block_count: int

    def wire_size(self) -> int:
        return _MSG_HEADER + _path_size(self.path) + 8 + 20 * self.block_count


@dataclass(frozen=True)
class ChunkHave(Message):
    """CDC fingerprint list (Seafile): client asks which chunks are new."""

    path: str
    fingerprints: Sequence[bytes] = ()

    def wire_size(self) -> int:
        return _MSG_HEADER + _path_size(self.path) + 4 + 32 * len(self.fingerprints)


@dataclass(frozen=True)
class ChunkData(Message):
    """Chunk payloads the server was missing (Seafile upload)."""

    path: str
    chunks: Sequence[bytes] = field(default=(), repr=False)

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + 4
            + sum(36 + len(c) for c in self.chunks)  # fingerprint + len + data
        )


@dataclass(frozen=True)
class Ack(Message):
    """Server acknowledgement (optionally carrying the accepted version)."""

    path: str = ""
    version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return _MSG_HEADER + _path_size(self.path) + _version_size(self.version)


@dataclass(frozen=True)
class ConflictNotice(Message):
    """Server tells a client its update lost first-write-wins."""

    path: str
    conflict_path: str
    winning_version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + _path_size(self.conflict_path)
            + _version_size(self.winning_version)
        )


@dataclass(frozen=True)
class HistoryRequest(Message):
    """Client asks for a path's restorable version list (Section III-C)."""

    path: str

    def wire_size(self) -> int:
        return _MSG_HEADER + _path_size(self.path)


@dataclass(frozen=True)
class HistoryResponse(Message):
    """The restorable versions, oldest first."""

    path: str
    versions: Sequence[VersionStamp] = ()

    def wire_size(self) -> int:
        return _MSG_HEADER + _path_size(self.path) + 4 + 8 * len(self.versions)


@dataclass(frozen=True)
class RestoreRequest(Message):
    """Client asks the cloud to roll a path back to a recent version."""

    path: str
    version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return _MSG_HEADER + _path_size(self.path) + _version_size(self.version)


@dataclass(frozen=True)
class FileDownload(Message):
    """Server-to-client file content (NFS cache refill, conflict recovery)."""

    path: str
    data: bytes = field(repr=False)
    version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + 4
            + len(self.data)
            + _version_size(self.version)
        )


@dataclass(frozen=True)
class ResyncRequest(Message):
    """Post-crash version renegotiation: which versions does the cloud hold?

    One metadata round trip replaces journaling every synced-version map
    update: the recovering client lists its local paths and learns the
    server's current ``<CliID, VerCnt>`` per path, so journaled nodes can
    be dropped (already applied) or rebased before re-upload.
    """

    paths: Sequence[str] = ()

    def wire_size(self) -> int:
        return _MSG_HEADER + 4 + sum(_path_size(p) for p in self.paths)


@dataclass(frozen=True)
class ResyncReply(Message):
    """The server's current version per requested path (None = absent)."""

    versions: Sequence = ()  # of (path, Optional[VersionStamp])

    def wire_size(self) -> int:
        return _MSG_HEADER + 4 + sum(
            _path_size(p) + _version_size(v) for p, v in self.versions
        )


@dataclass(frozen=True)
class RangeRequest(Message):
    """Client asks for one byte range of a file (bounded crash repair)."""

    path: str
    offset: int
    length: int

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + _u64(self.offset)
            + _u64(self.length)
        )


@dataclass(frozen=True)
class RangeReply(Message):
    """The requested range's bytes — the whole point of bounded recovery:
    only the damaged span travels, never the whole file."""

    path: str
    offset: int
    data: bytes = field(repr=False)
    version: Optional[VersionStamp] = None

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _path_size(self.path)
            + _u64(self.offset)
            + 4  # length
            + len(self.data)
            + _version_size(self.version)
        )


@dataclass(frozen=True)
class Envelope(Message):
    """Reliable-delivery wrapper for one uplink message.

    ``msg_id`` is a per-client monotonic id (from 1); ``attempt`` counts
    transmissions of the same id (1 = first send). The server deduplicates
    by ``(origin_client, msg_id)``, which is what turns the at-least-once
    retransmit loop into exactly-once application.

    ``ctx`` is the sender's :class:`~repro.obs.tracer.TraceContext` (or
    ``None`` when tracing is off) — an observability sidecar that lets the
    receiving server link its apply span back to the client span that
    caused the send. It is deliberately *excluded* from :meth:`wire_size`:
    tracing must not move a single costed wire byte, so every BENCH
    number is identical with tracing on or off.
    """

    msg_id: int
    attempt: int
    inner: Message = field(default=None)  # type: ignore[assignment]
    ctx: Optional["TraceContext"] = None  # obs-only sidecar, zero wire cost

    def wire_size(self) -> int:
        size = (
            _MSG_HEADER
            + _u64(self.msg_id)
            + _u16(self.attempt)
            + self.inner.wire_size()
        )
        # self.ctx costs zero wire bytes by contract (see class docstring).
        if self.ctx is not None:
            size += 0
        return size


@dataclass(frozen=True)
class EnvelopeAck(Message):
    """Downlink acknowledgement of one :class:`Envelope`.

    Carries the server's replies for the acknowledged message (``Ack`` /
    ``ConflictNotice``), so a retransmitted message whose first ack was
    lost still gets its replies delivered. ``duplicate`` marks acks
    produced by the server's dedup table rather than a fresh apply.
    """

    ack_of: int
    replies: Sequence[Message] = ()
    duplicate: bool = False

    def wire_size(self) -> int:
        return (
            _MSG_HEADER
            + _u64(self.ack_of)
            + _u8(self.duplicate)
            + sum(r.wire_size() for r in self.replies)
        )


@dataclass(frozen=True)
class Forward(Message):
    """Cloud-to-client fan-out of another client's incremental data.

    Paper Section III-D: the cloud forwards the same incremental data to
    other shared clients "without additional computation".
    """

    origin_client: int
    inner: Message = field(default=None)  # type: ignore[assignment]

    def wire_size(self) -> int:
        return _MSG_HEADER + _u32(self.origin_client) + self.inner.wire_size()
