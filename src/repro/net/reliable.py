"""Reliable delivery over a lossy link: acks, retries, idempotent apply.

The historical pump path hands each upload unit straight to
``CloudServer.handle`` — fine over the perfect pipe, wrong the moment the
link can drop, duplicate, or reorder. :class:`ReliableTransport` restores
exactly-once *effect* over at-least-once *delivery*:

- every uplink message is wrapped in an :class:`~repro.net.messages.Envelope`
  carrying a per-client monotonic ``msg_id``;
- the server acks each envelope with an
  :class:`~repro.net.messages.EnvelopeAck` that carries its replies, and
  deduplicates retransmits by ``(origin_client, msg_id)``
  (``CloudServer.handle_envelope``);
- unacked envelopes are retransmitted after a timeout that backs off
  exponentially with seeded jitter, from a bounded in-flight window —
  messages past the window wait in an outbox, preserving send order;
- delivery is re-sequenced by msg_id before application: an envelope that
  overtakes a lost predecessor parks (unacked) until the gap fills, so the
  Sync Queue's causal FIFO order survives link reordering.

Everything runs in virtual time: ``pump(now)`` delivers whatever the
channel says has arrived by ``now``, fires acks, refills the window, and
retransmits expired timers. All randomness (jitter) comes from a forked
:class:`~repro.common.rng.DeterministicRandom` stream, so identical seeds
produce identical retransmit schedules.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.rng import DeterministicRandom
from repro.net.messages import Envelope, EnvelopeAck, Message
from repro.net.transport import Channel
from repro.obs import NULL_OBS, Observability
from repro.obs.tracer import TraceContext


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff/window knobs for one reliable transport.

    Attributes:
        base_timeout: seconds to wait for the first ack.
        backoff: multiplier applied to the timeout per retransmission.
        max_backoff: ceiling on the backed-off timeout.
        jitter: fraction of the timeout added as seeded random slack
            (decorrelates retransmit storms).
        window: maximum envelopes in flight at once.
        max_attempts: give up (raise) after this many transmissions of
            one envelope — only reachable under a plan that never heals.
    """

    base_timeout: float = 1.0
    backoff: float = 2.0
    max_backoff: float = 30.0
    jitter: float = 0.1
    window: int = 32
    max_attempts: int = 100

    def validate(self) -> None:
        """Raise ``ValueError`` on a nonsensical policy."""
        if self.base_timeout <= 0:
            raise ValueError("base_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_backoff < self.base_timeout:
            raise ValueError("max_backoff must be >= base_timeout")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def timeout_for(self, attempt: int) -> float:
        """Deterministic (pre-jitter) timeout for transmission ``attempt``."""
        return min(
            self.base_timeout * self.backoff ** (attempt - 1), self.max_backoff
        )


@dataclass
class TransportStats:
    """Cumulative delivery-protocol counters for one transport."""

    sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    acked: int = 0
    dup_acks: int = 0


@dataclass
class _InFlight:
    """One unacked envelope and its retry state."""

    msg_id: int
    message: Message
    attempts: int
    first_sent: float
    next_retry_at: float
    timeout: float
    ctx: Optional[TraceContext] = None  # sender-side span identity, uncosted


class ReliableTransport:
    """At-least-once delivery with exactly-once effect, in virtual time.

    Args:
        channel: the (typically lossy) link; its ``transmit_up`` /
            ``transmit_down`` report per-copy delivery times.
        server: the apply endpoint (must expose ``handle_envelope``).
        client_id: origin id presented to the server.
        policy: retry/backoff/window knobs.
        seed: seeds the jitter stream; identical seeds + identical sends
            yield identical retransmit schedules.
        obs: PR-1 observability sink.
        on_reply: called once per acked envelope with the server's replies
            (conflict notices etc.); never called twice for one msg_id.
    """

    def __init__(
        self,
        channel: Channel,
        server,
        *,
        client_id: int = 1,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        obs: Observability = NULL_OBS,
        on_reply: Optional[Callable[[Sequence[Message]], None]] = None,
    ):
        self.channel = channel
        self.server = server
        self.client_id = client_id
        self.policy = policy if policy is not None else RetryPolicy()
        self.policy.validate()
        self.obs = obs
        self.on_reply = on_reply
        self.stats = TransportStats()
        self._jitter_rng = DeterministicRandom(seed).fork("reliable-transport")
        self._next_msg_id = 1
        self._outbox: Deque[Tuple[int, Message, Optional[TraceContext]]] = deque()
        self._inflight: "OrderedDict[int, _InFlight]" = OrderedDict()
        # In-order apply: envelopes that arrived ahead of a gap (a lost
        # lower msg_id still being retransmitted) park here unacked until
        # the gap fills — the sync protocol's causal FIFO guarantee must
        # survive link reordering.
        self._reorder_buffer: Dict[int, Envelope] = {}
        self._next_deliver = 1
        # Transit heaps: (deliver_at, tiebreak, payload). The tiebreak makes
        # heap order — hence apply order — deterministic for equal times.
        self._up_transit: List[Tuple[float, int, Envelope]] = []
        self._down_transit: List[Tuple[float, int, EnvelopeAck]] = []
        self._transit_seq = 0
        # (send_time, msg_id, attempt) per retransmission — the schedule
        # identity the determinism tests assert on.
        self.retransmit_log: List[Tuple[float, int, int]] = []

    # -- sending -------------------------------------------------------------

    def send(self, message: Message, now: float) -> int:
        """Queue one message for reliable delivery; returns its msg_id.

        Launches immediately if the in-flight window has room, otherwise
        parks the message in the outbox (drained by :meth:`pump`).
        """
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        # Capture the caller's span identity once, at enqueue time: every
        # later (re)transmission of this msg_id carries the same causal
        # origin, so the server's apply span links back to the client span
        # that produced the message even when only a retransmit survives.
        ctx = self.obs.current_context() if self.obs.enabled else None
        if self.obs.enabled:
            # Emitted here — inside the caller's shipping span — so offline
            # analysis can join the msg_id of every later (re)transmission
            # back to the upload unit that produced the message.
            self.obs.event(
                "transport.enqueued", msg_id=msg_id, type=type(message).__name__
            )
        # Launch only when the window has room AND nothing is already
        # queued — anything else would overtake the outbox order.
        if not self._outbox and len(self._inflight) < self.policy.window:
            self._launch(msg_id, message, now, ctx)
        else:
            self._outbox.append((msg_id, message, ctx))
        self._note_depth()
        return msg_id

    @property
    def idle(self) -> bool:
        """True when nothing is in flight, queued, or in transit."""
        return not (
            self._inflight or self._outbox or self._up_transit or self._down_transit
        )

    @property
    def inflight_depth(self) -> int:
        return len(self._inflight)

    # -- the pump ------------------------------------------------------------

    def pump(self, now: float) -> None:
        """Advance the protocol to virtual time ``now``.

        Order matters and is fixed: deliver uplink copies that have arrived
        (the server acks each), then deliver acks (retiring in-flight
        entries and surfacing replies), then refill the window from the
        outbox, then retransmit every envelope whose timer expired.
        """
        self._deliver_uplink(now)
        self._deliver_acks(now)
        self._refill_window(now)
        self._retransmit_due(now)
        self._note_depth()

    def settle(
        self, clock, *, step: float = 0.5, max_wait: float = 3600.0
    ) -> None:
        """Advance ``clock`` and pump until the transport drains.

        Raises ``RuntimeError`` if ``max_wait`` virtual seconds pass
        without convergence (a fault plan that never heals).
        """
        deadline = clock.now() + max_wait
        self.pump(clock.now())
        while not self.idle:
            if clock.now() >= deadline:
                raise RuntimeError(
                    f"transport failed to settle within {max_wait}s: "
                    f"{len(self._inflight)} in flight, "
                    f"{len(self._outbox)} queued"
                )
            clock.advance(step)
            self.pump(clock.now())

    # -- internals -----------------------------------------------------------

    def _launch(
        self,
        msg_id: int,
        message: Message,
        now: float,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        entry = _InFlight(
            msg_id=msg_id,
            message=message,
            attempts=0,
            first_sent=now,
            next_retry_at=now,
            timeout=self.policy.base_timeout,
            ctx=ctx,
        )
        self._inflight[msg_id] = entry
        self._transmit(entry, now)

    def _transmit(self, entry: _InFlight, now: float) -> None:
        entry.attempts += 1
        envelope = Envelope(
            msg_id=entry.msg_id,
            attempt=entry.attempts,
            inner=entry.message,
            ctx=entry.ctx,
        )
        for deliver_at in self.channel.transmit_up(envelope, now):
            self._transit_seq += 1
            heapq.heappush(
                self._up_transit, (deliver_at, self._transit_seq, envelope)
            )
        self.stats.sent += 1
        timeout = self.policy.timeout_for(entry.attempts)
        timeout *= 1.0 + self.policy.jitter * self._jitter_rng.random()
        entry.timeout = timeout
        entry.next_retry_at = now + timeout
        if self.obs.enabled:
            self.obs.inc("transport.sent")
            self.obs.event(
                "transport.send",
                msg_id=entry.msg_id,
                attempt=entry.attempts,
                type=type(entry.message).__name__,
            )

    def _deliver_uplink(self, now: float) -> None:
        while self._up_transit and self._up_transit[0][0] <= now:
            deliver_at, _, envelope = heapq.heappop(self._up_transit)
            if envelope.msg_id < self._next_deliver:
                # Already applied — the server's dedup cache answers, and
                # the (possibly lost) original ack is re-sent.
                self._apply_and_ack(envelope, deliver_at)
                continue
            self._reorder_buffer.setdefault(envelope.msg_id, envelope)
            while self._next_deliver in self._reorder_buffer:
                ready = self._reorder_buffer.pop(self._next_deliver)
                self._apply_and_ack(ready, deliver_at)
                self._next_deliver += 1

    def _apply_and_ack(self, envelope: Envelope, deliver_at: float) -> None:
        replies, duplicate = self.server.handle_envelope(envelope, self.client_id)
        ack = EnvelopeAck(
            ack_of=envelope.msg_id, replies=tuple(replies), duplicate=duplicate
        )
        for ack_at in self.channel.transmit_down(ack, deliver_at):
            self._transit_seq += 1
            heapq.heappush(self._down_transit, (ack_at, self._transit_seq, ack))

    def _deliver_acks(self, now: float) -> None:
        while self._down_transit and self._down_transit[0][0] <= now:
            _, _, ack = heapq.heappop(self._down_transit)
            entry = self._inflight.pop(ack.ack_of, None)
            if entry is None:
                self.stats.dup_acks += 1
                self.obs.inc("transport.dup_acks")
                continue
            self.stats.acked += 1
            if self.obs.enabled:
                self.obs.inc("transport.acked")
                self.obs.event(
                    "transport.ack",
                    msg_id=entry.msg_id,
                    attempts=entry.attempts,
                    rtt=now - entry.first_sent,
                )
            if self.on_reply is not None and ack.replies:
                self.on_reply(ack.replies)

    def _refill_window(self, now: float) -> None:
        while self._outbox and len(self._inflight) < self.policy.window:
            msg_id, message, ctx = self._outbox.popleft()
            self._launch(msg_id, message, now, ctx)

    def _retransmit_due(self, now: float) -> None:
        due = [e for e in self._inflight.values() if e.next_retry_at <= now]
        if not due:
            return
        with self.obs.span("transport.retransmit_round", due=len(due)):
            for entry in due:
                if entry.attempts >= self.policy.max_attempts:
                    raise RuntimeError(
                        f"msg {entry.msg_id} unacked after "
                        f"{entry.attempts} attempts"
                    )
                self.stats.timeouts += 1
                self.stats.retransmits += 1
                if self.obs.enabled:
                    self.obs.inc("transport.timeouts")
                    self.obs.inc("transport.retries")
                    self.obs.event(
                        "transport.timeout",
                        msg_id=entry.msg_id,
                        attempt=entry.attempts,
                        waited=entry.timeout,
                    )
                self.retransmit_log.append((now, entry.msg_id, entry.attempts + 1))
                self._transmit(entry, now)

    def _note_depth(self) -> None:
        if self.obs.enabled:
            self.obs.set_gauge("transport.inflight", len(self._inflight))
            self.obs.set_gauge("transport.outbox", len(self._outbox))
