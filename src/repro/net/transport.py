"""Byte accounting and transfer-time modelling for a client<->server link.

Two channel flavours live here: the perfect pipe (:class:`Channel`) every
experiment used historically, and :class:`LossyChannel`, which layers a
seeded :class:`~repro.faults.network.NetworkFaults` plan on top — drops,
duplicates, reorders, and transient partitions — for the fault-tolerant
transport (``repro.net.reliable``) to fight through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.rng import DeterministicRandom
from repro.cost.meter import CostMeter, NULL_METER
from repro.faults.network import NO_FAULTS, NetworkFaults
from repro.net.messages import Message
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True)
class NetworkModel:
    """Link characteristics.

    Attributes:
        bandwidth_up: client-to-server bytes/second.
        bandwidth_down: server-to-client bytes/second.
        latency: one-way propagation delay in seconds.
        encrypted: model OpenSSL on both ends (the prototype encrypts all
            messages).
    """

    bandwidth_up: float = 10e6
    bandwidth_down: float = 20e6
    latency: float = 0.02
    encrypted: bool = True


# The paper's two settings: EC2-to-EC2 (fast LAN-ish link) and a phone on a
# WAN ("the bandwidth of wide area network is very low", Section IV-B2).
PC_NETWORK = NetworkModel(bandwidth_up=10e6, bandwidth_down=20e6, latency=0.02)
MOBILE_NETWORK = NetworkModel(bandwidth_up=250e3, bandwidth_down=1e6, latency=0.08)


@dataclass
class NetworkStats:
    """Cumulative traffic counters for one link."""

    up_bytes: int = 0
    down_bytes: int = 0
    up_messages: int = 0
    down_messages: int = 0

    @property
    def total_bytes(self) -> int:
        return self.up_bytes + self.down_bytes


class Channel:
    """One client<->server link with accounting and a busy-time model.

    ``upload``/``download`` charge the traffic counters, bill network-stack
    and encryption CPU to both end meters, and advance the per-direction
    busy horizon so callers can ask "when would this transfer finish?" —
    which is how the mobile experiments exhibit their batching behaviour
    (a slow link still transmitting when the next update lands).
    """

    def __init__(
        self,
        model: NetworkModel = PC_NETWORK,
        *,
        client_meter: CostMeter = NULL_METER,
        server_meter: CostMeter = NULL_METER,
        obs: Observability = NULL_OBS,
    ):
        self.model = model
        self.client_meter = client_meter
        self.server_meter = server_meter
        self.obs = obs
        self.stats = NetworkStats()
        self._up_busy_until = 0.0
        self._down_busy_until = 0.0

    # -- transfers ---------------------------------------------------------

    def upload(self, message: Message, now: float = 0.0) -> float:
        """Account a client-to-server message; returns its completion time."""
        size = message.wire_size()
        self.stats.up_bytes += size
        self.stats.up_messages += 1
        self._charge(self.client_meter, "network_send", size)
        self._charge(self.server_meter, "network_recv", size)
        start = max(now, self._up_busy_until)
        self._up_busy_until = start + size / self.model.bandwidth_up
        done = self._up_busy_until + self.model.latency
        if self.obs.enabled:
            kind = type(message).__name__
            self.obs.inc("channel.up.bytes", size, type=kind)
            self.obs.inc("channel.up.messages", type=kind)
            self.obs.inc("channel.up.busy_time", self._up_busy_until - start)
            self.obs.observe("channel.message.bytes", size)
            self.obs.event(
                "channel.upload",
                type=kind,
                path=getattr(message, "path", ""),
                bytes=size,
                done_at=done,
            )
        return done

    def download(self, message: Message, now: float = 0.0) -> float:
        """Account a server-to-client message; returns its completion time."""
        size = message.wire_size()
        self.stats.down_bytes += size
        self.stats.down_messages += 1
        self._charge(self.server_meter, "network_send", size)
        self._charge(self.client_meter, "network_recv", size)
        start = max(now, self._down_busy_until)
        self._down_busy_until = start + size / self.model.bandwidth_down
        done = self._down_busy_until + self.model.latency
        if self.obs.enabled:
            kind = type(message).__name__
            self.obs.inc("channel.down.bytes", size, type=kind)
            self.obs.inc("channel.down.messages", type=kind)
            self.obs.inc("channel.down.busy_time", self._down_busy_until - start)
            self.obs.observe("channel.message.bytes", size)
            self.obs.event(
                "channel.download",
                type=kind,
                path=getattr(message, "path", ""),
                bytes=size,
                done_at=done,
            )
        return done

    # -- delivery-time API (the reliable transport consumes this) ----------

    def transmit_up(self, message: Message, now: float) -> List[float]:
        """Send uplink; returns the delivery time of each surviving copy.

        The perfect pipe delivers exactly one copy, on time. Lossy
        subclasses may return zero, one, or two delivery times.
        """
        return [self.upload(message, now)]

    def transmit_down(self, message: Message, now: float) -> List[float]:
        """Send downlink; returns the delivery time of each surviving copy."""
        return [self.download(message, now)]

    def upload_idle_at(self, now: float) -> bool:
        """True when the uplink has drained everything handed to it."""
        return self._up_busy_until <= now

    def download_idle_at(self, now: float) -> bool:
        """True when the downlink has drained everything handed to it."""
        return self._down_busy_until <= now

    @property
    def up_busy_until(self) -> float:
        """Virtual time at which the uplink finishes its queued transfers."""
        return self._up_busy_until

    @property
    def down_busy_until(self) -> float:
        """Virtual time at which the downlink finishes its queued transfers."""
        return self._down_busy_until

    # -- internals -----------------------------------------------------------

    def _charge(self, meter: CostMeter, category: str, size: int) -> None:
        meter.charge_bytes(category, size)
        if self.model.encrypted:
            meter.charge_bytes("encrypt", size)


@dataclass
class FaultStats:
    """Cumulative fault counts for one lossy link (both directions)."""

    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    partition_drops: int = 0


class LossyChannel(Channel):
    """A :class:`Channel` whose deliveries obey a seeded fault plan.

    ``transmit_up``/``transmit_down`` first charge the transfer exactly
    like the perfect pipe (a dropped message still spent its bytes on the
    wire — that is the cost retransmission models exist to expose), then
    draw the message's fate from per-direction forked RNG streams:

    - *partition* (deterministic in virtual time): the copy is lost;
    - *drop*: the copy is lost;
    - *duplicate*: a second copy is transmitted (and charged) too;
    - *reorder*: the first copy's delivery is delayed by
      ``faults.reorder_delay`` so a later send can overtake it.

    Every message consumes exactly three fate draws per direction, so the
    fault schedule depends only on the seed and the message sequence —
    identical seeds yield identical schedules, with or without
    observability attached.
    """

    def __init__(
        self,
        model: NetworkModel = PC_NETWORK,
        *,
        faults: NetworkFaults = NO_FAULTS,
        seed: int = 0,
        client_meter: CostMeter = NULL_METER,
        server_meter: CostMeter = NULL_METER,
        obs: Observability = NULL_OBS,
    ):
        super().__init__(
            model, client_meter=client_meter, server_meter=server_meter, obs=obs
        )
        faults.validate()
        self.faults = faults
        root = DeterministicRandom(seed).fork("lossy-channel")
        self._fate_rng = {"up": root.fork("up"), "down": root.fork("down")}
        self.fault_stats = FaultStats()

    def transmit_up(self, message: Message, now: float) -> List[float]:
        return self._transmit("up", message, now)

    def transmit_down(self, message: Message, now: float) -> List[float]:
        return self._transmit("down", message, now)

    # -- internals -----------------------------------------------------------

    def _transmit(self, direction: str, message: Message, now: float) -> List[float]:
        send = self.upload if direction == "up" else self.download
        done = send(message, now)
        rng = self._fate_rng[direction]
        # Fixed draw order/count per message keeps schedules seed-stable.
        dropped = rng.random() < self.faults.drop_prob
        duplicated = rng.random() < self.faults.dup_prob
        reordered = rng.random() < self.faults.reorder_prob

        if self.faults.in_partition(now):
            self.fault_stats.partition_drops += 1
            self._note_fault(direction, "partition", message)
            return []
        if dropped:
            self.fault_stats.dropped += 1
            self._note_fault(direction, "drop", message)
            return []
        deliveries = [done]
        if duplicated:
            # The duplicate occupies the link again: charged, counted.
            deliveries.append(send(message, now))
            self.fault_stats.duplicated += 1
            self._note_fault(direction, "duplicate", message)
        if reordered:
            deliveries[0] = done + self.faults.reorder_delay
            self.fault_stats.reordered += 1
            self._note_fault(direction, "reorder", message)
        return deliveries

    def _note_fault(self, direction: str, fate: str, message: Message) -> None:
        if not self.obs.enabled:
            return
        metric = {
            "partition": "channel.faults.partition_drops",
            "drop": "channel.faults.dropped",
            "duplicate": "channel.faults.duplicated",
            "reorder": "channel.faults.reordered",
        }[fate]
        self.obs.inc(metric, direction=direction)
        self.obs.event(
            "channel.fault",
            direction=direction,
            fate=fate,
            type=type(message).__name__,
        )
