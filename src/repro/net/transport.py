"""Byte accounting and transfer-time modelling for a client<->server link."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.meter import CostMeter, NULL_METER
from repro.net.messages import Message
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True)
class NetworkModel:
    """Link characteristics.

    Attributes:
        bandwidth_up: client-to-server bytes/second.
        bandwidth_down: server-to-client bytes/second.
        latency: one-way propagation delay in seconds.
        encrypted: model OpenSSL on both ends (the prototype encrypts all
            messages).
    """

    bandwidth_up: float = 10e6
    bandwidth_down: float = 20e6
    latency: float = 0.02
    encrypted: bool = True


# The paper's two settings: EC2-to-EC2 (fast LAN-ish link) and a phone on a
# WAN ("the bandwidth of wide area network is very low", Section IV-B2).
PC_NETWORK = NetworkModel(bandwidth_up=10e6, bandwidth_down=20e6, latency=0.02)
MOBILE_NETWORK = NetworkModel(bandwidth_up=250e3, bandwidth_down=1e6, latency=0.08)


@dataclass
class NetworkStats:
    """Cumulative traffic counters for one link."""

    up_bytes: int = 0
    down_bytes: int = 0
    up_messages: int = 0
    down_messages: int = 0

    @property
    def total_bytes(self) -> int:
        return self.up_bytes + self.down_bytes


class Channel:
    """One client<->server link with accounting and a busy-time model.

    ``upload``/``download`` charge the traffic counters, bill network-stack
    and encryption CPU to both end meters, and advance the per-direction
    busy horizon so callers can ask "when would this transfer finish?" —
    which is how the mobile experiments exhibit their batching behaviour
    (a slow link still transmitting when the next update lands).
    """

    def __init__(
        self,
        model: NetworkModel = PC_NETWORK,
        *,
        client_meter: CostMeter = NULL_METER,
        server_meter: CostMeter = NULL_METER,
        obs: Observability = NULL_OBS,
    ):
        self.model = model
        self.client_meter = client_meter
        self.server_meter = server_meter
        self.obs = obs
        self.stats = NetworkStats()
        self._up_busy_until = 0.0
        self._down_busy_until = 0.0

    # -- transfers ---------------------------------------------------------

    def upload(self, message: Message, now: float = 0.0) -> float:
        """Account a client-to-server message; returns its completion time."""
        size = message.wire_size()
        self.stats.up_bytes += size
        self.stats.up_messages += 1
        self._charge(self.client_meter, "network_send", size)
        self._charge(self.server_meter, "network_recv", size)
        start = max(now, self._up_busy_until)
        self._up_busy_until = start + size / self.model.bandwidth_up
        done = self._up_busy_until + self.model.latency
        if self.obs.enabled:
            kind = type(message).__name__
            self.obs.inc("channel.up.bytes", size, type=kind)
            self.obs.inc("channel.up.messages", type=kind)
            self.obs.inc("channel.up.busy_time", self._up_busy_until - start)
            self.obs.observe("channel.message.bytes", size)
            self.obs.event("channel.upload", type=kind, bytes=size, done_at=done)
        return done

    def download(self, message: Message, now: float = 0.0) -> float:
        """Account a server-to-client message; returns its completion time."""
        size = message.wire_size()
        self.stats.down_bytes += size
        self.stats.down_messages += 1
        self._charge(self.server_meter, "network_send", size)
        self._charge(self.client_meter, "network_recv", size)
        start = max(now, self._down_busy_until)
        self._down_busy_until = start + size / self.model.bandwidth_down
        done = self._down_busy_until + self.model.latency
        if self.obs.enabled:
            kind = type(message).__name__
            self.obs.inc("channel.down.bytes", size, type=kind)
            self.obs.inc("channel.down.messages", type=kind)
            self.obs.inc("channel.down.busy_time", self._down_busy_until - start)
            self.obs.observe("channel.message.bytes", size)
            self.obs.event("channel.download", type=kind, bytes=size, done_at=done)
        return done

    def upload_idle_at(self, now: float) -> bool:
        """True when the uplink has drained everything handed to it."""
        return self._up_busy_until <= now

    @property
    def up_busy_until(self) -> float:
        """Virtual time at which the uplink finishes its queued transfers."""
        return self._up_busy_until

    # -- internals -----------------------------------------------------------

    def _charge(self, meter: CostMeter, category: str, size: int) -> None:
        meter.charge_bytes(category, size)
        if self.model.encrypted:
            meter.charge_bytes("encrypt", size)
