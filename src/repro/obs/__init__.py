"""Structured observability: a metrics registry plus an event tracer.

This package is the measurement substrate the ROADMAP's performance work
reports against. It follows the :data:`repro.cost.meter.NULL_METER`
pattern: instrumented subsystems take an ``obs`` object and default to
:data:`NULL_OBS`, whose every recording method is a no-op — benchmarks run
with observability disabled are unperturbed (the Tier-1 suites assert
byte-identical results).

Two primitives, one facade:

- :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms under declared names (``repro.obs.names``);
- :class:`~repro.obs.tracer.Tracer` — spans with causal parent ids and
  point events, serializable to JSONL;
- :class:`Observability` — bundles both against one
  :class:`~repro.common.clock.VirtualClock` and offers terse call-site
  helpers (``obs.inc(...)``, ``obs.span(...)``).

The full instrumentation contract — naming scheme, span hierarchy, JSONL
schema — lives in ``docs/observability.md`` and is lint-checked against
``repro.obs.names`` in CI.

The offline read side lives next door: :mod:`repro.obs.analyze` rebuilds
span trees and attributes uplink bytes from a recorded JSONL trace, and
:mod:`repro.obs.export` renders Chrome trace-event JSON and OpenMetrics
exposition (``python -m repro inspect`` drives both).
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import VirtualClock
from repro.obs.analyze import (
    Attribution,
    AttributionError,
    Span,
    TraceDoc,
    attribute_uplink,
    critical_path,
    load_trace,
    load_trace_lines,
    load_traces,
    span_rollup,
)
from repro.obs.export import (
    check_openmetrics,
    registry_openmetrics,
    to_chrome_trace,
    to_openmetrics,
    write_chrome_trace,
    write_snapshot_record,
)
from repro.obs.health import (
    HealthReport,
    ShardHealth,
    health_from_trace,
    health_from_windows,
    validate_health_doc,
)
from repro.obs.names import EVENT_NAMES, EVENTS, METRIC_NAMES, METRICS, EventSpec, MetricSpec
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.render import histogram_quantile, text_report, to_json
from repro.obs.sketch import QuantileSketch, ShardWindows, WindowStats
from repro.obs.tracer import NULL_TRACER, TraceContext, TraceEvent, Tracer


class Observability:
    """One registry and one tracer sharing one virtual clock."""

    enabled = True

    def __init__(
        self,
        *,
        clock: Optional[VirtualClock] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.clock = clock if clock is not None else VirtualClock()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.clock)

    def bind_clock(self, clock: VirtualClock) -> None:
        """Point timestamps at ``clock`` (the experiment's time source).

        Call before any events are recorded — the harness does this right
        after building a system so trace timestamps share the run's
        virtual timeline.
        """
        self.clock = clock
        self.tracer.clock = clock

    # -- terse call-site helpers ------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        self.metrics.inc(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.metrics.observe(name, value, **labels)

    def span(self, name: str, link: Optional[TraceContext] = None, **attrs: object):
        return self.tracer.span(name, link=link, **attrs)

    def current_context(self) -> Optional[TraceContext]:
        """The tracer's propagatable span identity (``None`` when idle)."""
        return self.tracer.current_context()

    def event(self, name: str, **attrs: object) -> None:
        self.tracer.event(name, **attrs)

    def report(self) -> str:
        """The text report for this run (see :func:`repro.obs.render.text_report`)."""
        return text_report(self.metrics, self.tracer)

    def to_json(self) -> str:
        """Snapshot + trace as JSON (see :func:`repro.obs.render.to_json`)."""
        return to_json(self.metrics, self.tracer)


class _NullObservability(Observability):
    """The disabled path: every recording is a no-op."""

    enabled = False

    def __init__(self):
        super().__init__(registry=NULL_REGISTRY, tracer=NULL_TRACER)

    def bind_clock(self, clock: VirtualClock) -> None:
        pass

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def span(self, name: str, link: Optional[TraceContext] = None, **attrs: object):
        return self.tracer.span(name)

    def current_context(self) -> Optional[TraceContext]:
        return None

    def event(self, name: str, **attrs: object) -> None:
        pass


NULL_OBS = _NullObservability()

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NULL_TRACER",
    "TraceEvent",
    "TraceContext",
    "QuantileSketch",
    "ShardWindows",
    "WindowStats",
    "HealthReport",
    "ShardHealth",
    "health_from_windows",
    "health_from_trace",
    "validate_health_doc",
    "MetricSpec",
    "EventSpec",
    "METRICS",
    "EVENTS",
    "METRIC_NAMES",
    "EVENT_NAMES",
    "text_report",
    "to_json",
    "histogram_quantile",
    "TraceDoc",
    "Span",
    "Attribution",
    "AttributionError",
    "load_trace",
    "load_trace_lines",
    "load_traces",
    "span_rollup",
    "critical_path",
    "attribute_uplink",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_openmetrics",
    "registry_openmetrics",
    "check_openmetrics",
    "write_snapshot_record",
]
