"""Offline trace analysis: span trees, time rollups, byte attribution.

This module is the read side of the telemetry contract: it takes a JSONL
trace written by :meth:`repro.obs.tracer.Tracer.write_jsonl` (or the
streaming sink) and answers the questions the recording side cannot —
where the virtual time went, and where every uplink byte went.

Three layers:

- :func:`load_trace` / :func:`load_trace_lines` — parse the JSONL back
  into records, rebuild the span tree (:class:`Span`), and pick up the
  optional trailing ``{"type": "snapshot"}`` metrics record the CLI
  appends.
- :func:`span_rollup` / :func:`critical_path` — per-span self/total
  virtual time, per-name aggregates, and the longest span chain of the
  replay.
- :func:`attribute_uplink` — the cost-attribution report: every
  ``channel.upload`` byte is assigned to a ``(path, mechanism)`` pair by
  joining the channel events against ``queue.node.shipped`` /
  ``client.upload_unit`` / ``transport.send`` records, and the total is
  reconciled **exactly** against the run's ``channel.up.bytes`` counters
  (drift raises :class:`AttributionError` — the report doubles as a
  consistency check on the instrumentation).

Mechanisms (the DeltaCFS §III decision space, plus the overheads the
fault-tolerant transport and crash recovery introduce):

- ``rpc`` — raw content uploads: the NFS-like file RPC path
  (``UploadWrite``/``UploadWriteBatch``), full-file uploads, truncates,
  and baseline chunk payloads;
- ``delta`` — ``UploadDelta`` messages (the paper's win);
- ``txn_group`` — backindex spans shipped as one ``TxnGroup``,
  apportioned to member paths by member wire size;
- ``metadata`` — ``MetaOp`` and protocol negotiation messages;
- ``recovery`` — post-crash resync and ranged-repair requests;
- ``retransmit_overhead`` — bytes a lossy link made the client spend
  again: envelope retransmissions (attempt > 1) and fault-plan duplicate
  copies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: message class -> attribution mechanism for first-copy, first-attempt bytes.
MECHANISM_BY_TYPE: Dict[str, str] = {
    "UploadFull": "rpc",
    "UploadWrite": "rpc",
    "UploadWriteBatch": "rpc",
    "UploadTruncate": "rpc",
    "ChunkData": "rpc",
    "UploadDelta": "delta",
    "TxnGroup": "txn_group",
    "MetaOp": "metadata",
    "SignatureMessage": "metadata",
    "ChunkHave": "metadata",
    "HistoryRequest": "metadata",
    "RestoreRequest": "metadata",
    "Ack": "metadata",
    "ResyncRequest": "recovery",
    "RangeRequest": "recovery",
    "RangeReply": "recovery",
    "FileDownload": "rpc",
}

MECHANISMS: Tuple[str, ...] = (
    "rpc",
    "delta",
    "txn_group",
    "metadata",
    "recovery",
    "retransmit_overhead",
)


class TraceFormatError(ValueError):
    """A JSONL line (or the record stream) violates the documented schema."""


class AttributionError(ValueError):
    """The attribution total drifted from the recorded byte counters."""


@dataclass
class Span:
    """One rebuilt span: timing, attrs, children, and attached events.

    ``id`` is the *document-global* span id: when a doc merges multiple
    tracer sources, per-source local ids are renumbered so they cannot
    collide; ``(source, local_id)`` preserves the original identity.
    """

    id: int
    name: str
    parent: Optional[int]
    start: float
    attrs: Dict[str, object] = field(default_factory=dict)
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    truncated: bool = False  # span_start without span_end (e.g. a crash cut)
    source: str = ""  # emitting tracer's name ("" for unnamed)
    local_id: Optional[int] = None  # the id inside its own source
    orphan: bool = False  # parent never appeared (truncated source)
    stitched: bool = False  # re-parented along a trace.link edge

    @property
    def duration(self) -> float:
        """Total virtual time, start to end (0.0 for an unclosed span)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def self_time(self) -> float:
        """Virtual time not covered by child spans (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))


@dataclass
class TraceDoc:
    """A loaded trace: raw records plus the rebuilt structures."""

    records: List[dict]
    roots: List[Span] = field(default_factory=list)
    spans: Dict[int, Span] = field(default_factory=dict)
    snapshot: Optional[Dict[str, object]] = None  # the metrics snapshot record
    sources: List[str] = field(default_factory=list)  # distinct tracer names
    id_map: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def point_events(self) -> List[dict]:
        """Raw point-event records, in emission order."""
        return [r for r in self.records if r.get("type") == "event"]

    def find_spans(self, name: str) -> List[Span]:
        """All spans with ``name``, in start order."""
        return [s for s in sorted(self.spans.values(), key=lambda s: s.id)
                if s.name == name]

    def ancestors(self, span_id: Optional[int]) -> Iterable[Span]:
        """The span with ``span_id`` and every enclosing span, inside out."""
        while span_id is not None:
            span = self.spans.get(span_id)
            if span is None:
                return
            yield span
            span_id = span.parent

    def in_span_named(self, parent_id: Optional[int], name: str) -> bool:
        """True when any enclosing span (from ``parent_id`` up) is ``name``."""
        return any(s.name == name for s in self.ancestors(parent_id))

    def enclosing(self, parent_id: Optional[int], name: str) -> Optional[Span]:
        """The innermost enclosing span named ``name``, or ``None``."""
        for span in self.ancestors(parent_id):
            if span.name == name:
                return span
        return None


def _parse_lines(
    lines: Iterable[str], *, label: str = ""
) -> Tuple[List[dict], List[dict]]:
    """JSONL lines -> (trace records, snapshot records); schema-checked."""
    records: List[dict] = []
    snapshots: List[dict] = []
    where = f"{label}: " if label else ""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{where}line {lineno}: not JSON ({exc})"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TraceFormatError(f"{where}line {lineno}: record without a type")
        kind = record["type"]
        if kind == "snapshot":
            snapshots.append(record)
            continue
        if kind not in ("span_start", "span_end", "event"):
            raise TraceFormatError(
                f"{where}line {lineno}: unknown record type {kind!r}"
            )
        records.append(record)
    return records, snapshots


def _merge_snapshots(snapshots: List[dict]) -> Optional[Dict[str, object]]:
    """Fold several per-source metric snapshots into one.

    Scalar series add (counters dominate a merge; summing gauges is the
    only consistent choice without per-family metadata); histogram series
    add element-wise over count/sum/buckets.
    """
    if not snapshots:
        return None
    if len(snapshots) == 1:
        return snapshots[0]
    metrics: Dict[str, object] = {}
    for snap in snapshots:
        for key, value in (snap.get("metrics") or {}).items():
            if isinstance(value, dict):
                into = metrics.setdefault(
                    key, {"count": 0, "sum": 0.0, "buckets": {}}
                )
                into["count"] += value.get("count", 0)
                into["sum"] += value.get("sum", 0.0)
                buckets = into["buckets"]
                for bucket, n in (value.get("buckets") or {}).items():
                    buckets[bucket] = buckets.get(bucket, 0) + n
            else:
                metrics[key] = metrics.get(key, 0.0) + float(value)
    ts = max(float(s.get("ts", 0.0)) for s in snapshots)
    return {"type": "snapshot", "ts": ts, "metrics": metrics}


def _build_doc(
    entries: List[Tuple[str, dict]], snapshots: List[dict]
) -> TraceDoc:
    """Assemble a :class:`TraceDoc` from ``(source, record)`` pairs.

    Span ids are namespaced by source: when more than one source is
    present (or any source is named), every ``(source, local_id)`` pair is
    renumbered to a fresh document-global id and the records are
    rewritten in place — including ``trace.link`` attrs, which name spans
    of *other* sources — so downstream consumers (rollups, attribution,
    exporters) keep working on plain unique ints. A single unnamed source
    keeps its ids verbatim, so existing single-trace docs are unchanged.

    Orphan tolerance: a span whose parent never appears (a truncated or
    partial source file) becomes a root flagged ``orphan`` instead of
    crashing the load. A ``span_end`` for a span that never started is
    still a format error.
    """
    distinct = {src for src, _ in entries}
    remap = len(distinct) > 1 or any(src for src in distinct)
    doc = TraceDoc(
        records=[rec for _, rec in entries],
        snapshot=_merge_snapshots(snapshots),
    )
    for src, _ in entries:
        if src not in doc.sources:
            doc.sources.append(src)
    id_map = doc.id_map
    counter = 0

    def gid(src: str, local: object) -> int:
        nonlocal counter
        key = (src, int(local))  # type: ignore[arg-type]
        mapped = id_map.get(key)
        if mapped is None:
            if remap:
                counter += 1
                mapped = counter
            else:
                mapped = int(local)  # type: ignore[arg-type]
            id_map[key] = mapped
        return mapped

    last_ts = 0.0
    for src, record in entries:
        ts = float(record.get("ts", 0.0))
        last_ts = max(last_ts, ts)
        kind = record["type"]
        if kind == "span_start":
            local = int(record["id"])
            span_id = gid(src, local)
            if span_id in doc.spans:
                raise TraceFormatError(f"span id {local} started twice")
            parent_id = record.get("parent")
            if parent_id is not None:
                parent_id = gid(src, parent_id)
            if remap:
                record["id"] = span_id
                record["parent"] = parent_id
            span = Span(
                id=span_id,
                name=str(record["name"]),
                parent=parent_id,
                start=ts,
                attrs=dict(record.get("attrs", {})),
                source=src,
                local_id=local,
            )
            doc.spans[span_id] = span
            if parent_id is None:
                doc.roots.append(span)
            else:
                parent = doc.spans.get(parent_id)
                if parent is None:
                    span.orphan = True
                    span.parent = None
                    doc.roots.append(span)
                else:
                    parent.children.append(span)
        elif kind == "span_end":
            key = (src, int(record.get("id", -1)))
            span = doc.spans.get(id_map.get(key, -1))
            if span is None:
                raise TraceFormatError(
                    f"span_end for unknown span id {record.get('id')!r}"
                )
            if remap:
                record["id"] = span.id
                record["parent"] = span.parent
            span.end = ts
        else:  # point event
            parent_id = record.get("parent")
            if parent_id is not None:
                parent_id = gid(src, parent_id)
                if remap:
                    record["parent"] = parent_id
                owner = doc.spans.get(parent_id)
                if owner is not None:
                    owner.events.append(record)
            if remap and record.get("name") == "trace.link":
                attrs = record.get("attrs", {})
                link_src = str(attrs.get("src", ""))
                for field_name in ("span", "trace"):
                    if field_name in attrs:
                        attrs[field_name] = gid(link_src, attrs[field_name])
    # A crash (or a truncated file) can leave spans open: close them at the
    # last observed timestamp and mark them, so timing math stays total.
    for span in doc.spans.values():
        if span.end is None:
            span.end = max(last_ts, span.start)
            span.truncated = True
    _stitch_links(doc)
    return doc


def _stitch_links(doc: TraceDoc) -> None:
    """Re-parent root spans along their cross-source ``trace.link`` edges.

    Stitching rule: only *root* spans move — a linked span that already
    has a local parent keeps it (its link still renders as a flow arrow,
    but the tree shape is owned by the in-process nesting). Unresolvable
    targets (the linked source wasn't loaded) leave the span a root.
    """
    for span in list(doc.roots):
        link = next(
            (e for e in span.events if e.get("name") == "trace.link"), None
        )
        if link is None:
            continue
        target_id = link.get("attrs", {}).get("span")
        target = doc.spans.get(target_id) if isinstance(target_id, int) else None
        if target is None or target.id == span.id:
            continue
        if any(s.id == span.id for s in doc.ancestors(target.id)):
            continue  # would create a cycle; keep the span a root
        span.parent = target.id
        span.stitched = True
        doc.roots.remove(span)
        target.children.append(span)
        target.children.sort(key=lambda s: (s.start, s.id))


def load_trace_lines(lines: Iterable[str], *, source: str = "") -> TraceDoc:
    """Parse JSONL lines into a :class:`TraceDoc` (see :func:`load_trace`).

    ``source`` labels records that carry no ``src`` key of their own —
    useful when callers merge several anonymous traces by hand.
    """
    records, snapshots = _parse_lines(lines)
    entries = [(str(r.get("src", "") or source), r) for r in records]
    return _build_doc(entries, snapshots)


def load_trace(path: str) -> TraceDoc:
    """Load a JSONL trace file and rebuild its span tree."""
    with open(path, "r", encoding="utf-8") as fh:
        return load_trace_lines(fh)


def load_traces(
    paths: List[str], *, sources: Optional[List[str]] = None
) -> TraceDoc:
    """Load and merge several JSONL traces into one multi-source doc.

    Each file's records keep their own ``src`` labels when present;
    unlabelled records take the file's entry from ``sources`` (or a
    label derived from the file name, made unique in path order). The
    merged stream is ordered by timestamp, stable within a file, so
    same-source causality is preserved; snapshots merge additively.
    """
    if sources is not None and len(sources) != len(paths):
        raise ValueError("sources must parallel paths")
    labels: List[str] = []
    for i, path in enumerate(paths):
        if sources is not None:
            label = sources[i]
        else:
            base = path.rsplit("/", 1)[-1]
            label = base.rsplit(".", 1)[0] or base
        while label in labels:
            label += "+"
        labels.append(label)
    entries: List[Tuple[str, dict]] = []
    snapshots: List[dict] = []
    for path, label in zip(paths, labels):
        with open(path, "r", encoding="utf-8") as fh:
            records, snaps = _parse_lines(fh, label=label)
        snapshots.extend(snaps)
        entries.extend(
            (str(r.get("src", "") or label), r) for r in records
        )
    entries.sort(key=lambda pair: float(pair[1].get("ts", 0.0)))
    return _build_doc(entries, snapshots)


# ---------------------------------------------------------------------------
# time rollups
# ---------------------------------------------------------------------------


@dataclass
class RollupRow:
    """Aggregate timing for one span name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    truncated: int = 0


def span_rollup(doc: TraceDoc) -> List[RollupRow]:
    """Per-name span aggregates, sorted by total time descending."""
    rows: Dict[str, RollupRow] = {}
    for span in doc.spans.values():
        row = rows.setdefault(span.name, RollupRow(name=span.name))
        row.count += 1
        row.total += span.duration
        row.self_time += span.self_time
        row.truncated += 1 if span.truncated else 0
    return sorted(rows.values(), key=lambda r: (-r.total, r.name))


def critical_path(doc: TraceDoc) -> List[Span]:
    """The longest-duration chain of spans, root to leaf.

    Starts at the longest root span (ties broken by id, i.e. start order)
    and repeatedly descends into the longest child. In a virtual-time
    replay this is the chain of phases that actually bounded the run —
    the place a perf PR has to attack first.
    """
    if not doc.roots:
        return []
    path: List[Span] = []
    node = max(doc.roots, key=lambda s: (s.duration, -s.id))
    while node is not None:
        path.append(node)
        node = max(node.children, key=lambda s: (s.duration, -s.id), default=None)
    return path


def event_counts(doc: TraceDoc) -> List[Tuple[str, int]]:
    """Point-event counts by name, most frequent first."""
    counts: Dict[str, int] = {}
    for record in doc.point_events():
        counts[record["name"]] = counts.get(record["name"], 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


# ---------------------------------------------------------------------------
# cost attribution
# ---------------------------------------------------------------------------


@dataclass
class AttributionRow:
    """Bytes one (path, mechanism) pair spent on the uplink."""

    path: str
    mechanism: str
    bytes: int = 0
    messages: int = 0


@dataclass
class Attribution:
    """The full uplink cost-attribution report for one trace."""

    rows: List[AttributionRow]
    total_bytes: int
    channel_up_bytes: int  # sum of the measured-window channel.upload events
    preload_bytes: int  # uplink bytes excluded as run.preload traffic
    snapshot_up_bytes: Optional[int] = None  # from the metrics snapshot record

    def by_mechanism(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            out[row.mechanism] = out.get(row.mechanism, 0) + row.bytes
        return out

    def by_path(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            out[row.path] = out.get(row.path, 0) + row.bytes
        return out

    def reconcile(self, expected_up_bytes: Optional[int] = None) -> None:
        """Assert every uplink byte was attributed exactly once.

        Checks the attribution total against the trace's own
        ``channel.upload`` events, against the embedded metrics snapshot
        (when present), and against ``expected_up_bytes`` (e.g.
        ``RunResult.up_bytes``) when the caller has one. Any drift raises
        :class:`AttributionError` — by construction this means the
        instrumentation contract itself broke, not just the report.
        """
        problems: List[str] = []
        if self.total_bytes != self.channel_up_bytes:
            problems.append(
                f"attributed {self.total_bytes} B but the measured-window "
                f"channel.upload events carry {self.channel_up_bytes} B"
            )
        if (
            self.snapshot_up_bytes is not None
            and self.total_bytes != self.snapshot_up_bytes
        ):
            problems.append(
                f"attributed {self.total_bytes} B but the metrics snapshot's "
                f"channel.up.bytes total is {self.snapshot_up_bytes} B"
            )
        if expected_up_bytes is not None and self.total_bytes != expected_up_bytes:
            problems.append(
                f"attributed {self.total_bytes} B but the run reported "
                f"up_bytes={expected_up_bytes}"
            )
        if problems:
            raise AttributionError("; ".join(problems))


def _apportion(total: int, weights: List[int]) -> List[int]:
    """Split ``total`` by ``weights`` into integers that sum exactly.

    Largest-remainder method with deterministic ties (earlier index wins),
    so repeated analyses of one trace agree byte for byte.
    """
    if not weights:
        return []
    weight_sum = sum(weights)
    if weight_sum <= 0:
        shares = [total // len(weights)] * len(weights)
        shares[0] += total - sum(shares)
        return shares
    shares = [total * w // weight_sum for w in weights]
    remainders = [
        (total * w % weight_sum, -i) for i, w in enumerate(weights)
    ]
    leftover = total - sum(shares)
    for _, neg_i in sorted(remainders, reverse=True)[:leftover]:
        shares[-neg_i] += 1
    return shares


def _snapshot_up_bytes(snapshot: Optional[Dict[str, object]]) -> Optional[int]:
    """Sum of the ``channel.up.bytes`` series in a snapshot record."""
    if not snapshot:
        return None
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        return None
    total = 0.0
    seen = False
    for key, value in metrics.items():
        family = key.split("{", 1)[0]
        if family == "channel.up.bytes":
            total += float(value)  # type: ignore[arg-type]
            seen = True
    return int(total) if seen else None


def _unit_members(
    doc: TraceDoc, parent_id: Optional[int]
) -> Tuple[List[str], List[int]]:
    """(paths, member wire sizes) of the enclosing ``client.upload_unit``."""
    unit = doc.enclosing(parent_id, "client.upload_unit")
    if unit is None:
        return [""], [1]
    paths = [str(p) for p in unit.attrs.get("paths", [])]
    member_bytes = [int(b) for b in unit.attrs.get("member_bytes", [])]
    if not paths or len(paths) != len(member_bytes):
        return [""], [1]
    return paths, member_bytes


def attribute_uplink(doc: TraceDoc) -> Attribution:
    """Attribute every measured-window uplink byte to (path, mechanism).

    The measured window excludes traffic inside the ``run.preload`` span,
    mirroring the harness's counter reset, so the total matches
    ``RunResult.up_bytes`` / the ``channel.up.bytes`` counters exactly.

    Join logic, in emission order:

    - a ``channel.upload`` of a pathed message is attributed directly by
      its message class;
    - a ``TxnGroup`` upload is apportioned over the member paths recorded
      on its enclosing ``client.upload_unit`` span (member wire sizes as
      weights, largest-remainder so the split is exact);
    - ``Envelope`` uploads are claimed by the ``transport.send`` event the
      transport emits right after transmitting: attempt 1 keeps the inner
      message's mechanism, attempts > 1 (and fault-plan duplicate copies)
      become ``retransmit_overhead``. Paths come from the
      ``transport.enqueued`` event that tied the msg_id to its upload
      unit.
    """
    rows: Dict[Tuple[str, str], AttributionRow] = {}
    preload_bytes = 0
    channel_up_bytes = 0

    def charge(path: str, mechanism: str, nbytes: int, *, message: bool) -> None:
        row = rows.setdefault(
            (path, mechanism), AttributionRow(path=path, mechanism=mechanism)
        )
        row.bytes += nbytes
        if message:
            row.messages += 1

    def charge_split(
        paths: List[str], weights: List[int], mechanism: str, nbytes: int
    ) -> None:
        shares = _apportion(nbytes, weights)
        for i, (path, share) in enumerate(zip(paths, shares)):
            charge(path, mechanism, share, message=(i == 0))

    # (source, msg_id) -> (inner type, member paths, member weights), from
    # the transport.enqueued join event. msg_ids are per-client counters,
    # so in a merged multi-source trace they only disambiguate per source.
    enqueued: Dict[Tuple[str, int], Tuple[str, List[str], List[int]]] = {}
    # Envelope uploads not yet claimed by their transport.send event,
    # per source (each client's transport claims only its own uploads).
    pending_by_source: Dict[str, List[dict]] = {}

    def resolve_envelopes(send_record: dict) -> None:
        attrs = send_record.get("attrs", {})
        src = str(send_record.get("src", ""))
        pending_envelopes = pending_by_source.get(src, [])
        msg_id = int(attrs.get("msg_id", -1))
        attempt = int(attrs.get("attempt", 1))
        inner_type = str(attrs.get("type", ""))
        info = enqueued.get((src, msg_id))
        if info is not None:
            _, paths, weights = info
        else:
            paths, weights = [""], [1]
        base_mechanism = (
            "retransmit_overhead"
            if attempt > 1
            else MECHANISM_BY_TYPE.get(inner_type, "metadata")
        )
        for copy_index, upload in enumerate(pending_envelopes):
            if doc.in_span_named(upload.get("parent"), "run.preload"):
                continue
            nbytes = int(upload["attrs"].get("bytes", 0))
            # The first copy is the send itself; extra copies are the
            # fault plan duplicating the transmission — pure link overhead.
            mechanism = base_mechanism if copy_index == 0 else "retransmit_overhead"
            charge_split(paths, weights, mechanism, nbytes)
        pending_envelopes.clear()

    for record in doc.records:
        if record.get("type") != "event":
            continue
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "transport.enqueued":
            msg_id = int(attrs.get("msg_id", -1))
            paths, weights = _unit_members(doc, record.get("parent"))
            enqueued[(str(record.get("src", "")), msg_id)] = (
                str(attrs.get("type", "")),
                paths,
                weights,
            )
            continue
        if name == "transport.send":
            resolve_envelopes(record)
            continue
        if name != "channel.upload":
            continue
        nbytes = int(attrs.get("bytes", 0))
        msg_type = str(attrs.get("type", ""))
        in_preload = doc.in_span_named(record.get("parent"), "run.preload")
        if msg_type == "Envelope":
            # Byte bookkeeping happens when the transport.send claims it;
            # the preload split is re-checked there per copy.
            pending_by_source.setdefault(str(record.get("src", "")), []).append(
                record
            )
            if in_preload:
                preload_bytes += nbytes
            else:
                channel_up_bytes += nbytes
            continue
        if in_preload:
            preload_bytes += nbytes
            continue
        channel_up_bytes += nbytes
        if msg_type == "TxnGroup":
            paths, weights = _unit_members(doc, record.get("parent"))
            charge_split(paths, weights, "txn_group", nbytes)
        else:
            mechanism = MECHANISM_BY_TYPE.get(msg_type, "metadata")
            charge(str(attrs.get("path", "")), mechanism, nbytes, message=True)

    # Envelope uploads with no transport.send to claim them mean the
    # emission contract broke; surface it as drift at reconcile time by
    # leaving those bytes unattributed.
    pending_by_source.clear()

    ordered = sorted(rows.values(), key=lambda r: (-r.bytes, r.path, r.mechanism))
    return Attribution(
        rows=ordered,
        total_bytes=sum(r.bytes for r in ordered),
        channel_up_bytes=channel_up_bytes,
        preload_bytes=preload_bytes,
        snapshot_up_bytes=_snapshot_up_bytes(doc.snapshot),
    )
