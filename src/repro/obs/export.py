"""Exporters: Chrome trace-event JSON and OpenMetrics text exposition.

Two standard formats so recorded runs open in off-the-shelf viewers:

- :func:`to_chrome_trace` turns a loaded :class:`~repro.obs.analyze.TraceDoc`
  (or raw JSONL records) into the Chrome trace-event JSON array format —
  loadable in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Virtual seconds become microseconds (the format's native unit), spans
  become ``B``/``E`` duration pairs, point events become ``i`` instants.
- :func:`to_openmetrics` renders a metrics snapshot (live registry or the
  ``{"type": "snapshot"}`` record a trace file embeds) as OpenMetrics
  text exposition, with ``# TYPE``/``# HELP``/``# UNIT`` metadata from
  the declared catalog and cumulative ``_bucket{le=...}`` histograms.
- :func:`check_openmetrics` is a strict-enough self-check of the
  exposition (metadata ordering, sample name/family agreement, terminal
  ``# EOF``) used by tests and the acceptance gate.

Also here: :func:`write_snapshot_record`, the helper the CLI uses to
append the metrics snapshot as one extra JSONL line after a streamed
trace, so a single ``trace.jsonl`` carries everything ``inspect`` needs.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.names import HISTOGRAM, MetricSpec, metric_spec
from repro.obs.registry import MetricsRegistry

# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

_US_PER_VIRTUAL_SECOND = 1_000_000


def chrome_trace_events(records: Iterable[dict]) -> List[dict]:
    """Convert raw trace records to Chrome trace-event objects.

    Spans map to ``B``/``E`` pairs, point events to thread-scoped ``i``
    instants. Single-source traces stay on pid/tid 1 (the replay is
    single-threaded virtual time); in a multi-source trace each tracer
    source gets its own pid with a ``process_name`` metadata event, and
    every ``trace.link`` point event additionally renders as a flow-event
    pair (``ph: "s"`` at the linked span's start in its source, ``ph:
    "f"`` with ``bp: "e"`` at the link site) so the cross-process causal
    edges draw as arrows in Perfetto. Records are converted in emission
    order; spans a crash left unclosed get a synthesized ``E`` at the
    last observed timestamp so viewers do not render them as infinite.
    """
    records = [r for r in records if r.get("type") != "snapshot"]
    pids: Dict[str, int] = {}
    for record in records:
        src = str(record.get("src", ""))
        if src not in pids:
            pids[src] = len(pids) + 1
    multi_source = len(pids) > 1 or any(pids)
    out: List[dict] = []
    if multi_source:
        for src, pid in pids.items():
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": pid,
                    "args": {"name": src or "main"},
                }
            )
    # Index span starts by (source, id) — the flow anchors for links.
    span_starts: Dict[Tuple[str, int], Tuple[float, int]] = {}
    for record in records:
        if record.get("type") == "span_start":
            src = str(record.get("src", ""))
            span_starts[(src, int(record["id"]))] = (
                float(record.get("ts", 0.0)) * _US_PER_VIRTUAL_SECOND,
                pids[src],
            )
    open_spans: Dict[Tuple[str, int], Tuple[str, int]] = {}  # key -> (name, pid)
    flow_count = 0
    last_ts = 0.0
    for record in records:
        kind = record.get("type")
        src = str(record.get("src", ""))
        pid = pids[src]
        ts_us = float(record.get("ts", 0.0)) * _US_PER_VIRTUAL_SECOND
        last_ts = max(last_ts, ts_us)
        name = str(record.get("name", ""))
        if kind == "span_start":
            open_spans[(src, int(record["id"]))] = (name, pid)
            out.append(
                {
                    "name": name,
                    "ph": "B",
                    "ts": ts_us,
                    "pid": pid,
                    "tid": pid,
                    "args": dict(record.get("attrs", {})),
                }
            )
        elif kind == "span_end":
            open_spans.pop((src, int(record.get("id", -1))), None)
            out.append(
                {"name": name, "ph": "E", "ts": ts_us, "pid": pid, "tid": pid}
            )
        elif kind == "event":
            out.append(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "ts": ts_us,
                    "pid": pid,
                    "tid": pid,
                    "args": dict(record.get("attrs", {})),
                }
            )
            if name == "trace.link":
                attrs = record.get("attrs", {})
                anchor = span_starts.get(
                    (str(attrs.get("src", "")), int(attrs.get("span", -1)))
                )
                if anchor is not None:
                    flow_count += 1
                    start_us, start_pid = anchor
                    out.append(
                        {
                            "name": "trace.link",
                            "cat": "trace",
                            "ph": "s",
                            "id": flow_count,
                            "ts": start_us,
                            "pid": start_pid,
                            "tid": start_pid,
                        }
                    )
                    out.append(
                        {
                            "name": "trace.link",
                            "cat": "trace",
                            "ph": "f",
                            "bp": "e",
                            "id": flow_count,
                            "ts": ts_us,
                            "pid": pid,
                            "tid": pid,
                        }
                    )
    # LIFO close order keeps synthesized ends properly nested.
    for key in sorted(open_spans, reverse=True):
        span_name, pid = open_spans[key]
        out.append(
            {
                "name": span_name,
                "ph": "E",
                "ts": last_ts,
                "pid": pid,
                "tid": pid,
            }
        )
    return out


def to_chrome_trace(records: Iterable[dict], *, indent: Optional[int] = None) -> str:
    """Chrome trace-event JSON document (the ``traceEvents`` object form)."""
    doc = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.obs"},
    }
    return json.dumps(doc, sort_keys=True, indent=indent)


def write_chrome_trace(records: Iterable[dict], path: str) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    events = chrome_trace_events(records)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.obs"},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    return len(events)


# ---------------------------------------------------------------------------
# OpenMetrics text exposition
# ---------------------------------------------------------------------------

_SERIES_RE = re.compile(r"^(?P<family>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _om_name(name: str) -> str:
    """Dotted catalog name -> OpenMetrics metric name."""
    return name.replace(".", "_").replace("-", "_")


def _om_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _parse_series(rendered: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split a rendered ``family{k=v,...}`` series into family + labels."""
    match = _SERIES_RE.match(rendered)
    if match is None:  # pragma: no cover - snapshot keys are well-formed
        return rendered, []
    family = match.group("family")
    labels_raw = match.group("labels")
    labels: List[Tuple[str, str]] = []
    if labels_raw:
        for part in labels_raw.split(","):
            key, _, value = part.partition("=")
            labels.append((key, value))
    return family, labels


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _labels_text(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_om_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _spec_for(family: str, specs: Dict[str, MetricSpec]) -> Optional[MetricSpec]:
    if family in specs:
        return specs[family]
    try:
        return metric_spec(family)
    except KeyError:
        return None


def to_openmetrics(
    snapshot: Dict[str, object],
    *,
    specs: Optional[Dict[str, MetricSpec]] = None,
) -> str:
    """Render a registry snapshot as OpenMetrics text exposition.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output (or the
    ``metrics`` field of an embedded trace snapshot record): rendered
    series name -> scalar, or family name -> histogram dict. Families are
    typed from the declared catalog; undeclared families fall back to
    ``unknown``. Ends with the mandatory ``# EOF``.
    """
    specs = specs or {}
    # Group the flat snapshot back into families, preserving sorted order.
    scalars: Dict[str, List[Tuple[List[Tuple[str, str]], float]]] = {}
    histograms: Dict[
        str, List[Tuple[List[Tuple[str, str]], Dict[str, object]]]
    ] = {}
    for rendered, value in snapshot.items():
        family, labels = _parse_series(rendered)
        if isinstance(value, dict):
            histograms.setdefault(family, []).append((labels, value))
            continue
        scalars.setdefault(family, []).append((labels, float(value)))

    lines: List[str] = []

    def emit_metadata(family: str, om: str, fallback_type: str) -> None:
        spec = _spec_for(family, specs)
        kind = spec.kind if spec is not None else fallback_type
        lines.append(f"# TYPE {om} {kind if spec is not None else fallback_type}")
        if spec is not None and spec.unit and om.endswith("_" + spec.unit):
            lines.append(f"# UNIT {om} {spec.unit}")
        if spec is not None and spec.help:
            lines.append(f"# HELP {om} {_om_escape(spec.help)}")

    for family in sorted(set(scalars) | set(histograms)):
        om = _om_name(family)
        if family in histograms:
            emit_metadata(family, om, HISTOGRAM)

            # Sort bucket keys numerically, le_inf last.
            def bound_of(key: str) -> float:
                return float("inf") if key == "le_inf" else float(key[len("le_"):])

            for labels, hist in histograms[family]:
                cumulative = 0
                buckets = hist.get("buckets", {})
                for key in sorted(buckets, key=bound_of):
                    cumulative += int(buckets[key])
                    le = "+Inf" if key == "le_inf" else f"{bound_of(key):g}"
                    bucket_labels = _labels_text(labels + [("le", le)])
                    lines.append(f"{om}_bucket{bucket_labels} {cumulative}")
                suffix_labels = _labels_text(labels)
                lines.append(
                    f"{om}_count{suffix_labels} {int(hist.get('count', 0))}"
                )
                lines.append(
                    f"{om}_sum{suffix_labels} "
                    f"{_format_value(float(hist.get('sum', 0.0)))}"
                )
        else:
            spec = _spec_for(family, specs)
            kind = spec.kind if spec is not None else "unknown"
            emit_metadata(family, om, "unknown")
            suffix = "_total" if kind == "counter" else ""
            for labels, value in scalars[family]:
                lines.append(
                    f"{om}{suffix}{_labels_text(labels)} {_format_value(value)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_openmetrics(registry: MetricsRegistry) -> str:
    """:func:`to_openmetrics` straight from a live registry."""
    specs = {name: registry.spec(name) for name in registry.declared_names}
    return to_openmetrics(registry.snapshot(), specs=specs)


_OM_METADATA_RE = re.compile(
    r"^# (TYPE|HELP|UNIT) (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
)
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? "
    r"(?P<value>[^ ]+)$"
)
_OM_SUFFIXES = ("_total", "_bucket", "_count", "_sum", "_created")


def check_openmetrics(text: str) -> List[str]:
    """Validate OpenMetrics exposition; returns problems (empty = valid).

    Checks the structural rules a scraper trips over: the exposition must
    end with ``# EOF`` and nothing after it, every sample line must parse,
    every sample must belong to the most recently announced ``# TYPE``
    family (modulo the standard suffixes), and numeric values must parse
    as floats.
    """
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition must end with '# EOF'")
    eof_seen = False
    current_family: Optional[str] = None
    for lineno, line in enumerate(lines, start=1):
        if eof_seen:
            problems.append(f"line {lineno}: content after '# EOF'")
            break
        if line == "# EOF":
            eof_seen = True
            continue
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            meta = _OM_METADATA_RE.match(line)
            if meta is None:
                problems.append(f"line {lineno}: malformed metadata line")
                continue
            if line.startswith("# TYPE "):
                current_family = meta.group("name")
            elif current_family != meta.group("name"):
                problems.append(
                    f"line {lineno}: metadata for {meta.group('name')!r} "
                    f"outside its TYPE block"
                )
            continue
        sample = _OM_SAMPLE_RE.match(line)
        if sample is None:
            problems.append(f"line {lineno}: malformed sample line")
            continue
        name = sample.group("name")
        if current_family is not None:
            base = name
            for suffix in _OM_SUFFIXES:
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
                    break
            if base != current_family and name != current_family:
                problems.append(
                    f"line {lineno}: sample {name!r} outside its family "
                    f"({current_family!r})"
                )
        try:
            float(sample.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value on sample line")
    return problems


# ---------------------------------------------------------------------------
# the embedded snapshot record
# ---------------------------------------------------------------------------


def snapshot_record(registry: MetricsRegistry, ts: float) -> Dict[str, object]:
    """The ``{"type": "snapshot"}`` JSONL record embedding a metrics view."""
    return {"type": "snapshot", "ts": ts, "metrics": registry.snapshot()}


def write_snapshot_record(sink, registry: MetricsRegistry, ts: float) -> None:
    """Append the snapshot record as one JSON line to an open sink."""
    sink.write(
        json.dumps(snapshot_record(registry, ts), sort_keys=True, separators=(",", ":"))
        + "\n"
    )
