"""SLO health reports over fleet telemetry and recorded traces.

Two producers, one schema:

- :func:`health_from_windows` reads the fleet driver's streaming
  :class:`~repro.obs.sketch.ShardWindows` rollups (``repro fleet
  --health``) — per-shard quantiles and SLO attainment come from the
  merged per-shard sketches, window-over-window p99 regressions from the
  windowed cells, and stall counts from the driver's exact accounting.
- :func:`health_from_trace` replays a recorded JSONL trace(s) loaded by
  :mod:`repro.obs.analyze` (``repro inspect --health``) — each
  ``queue.node.shipped`` is matched FIFO-by-path against
  ``server.version.accepted``; shipped nodes with no acceptance inside
  the stall horizon (stuck retransmits, dead shards) are stalls.

Both return a :class:`HealthReport` whose :meth:`~HealthReport.to_dict`
document is the CI-validated schema (:func:`validate_health_doc`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch, ShardWindows

SCHEMA_VERSION = 1

# Regression flagging: a window regresses when its p99 exceeds the
# previous touched window's p99 by this factor, and both windows hold
# enough samples to make the comparison meaningful.
DEFAULT_REGRESSION_FACTOR = 1.5
DEFAULT_MIN_WINDOW_WRITES = 8
DEFAULT_ATTAINMENT_TARGET = 0.99


@dataclass
class ShardHealth:
    """Health verdict for one shard (or one trace source group)."""

    shard: str
    writes: int
    p50: float
    p90: float
    p99: float
    max_latency: float
    slo_attainment: float
    stalls: int
    windows: int
    regressed_windows: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "writes": self.writes,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max_latency": self.max_latency,
            "slo_attainment": self.slo_attainment,
            "stalls": self.stalls,
            "windows": self.windows,
            "regressed_windows": list(self.regressed_windows),
        }


@dataclass
class HealthReport:
    """The full fleet/trace health document."""

    kind: str  # "fleet" | "trace"
    slo_seconds: float
    stall_horizon: float
    window_seconds: float
    sketch_alpha: float
    attainment_target: float
    shards: List[ShardHealth]

    @property
    def total_writes(self) -> int:
        return sum(s.writes for s in self.shards)

    @property
    def total_stalls(self) -> int:
        return sum(s.stalls for s in self.shards)

    @property
    def total_regressions(self) -> int:
        return sum(len(s.regressed_windows) for s in self.shards)

    @property
    def attainment(self) -> float:
        """Write-weighted overall SLO attainment."""
        writes = self.total_writes
        if writes == 0:
            return 1.0
        return sum(s.slo_attainment * s.writes for s in self.shards) / writes

    @property
    def healthy(self) -> bool:
        return (
            self.total_stalls == 0
            and self.attainment >= self.attainment_target
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "slo_seconds": self.slo_seconds,
            "stall_horizon": self.stall_horizon,
            "window_seconds": self.window_seconds,
            "sketch_alpha": self.sketch_alpha,
            "attainment_target": self.attainment_target,
            "writes": self.total_writes,
            "attainment": self.attainment,
            "stalls": self.total_stalls,
            "regressions": self.total_regressions,
            "healthy": self.healthy,
            "shards": [s.to_dict() for s in self.shards],
        }


def _regressed_windows(
    cells,
    *,
    factor: float,
    min_writes: int,
) -> List[int]:
    """Window indices whose p99 jumped vs the previous touched window."""
    flagged: List[int] = []
    prev_p99: Optional[float] = None
    for cell in cells:
        p99 = cell.sketch.quantile(0.99)
        if (
            prev_p99 is not None
            and cell.writes >= min_writes
            and p99 > factor * prev_p99
        ):
            flagged.append(cell.window)
        if cell.writes >= min_writes:
            prev_p99 = p99
    return flagged


def _shard_health(
    name: str,
    sketch: QuantileSketch,
    *,
    slo_seconds: float,
    stalls: int,
    windows: int,
    regressed: List[int],
) -> ShardHealth:
    return ShardHealth(
        shard=name,
        writes=sketch.count,
        p50=sketch.quantile(0.50),
        p90=sketch.quantile(0.90),
        p99=sketch.quantile(0.99),
        max_latency=sketch.max if sketch.count else 0.0,
        slo_attainment=sketch.fraction_leq(slo_seconds),
        stalls=stalls,
        windows=windows,
        regressed_windows=regressed,
    )


def health_from_windows(
    rollup: ShardWindows,
    *,
    slo_seconds: float,
    stall_horizon: float,
    stalls_by_shard: Optional[Dict[int, int]] = None,
    regression_factor: float = DEFAULT_REGRESSION_FACTOR,
    min_window_writes: int = DEFAULT_MIN_WINDOW_WRITES,
    attainment_target: float = DEFAULT_ATTAINMENT_TARGET,
) -> HealthReport:
    """Health report from the fleet driver's streaming rollups."""
    stalls_by_shard = stalls_by_shard or {}
    by_shard: Dict[int, List] = {}
    for cell in rollup.windows():
        by_shard.setdefault(cell.shard, []).append(cell)
    shards: List[ShardHealth] = []
    for shard in range(rollup.n_shards):
        cells = by_shard.get(shard, [])
        shards.append(
            _shard_health(
                str(shard),
                rollup.shard_sketch(shard),
                slo_seconds=slo_seconds,
                stalls=stalls_by_shard.get(shard, 0),
                windows=len(cells),
                regressed=_regressed_windows(
                    cells, factor=regression_factor, min_writes=min_window_writes
                ),
            )
        )
    return HealthReport(
        kind="fleet",
        slo_seconds=slo_seconds,
        stall_horizon=stall_horizon,
        window_seconds=rollup.window_seconds,
        sketch_alpha=rollup.alpha,
        attainment_target=attainment_target,
        shards=shards,
    )


# Sync-queue node kinds (the ``kind`` attr of ``queue.node.shipped`` is
# the node's class name) whose ship always mints a
# ``server.version.accepted`` stamp. MetaNode is excluded: some meta ops
# (mkdir, unlink) never version, so matching them would fake stalls.
_VERSIONED_KINDS = ("WriteNode", "DeltaNode")


def health_from_trace(
    doc,
    *,
    slo_seconds: float,
    stall_horizon: float,
    window_seconds: float = 60.0,
    alpha: float = 0.005,
    regression_factor: float = DEFAULT_REGRESSION_FACTOR,
    min_window_writes: int = DEFAULT_MIN_WINDOW_WRITES,
    attainment_target: float = DEFAULT_ATTAINMENT_TARGET,
) -> HealthReport:
    """Health report recovered from a recorded trace.

    Latency here is the *observable* ship-to-accept gap: every
    ``queue.node.shipped`` of a versioned kind opens a pending entry for
    its path, consumed FIFO by the next ``server.version.accepted`` for
    the same path. Groups are the accepting record's tracer source (the
    serving side), ``"unassigned"`` for ships never accepted; a ship is
    a stall when its acceptance took longer than ``stall_horizon`` or
    never arrived within ``stall_horizon`` of the trace's end.
    """
    records = getattr(doc, "records", doc)
    pending: Dict[str, List[Tuple[float, str]]] = {}  # path -> [(ts, src)]
    groups: Dict[str, ShardWindows] = {}
    stalls: Dict[str, int] = {}
    last_ts = 0.0

    def rollup_for(group: str) -> ShardWindows:
        rl = groups.get(group)
        if rl is None:
            rl = groups[group] = ShardWindows(1, window_seconds, alpha=alpha)
        return rl

    for rec in records:
        if rec.get("type") != "event":
            continue
        ts = float(rec.get("ts", 0.0))
        last_ts = max(last_ts, ts)
        name = rec.get("name")
        attrs = rec.get("attrs", {})
        if name == "queue.node.shipped":
            if attrs.get("kind") in _VERSIONED_KINDS:
                path = str(attrs.get("path", ""))
                pending.setdefault(path, []).append((ts, rec.get("src", "")))
        elif name == "server.version.accepted":
            path = str(attrs.get("path", ""))
            queue = pending.get(path)
            if not queue:
                continue
            shipped_ts, _ = queue.pop(0)
            group = str(rec.get("src", "") or "all")
            latency = ts - shipped_ts
            rollup_for(group).record_latency(0, ts, latency)
            if latency > stall_horizon:
                stalls[group] = stalls.get(group, 0) + 1

    for path, queue in sorted(pending.items()):
        for shipped_ts, _ in queue:
            if last_ts - shipped_ts > stall_horizon:
                stalls["unassigned"] = stalls.get("unassigned", 0) + 1
                rollup_for("unassigned")

    shards: List[ShardHealth] = []
    for group in sorted(set(groups) | set(stalls)):
        rollup = groups.get(group)
        if rollup is None:
            rollup = ShardWindows(1, window_seconds, alpha=alpha)
        cells = rollup.windows()
        shards.append(
            _shard_health(
                group,
                rollup.overall_sketch(),
                slo_seconds=slo_seconds,
                stalls=stalls.get(group, 0),
                windows=len(cells),
                regressed=_regressed_windows(
                    cells, factor=regression_factor, min_writes=min_window_writes
                ),
            )
        )
    return HealthReport(
        kind="trace",
        slo_seconds=slo_seconds,
        stall_horizon=stall_horizon,
        window_seconds=window_seconds,
        sketch_alpha=alpha,
        attainment_target=attainment_target,
        shards=shards,
    )


_TOP_LEVEL_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("schema", int),
    ("kind", str),
    ("slo_seconds", (int, float)),
    ("stall_horizon", (int, float)),
    ("window_seconds", (int, float)),
    ("sketch_alpha", (int, float)),
    ("attainment_target", (int, float)),
    ("writes", int),
    ("attainment", (int, float)),
    ("stalls", int),
    ("regressions", int),
    ("healthy", bool),
    ("shards", list),
)

_SHARD_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("shard", str),
    ("writes", int),
    ("p50", (int, float)),
    ("p90", (int, float)),
    ("p99", (int, float)),
    ("max_latency", (int, float)),
    ("slo_attainment", (int, float)),
    ("stalls", int),
    ("windows", int),
    ("regressed_windows", list),
)


def validate_health_doc(doc: object) -> List[str]:
    """Schema check for a health-report document; empty list == valid.

    CI runs this over ``repro fleet --health-out`` / ``repro inspect
    --health-out`` artifacts so a malformed report fails the build.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["health doc is not an object"]
    for key, kind in _TOP_LEVEL_FIELDS:
        if key not in doc:
            problems.append(f"missing top-level field {key!r}")
        elif not isinstance(doc[key], kind) or isinstance(doc[key], bool) != (
            kind is bool
        ):
            problems.append(f"field {key!r} has wrong type {type(doc[key]).__name__}")
    if problems:
        return problems
    if doc["schema"] != SCHEMA_VERSION:
        problems.append(f"unknown schema version {doc['schema']!r}")
    if doc["kind"] not in ("fleet", "trace"):
        problems.append(f"unknown kind {doc['kind']!r}")
    if not 0.0 <= doc["attainment"] <= 1.0:
        problems.append(f"attainment {doc['attainment']!r} outside [0, 1]")
    for i, shard in enumerate(doc["shards"]):
        if not isinstance(shard, dict):
            problems.append(f"shards[{i}] is not an object")
            continue
        for key, kind in _SHARD_FIELDS:
            if key not in shard:
                problems.append(f"shards[{i}] missing field {key!r}")
            elif not isinstance(shard[key], kind) or isinstance(
                shard[key], bool
            ) != (kind is bool):
                problems.append(
                    f"shards[{i}].{key} has wrong type {type(shard[key]).__name__}"
                )
        if not problems and not 0.0 <= shard["slo_attainment"] <= 1.0:
            problems.append(f"shards[{i}].slo_attainment outside [0, 1]")
    total = sum(
        s.get("stalls", 0) for s in doc["shards"] if isinstance(s, dict)
    )
    if not problems and total != doc["stalls"]:
        problems.append(
            f"stalls {doc['stalls']} != sum of shard stalls {total}"
        )
    return problems
