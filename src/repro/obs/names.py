"""The declared instrumentation catalog — the single source of truth.

Every metric the :class:`~repro.obs.registry.MetricsRegistry` will accept,
every trace event the :class:`~repro.obs.tracer.Tracer` will emit, and
every span name used by the instrumented subsystems is declared here.
``docs/observability.md`` documents exactly this catalog, and the CI
doc-lint step (``tools/lint_obs_docs.py``) fails the build when the two
drift apart in either direction.

Naming scheme: ``<subsystem>.<object>.<aspect>`` with dot separators and
``snake_case`` segments. Subsystem prefixes in use: ``client`` (the
DeltaCFS client engine), ``policy`` (mechanism selection — RPC vs delta
backend), ``queue`` (the Sync Queue), ``relation`` (the Relation Table),
``channel`` (the accounted link), ``server`` (the cloud apply path),
``transport`` (the reliable delivery layer), ``journal`` (the
crash-recovery sync-intent journal), ``recovery`` (post-crash recovery),
``run`` (the experiment harness), ``fleet`` (the fleet-scale virtual-time
simulation driver; ``server.shard.*`` covers the shard router).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family.

    ``buckets`` (histograms only) lists the inclusive upper bounds of the
    fixed buckets; an implicit ``+Inf`` bucket catches the rest. Bounds are
    fixed at declaration time so snapshots are comparable across runs.
    """

    name: str
    kind: str
    help: str
    unit: str = ""
    buckets: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one trace-event name (point event or span).

    ``attrs`` lists the attribute keys the emitter records, in documented
    order. The doc-lint (``tools/lint_obs_docs.py``) checks the attr
    tables in ``docs/observability.md`` against these declarations, and
    the offline analyzer (``repro.obs.analyze``) relies on them when
    joining events.
    """

    name: str
    kind: str  # "event" | "span"
    help: str
    attrs: Tuple[str, ...] = ()


# Fixed bucket ladders. Bytes follow powers of four from 256 B to 16 MB;
# virtual-time durations follow a coarse seconds ladder around the upload
# delay (~3 s) and relation timeout (~2 s).
BYTE_BUCKETS: Tuple[float, ...] = (
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
)
DURATION_BUCKETS: Tuple[float, ...] = (
    0.01,
    0.1,
    0.5,
    1.0,
    2.0,
    3.0,
    5.0,
    10.0,
    30.0,
)


METRICS: Tuple[MetricSpec, ...] = (
    # -- client engine -----------------------------------------------------
    MetricSpec(
        "client.ops.intercepted",
        COUNTER,
        "file operations seen by the interception layer",
        unit="ops",
    ),
    MetricSpec(
        "client.writes.intercepted",
        COUNTER,
        "write() calls captured with their data (NFS-like file RPC)",
        unit="ops",
    ),
    MetricSpec(
        "client.write.bytes", COUNTER, "bytes captured by intercepted writes", unit="bytes"
    ),
    MetricSpec(
        "client.delta.triggered",
        COUNTER,
        "delta-encoding trigger decisions reached (Table I rules 1 and 2, "
        "plus pack-time triggers)",
        unit="ops",
    ),
    MetricSpec(
        "client.delta.kept",
        COUNTER,
        "triggered deltas that won the size contest and replaced write nodes",
        unit="ops",
    ),
    MetricSpec(
        "client.delta.rpc_wins",
        COUNTER,
        "triggered deltas discarded because the RPC payload was smaller "
        "(the adaptivity outcome)",
        unit="ops",
    ),
    MetricSpec(
        "client.delta.no_base",
        COUNTER,
        "triggers abandoned because the old version never reached the cloud",
        unit="ops",
    ),
    MetricSpec(
        "client.delta.inplace",
        COUNTER,
        "pack-time in-place updates compressed through the undo log",
        unit="ops",
    ),
    MetricSpec(
        "client.delta.saved_bytes",
        COUNTER,
        "wire bytes saved by kept deltas (replaced payload minus delta size)",
        unit="bytes",
    ),
    MetricSpec(
        "client.pack.count", COUNTER, "write nodes packed (frozen)", unit="ops"
    ),
    MetricSpec(
        "client.pack.duration",
        HISTOGRAM,
        "virtual seconds a write node spent open (creation to pack), i.e. "
        "the coalescing window it actually enjoyed",
        unit="seconds",
        buckets=DURATION_BUCKETS,
    ),
    MetricSpec(
        "client.upload.units", COUNTER, "upload units shipped to the channel", unit="ops"
    ),
    MetricSpec(
        "client.upload.groups",
        COUNTER,
        "transactional TxnGroup units among the shipped upload units",
        unit="ops",
    ),
    MetricSpec(
        "client.conflicts", COUNTER, "conflict notices received from the cloud", unit="ops"
    ),
    MetricSpec(
        "client.stalls",
        COUNTER,
        "sync-queue-full back-pressure events (forced pumps)",
        unit="ops",
    ),
    # -- mechanism-selection policy ----------------------------------------
    MetricSpec(
        "policy.decisions",
        COUNTER,
        "mechanism-selection decisions, labelled by chosen mechanism "
        "(rpc or the delta backend name)",
        unit="ops",
    ),
    MetricSpec(
        "policy.estimate.rpc_bytes",
        COUNTER,
        "uplink bytes the policy predicted for the RPC mechanism at "
        "decision time, labelled by policy",
        unit="bytes",
    ),
    MetricSpec(
        "policy.estimate.delta_bytes",
        COUNTER,
        "uplink bytes the policy predicted for the chosen delta backend "
        "at decision time, labelled by policy",
        unit="bytes",
    ),
    MetricSpec(
        "policy.estimate.abs_error_bytes",
        COUNTER,
        "absolute error between predicted and measured delta wire bytes, "
        "accumulated over actual encodes, labelled by policy",
        unit="bytes",
    ),
    # -- sync queue --------------------------------------------------------
    MetricSpec(
        "queue.nodes.created", COUNTER, "nodes enqueued, by node kind", unit="nodes"
    ),
    MetricSpec(
        "queue.nodes.coalesced",
        COUNTER,
        "writes absorbed into an already-active write node",
        unit="ops",
    ),
    MetricSpec(
        "queue.nodes.packed", COUNTER, "write nodes frozen against further coalescing", unit="nodes"
    ),
    MetricSpec(
        "queue.nodes.replaced_by_delta",
        COUNTER,
        "nodes removed by delta replacement (the doomed write nodes)",
        unit="nodes",
    ),
    MetricSpec(
        "queue.nodes.cancelled",
        COUNTER,
        "never-uploaded nodes dropped (e.g. create+writes of a deleted file)",
        unit="nodes",
    ),
    MetricSpec(
        "queue.nodes.shipped", COUNTER, "nodes handed to the uploader", unit="nodes"
    ),
    MetricSpec(
        "queue.units.transactional",
        COUNTER,
        "upload units that were backindex spans (ship as one TxnGroup)",
        unit="ops",
    ),
    MetricSpec(
        "queue.spans.recorded", COUNTER, "backindex spans recorded (pre-merge)", unit="ops"
    ),
    MetricSpec("queue.depth", GAUGE, "live nodes in the queue", unit="nodes"),
    MetricSpec(
        "queue.bytes.queued", GAUGE, "payload bytes waiting in the queue", unit="bytes"
    ),
    MetricSpec(
        "queue.node.payload_bytes",
        HISTOGRAM,
        "payload size of each shipped node",
        unit="bytes",
        buckets=BYTE_BUCKETS,
    ),
    MetricSpec(
        "queue.node.wait_time",
        HISTOGRAM,
        "virtual seconds from (last) enqueue to ship, per shipped node",
        unit="seconds",
        buckets=DURATION_BUCKETS,
    ),
    # -- relation table ----------------------------------------------------
    MetricSpec(
        "relation.entries.inserted",
        COUNTER,
        "entries recorded, by origin (rename | unlink)",
        unit="entries",
    ),
    MetricSpec(
        "relation.entries.matched",
        COUNTER,
        "create/rename events that matched a live entry (trigger rule 1)",
        unit="entries",
    ),
    MetricSpec(
        "relation.entries.expired",
        COUNTER,
        "entries collected by the ~2 s timeout without triggering",
        unit="entries",
    ),
    MetricSpec(
        "relation.entries.invalidated",
        COUNTER,
        "entries dropped because their preserved dst was destroyed",
        unit="entries",
    ),
    MetricSpec(
        "relation.entries.superseded",
        COUNTER,
        "entries replaced by a newer transformation of the same src",
        unit="entries",
    ),
    MetricSpec(
        "relation.entries.stale",
        COUNTER,
        "match probes that found only an expired (stale) entry",
        unit="entries",
    ),
    MetricSpec("relation.size", GAUGE, "live entries in the table", unit="entries"),
    # -- channel / network -------------------------------------------------
    MetricSpec(
        "channel.up.bytes",
        COUNTER,
        "client-to-server wire bytes, labelled by message type",
        unit="bytes",
    ),
    MetricSpec(
        "channel.down.bytes",
        COUNTER,
        "server-to-client wire bytes, labelled by message type",
        unit="bytes",
    ),
    MetricSpec(
        "channel.up.messages",
        COUNTER,
        "client-to-server messages, labelled by message type",
        unit="msgs",
    ),
    MetricSpec(
        "channel.down.messages",
        COUNTER,
        "server-to-client messages, labelled by message type",
        unit="msgs",
    ),
    MetricSpec(
        "channel.up.busy_time",
        COUNTER,
        "virtual seconds of uplink transmit time accumulated",
        unit="seconds",
    ),
    MetricSpec(
        "channel.down.busy_time",
        COUNTER,
        "virtual seconds of downlink transmit time accumulated",
        unit="seconds",
    ),
    MetricSpec(
        "channel.message.bytes",
        HISTOGRAM,
        "wire size of every message moved in either direction",
        unit="bytes",
        buckets=BYTE_BUCKETS,
    ),
    MetricSpec(
        "channel.faults.dropped",
        COUNTER,
        "messages lost in transit by the fault plan, labelled by direction",
        unit="msgs",
    ),
    MetricSpec(
        "channel.faults.duplicated",
        COUNTER,
        "messages the lossy link delivered twice, labelled by direction",
        unit="msgs",
    ),
    MetricSpec(
        "channel.faults.reordered",
        COUNTER,
        "deliveries delayed past later sends, labelled by direction",
        unit="msgs",
    ),
    MetricSpec(
        "channel.faults.partition_drops",
        COUNTER,
        "messages swallowed by a partition window, labelled by direction",
        unit="msgs",
    ),
    # -- reliable transport ------------------------------------------------
    MetricSpec(
        "transport.sent",
        COUNTER,
        "envelopes transmitted, first attempts and retransmits alike",
        unit="msgs",
    ),
    MetricSpec(
        "transport.retries",
        COUNTER,
        "retransmissions (attempts beyond the first) of unacked envelopes",
        unit="msgs",
    ),
    MetricSpec(
        "transport.timeouts",
        COUNTER,
        "retry timers that expired without an ack arriving",
        unit="ops",
    ),
    MetricSpec(
        "transport.acked",
        COUNTER,
        "envelopes acknowledged and retired from the in-flight window",
        unit="msgs",
    ),
    MetricSpec(
        "transport.dup_acks",
        COUNTER,
        "acknowledgements for already-retired envelopes (late or duplicate)",
        unit="msgs",
    ),
    MetricSpec(
        "transport.inflight",
        GAUGE,
        "envelopes awaiting acknowledgement (in-flight window depth)",
        unit="msgs",
    ),
    MetricSpec(
        "transport.outbox",
        GAUGE,
        "messages queued behind the bounded in-flight window",
        unit="msgs",
    ),
    # -- server apply path -------------------------------------------------
    MetricSpec(
        "server.apply.applied",
        COUNTER,
        "messages applied successfully, labelled by message type",
        unit="msgs",
    ),
    MetricSpec(
        "server.apply.conflicts",
        COUNTER,
        "messages rejected as concurrent-update conflicts",
        unit="msgs",
    ),
    MetricSpec(
        "server.apply.groups",
        COUNTER,
        "TxnGroups applied atomically (backindex spans arriving)",
        unit="msgs",
    ),
    MetricSpec(
        "server.forwards.sent",
        COUNTER,
        "accepted messages fanned out verbatim to sharing clients",
        unit="msgs",
    ),
    MetricSpec(
        "server.dedup.drops",
        COUNTER,
        "retransmitted envelopes absorbed by the message-id dedup table",
        unit="msgs",
    ),
    MetricSpec(
        "server.shard.migrations",
        COUNTER,
        "file bundles moved between shards to co-locate a cross-shard "
        "rename, link, or transactional group before applying, labelled "
        "by reason (rename | link | group | meta)",
        unit="files",
    ),
    # -- fleet simulation driver -------------------------------------------
    MetricSpec(
        "fleet.clients",
        GAUGE,
        "simulated clients provisioned for the current fleet run",
        unit="clients",
    ),
    MetricSpec(
        "fleet.writes.issued",
        COUNTER,
        "measured-window writes issued by fleet clients (seeding excluded)",
        unit="ops",
    ),
    MetricSpec(
        "fleet.sync.latency",
        HISTOGRAM,
        "virtual seconds from a client write to its durable apply on the "
        "owning shard (debounce wait + shard queueing + service)",
        unit="seconds",
        buckets=DURATION_BUCKETS,
    ),
    MetricSpec(
        "fleet.shard.queue_depth",
        GAUGE,
        "upload units in flight on one shard's FIFO core, labelled by shard",
        unit="ops",
    ),
    MetricSpec(
        "fleet.shard.busy_time",
        COUNTER,
        "virtual seconds of modelled core time one shard spent applying, "
        "labelled by shard",
        unit="seconds",
    ),
    MetricSpec(
        "fleet.window.seconds",
        GAUGE,
        "configured length of one telemetry rollup window in virtual seconds",
        unit="seconds",
    ),
    MetricSpec(
        "fleet.window.rollovers",
        COUNTER,
        "telemetry windows closed with at least one completed write, "
        "labelled by shard",
        unit="windows",
    ),
    # -- SLO health reporting ----------------------------------------------
    MetricSpec(
        "health.slo.attainment",
        GAUGE,
        "fraction of completed writes whose sync latency met the SLO "
        "threshold, labelled by shard",
        unit="ratio",
    ),
    MetricSpec(
        "health.stalls",
        COUNTER,
        "writes whose sync stalled past the stall horizon (stuck "
        "retransmits, dead or saturated shards), labelled by shard",
        unit="ops",
    ),
    MetricSpec(
        "health.regressions",
        COUNTER,
        "window-over-window p99 latency regressions flagged, labelled "
        "by shard",
        unit="windows",
    ),
    # -- crash-recovery journal --------------------------------------------
    MetricSpec(
        "journal.records.written",
        COUNTER,
        "sync-intent records persisted, labelled by kind "
        "(node | relation | undo | vercnt)",
        unit="records",
    ),
    MetricSpec(
        "journal.records.forgotten",
        COUNTER,
        "journal records retired (shipped, cancelled, or replaced), "
        "labelled by kind",
        unit="records",
    ),
    MetricSpec(
        "journal.bytes.written",
        COUNTER,
        "key+value bytes appended to the journal KV",
        unit="bytes",
    ),
    # -- post-crash recovery -----------------------------------------------
    MetricSpec(
        "recovery.runs", COUNTER, "Client.recover() passes executed", unit="ops"
    ),
    MetricSpec(
        "recovery.nodes.replayed",
        COUNTER,
        "journaled nodes re-enqueued for upload after a crash",
        unit="nodes",
    ),
    MetricSpec(
        "recovery.nodes.already_applied",
        COUNTER,
        "journaled nodes dropped because the cloud already held their version",
        unit="nodes",
    ),
    MetricSpec(
        "recovery.nodes.rebased",
        COUNTER,
        "replayed nodes whose base version was renegotiated to the cloud head",
        unit="nodes",
    ),
    MetricSpec(
        "recovery.files.swept",
        COUNTER,
        "dirty files checked against the durable checksum store",
        unit="files",
    ),
    MetricSpec(
        "recovery.files.damaged",
        COUNTER,
        "swept files with at least one mismatching block (crash inconsistency)",
        unit="files",
    ),
    MetricSpec(
        "recovery.blocks.repaired",
        COUNTER,
        "damaged blocks rebuilt from ranged downloads + journaled writes",
        unit="blocks",
    ),
    MetricSpec(
        "recovery.bytes.downloaded",
        COUNTER,
        "ranged-download bytes pulled during block repair",
        unit="bytes",
    ),
    MetricSpec(
        "recovery.full_file_fallbacks",
        COUNTER,
        "repairs that fell back to pulling the whole cloud copy",
        unit="files",
    ),
    # -- harness / run -----------------------------------------------------
    MetricSpec("run.pump.calls", COUNTER, "pump invocations during the run", unit="ops"),
    MetricSpec(
        "run.pump.shipped", COUNTER, "upload units shipped across all pumps", unit="ops"
    ),
)


EVENTS: Tuple[EventSpec, ...] = (
    # -- sync queue node lifecycle (the Figure-4 pipeline, per node) -------
    EventSpec(
        "queue.node.created",
        "event",
        "a node joined the queue tail",
        attrs=("path", "kind", "seq"),
    ),
    EventSpec(
        "queue.node.coalesced",
        "event",
        "a write was absorbed into an active write node",
        attrs=("path", "seq", "offset", "bytes"),
    ),
    EventSpec(
        "queue.node.packed",
        "event",
        "a write node froze",
        attrs=("path", "seq", "writes", "payload_bytes"),
    ),
    EventSpec(
        "queue.node.replaced_by_delta",
        "event",
        "write nodes were swapped for a delta node",
        attrs=("path", "replaced_seqs", "delta_seq", "delta_bytes", "replaced_bytes"),
    ),
    EventSpec(
        "queue.node.cancelled",
        "event",
        "a never-uploaded node was dropped",
        attrs=("path", "seq", "kind"),
    ),
    EventSpec(
        "queue.node.shipped",
        "event",
        "a node left the queue for upload",
        attrs=("path", "seq", "kind", "payload_bytes", "transactional"),
    ),
    # -- relation table ----------------------------------------------------
    EventSpec(
        "relation.insert",
        "event",
        "an entry was recorded",
        attrs=("src", "dst", "origin"),
    ),
    EventSpec(
        "relation.match",
        "event",
        "a created name matched a live entry (delta trigger)",
        attrs=("src", "dst", "origin", "age"),
    ),
    EventSpec(
        "relation.expire",
        "event",
        "an entry timed out untriggered",
        attrs=("src", "dst", "origin"),
    ),
    EventSpec(
        "relation.invalidate",
        "event",
        "an entry died because its preserved dst was destroyed",
        attrs=("src", "dst"),
    ),
    # -- client delta decisions -------------------------------------------
    EventSpec(
        "client.delta.trigger",
        "event",
        "a transactional update was recognized; rule is one of "
        "relation_match | name_exists | pending_create | inplace",
        attrs=("path", "rule"),
    ),
    EventSpec(
        "client.delta.kept",
        "event",
        "the delta won the size contest",
        attrs=("path", "delta_bytes", "replaced_bytes"),
    ),
    EventSpec(
        "client.delta.rpc_wins",
        "event",
        "the RPC payload was smaller, delta discarded",
        attrs=("path", "delta_bytes", "replaced_bytes"),
    ),
    EventSpec(
        "client.delta.no_base",
        "event",
        "trigger abandoned: base version unresolvable on the cloud",
        attrs=("path",),
    ),
    # -- mechanism-selection policy ----------------------------------------
    EventSpec(
        "policy.decision",
        "event",
        "the mechanism policy chose RPC or a delta backend for one "
        "triggered update; mechanism is rpc or the backend name",
        attrs=("path", "policy", "mechanism", "rpc_bytes", "est_delta_bytes"),
    ),
    # -- channel -----------------------------------------------------------
    EventSpec(
        "channel.upload",
        "event",
        "a message entered the uplink",
        attrs=("type", "path", "bytes", "done_at"),
    ),
    EventSpec(
        "channel.download",
        "event",
        "a message entered the downlink",
        attrs=("type", "path", "bytes", "done_at"),
    ),
    EventSpec(
        "channel.fault",
        "event",
        "the fault plan perturbed a delivery; fate is one of "
        "drop | duplicate | reorder | partition",
        attrs=("direction", "fate", "type"),
    ),
    # -- reliable transport ------------------------------------------------
    EventSpec(
        "transport.enqueued",
        "event",
        "a message entered the reliable transport and took its msg_id; "
        "fires inside the shipping span, so offline analysis can join "
        "msg_id back to the upload unit (and its paths) that produced it",
        attrs=("msg_id", "type"),
    ),
    EventSpec(
        "transport.send",
        "event",
        "an envelope entered the uplink",
        attrs=("msg_id", "attempt", "type"),
    ),
    EventSpec(
        "transport.ack",
        "event",
        "an envelope was acknowledged",
        attrs=("msg_id", "attempts", "rtt"),
    ),
    EventSpec(
        "transport.timeout",
        "event",
        "a retry timer expired unacked",
        attrs=("msg_id", "attempt", "waited"),
    ),
    # -- server ------------------------------------------------------------
    EventSpec(
        "server.conflict",
        "event",
        "first-write-wins rejected an update",
        attrs=("path", "conflict_path"),
    ),
    EventSpec(
        "server.envelope",
        "event",
        "a reliable-delivery envelope reached the apply endpoint; "
        "duplicate marks retransmits absorbed by the dedup table; "
        "shard is the emitting server's shard id and home the router's "
        "home-shard derivation for the origin client (the exactly-once, "
        "causal-FIFO and shard-home invariants are checked against "
        "these events by repro.check.invariants)",
        attrs=("client", "msg_id", "attempt", "duplicate", "shard", "home"),
    ),
    EventSpec(
        "server.shard.detach",
        "event",
        "a file bundle left its source shard for a cross-shard "
        "co-location: versions counts the lineage leaving with it; the "
        "migration-safety invariant demands a matching "
        "server.shard.attach with no version loss and no accepted "
        "writes for the path in between",
        attrs=("path", "src_shard", "dst_shard", "reason", "versions"),
    ),
    EventSpec(
        "server.shard.attach",
        "event",
        "the migrated file bundle re-homed on the destination shard; "
        "versions counts the store's lineage for the path after the "
        "attach merge (>= the detach count when no history was lost)",
        attrs=("path", "src_shard", "dst_shard", "versions"),
    ),
    EventSpec(
        "server.shard.rename_forward",
        "event",
        "a rename spanned two shards: the source file bundle (content, "
        "lineage, window snapshots) migrated through the router's "
        "relocation table to the destination's shard, which then applied "
        "the rename locally (the two-step cross-shard rename)",
        attrs=("path", "dest", "src_shard", "dst_shard"),
    ),
    EventSpec(
        "server.version.accepted",
        "event",
        "the store accepted a client-minted <CliID, VerCnt> stamp; the "
        "per-client version-monotonicity invariant is checked against "
        "these events",
        attrs=("path", "client", "counter"),
    ),
    # -- distributed tracing -----------------------------------------------
    EventSpec(
        "trace.link",
        "event",
        "a causal cross-tracer edge: the enclosing span was caused by span "
        "`span` of trace `trace` in the tracer named `src` (carried across "
        "the process boundary by the envelope's uncosted TraceContext); "
        "the offline analyzer stitches multi-source traces along these "
        "edges and the Chrome exporter renders them as flow arrows",
        attrs=("src", "trace", "span"),
    ),
    # -- fleet telemetry windows -------------------------------------------
    EventSpec(
        "fleet.window.closed",
        "event",
        "one per-shard telemetry window rolled up (emitted at rollup "
        "finalization; timestamps are the window's virtual-time bounds)",
        attrs=(
            "shard",
            "window",
            "start",
            "end",
            "writes",
            "p50",
            "p99",
            "queue_peak",
            "busy",
        ),
    ),
    # -- SLO health reporting ----------------------------------------------
    EventSpec(
        "health.stall",
        "event",
        "a write's sync exceeded the stall horizon before completing",
        attrs=("shard", "client", "path", "waited"),
    ),
    # -- crash-recovery journal --------------------------------------------
    EventSpec(
        "journal.write",
        "event",
        "a sync-intent record was persisted (kind is one of "
        "node | relation | undo | vercnt; ref identifies the record: "
        "node seq, relation src, undo path, or the counter value)",
        attrs=("kind", "ref"),
    ),
    EventSpec(
        "journal.forget",
        "event",
        "a sync-intent record was retired (shipped, cancelled, matched, "
        "expired, or replaced)",
        attrs=("kind", "ref"),
    ),
    # -- post-crash recovery -----------------------------------------------
    EventSpec(
        "recovery.node.replayed",
        "event",
        "a journaled node was dispositioned during recovery; disposition "
        "is one of replayed | rebased | already_applied",
        attrs=("path", "kind", "disposition"),
    ),
    EventSpec(
        "recovery.file.repaired",
        "event",
        "a damaged file finished block repair",
        attrs=("path", "blocks", "full_file"),
    ),
    # -- spans -------------------------------------------------------------
    EventSpec(
        "run",
        "span",
        "one (solution, trace) experiment run",
        attrs=("solution", "trace"),
    ),
    EventSpec("run.preload", "span", "preload files installed and synced outside measurement"),
    EventSpec("run.replay", "span", "the measured trace replay"),
    EventSpec("run.settle", "span", "post-replay pumping until delays elapse"),
    EventSpec("run.flush", "span", "final drain of the sync queue"),
    EventSpec(
        "client.pack",
        "span",
        "pack-and-maybe-compress for one path",
        attrs=("path",),
    ),
    EventSpec(
        "client.delta.encode",
        "span",
        "one bitwise delta encoding",
        attrs=("path", "old_bytes", "new_bytes"),
    ),
    EventSpec(
        "client.upload_unit",
        "span",
        "one upload unit shipped and its replies processed; paths and "
        "member_bytes list the member messages, in ship order, so every "
        "wire byte of the unit (or its envelope) can be attributed back "
        "to the files that caused it",
        attrs=("nodes", "transactional", "paths", "member_bytes"),
    ),
    EventSpec(
        "client.recover",
        "span",
        "one post-crash recovery pass (journal replay + sweep)",
        attrs=("nodes",),
    ),
    EventSpec(
        "server.apply",
        "span",
        "server-side application of one message or group",
        attrs=("type", "origin"),
    ),
    EventSpec(
        "transport.retransmit_round",
        "span",
        "one sweep retransmitting every envelope whose timer expired",
        attrs=("due",),
    ),
    EventSpec(
        "server.shard.route",
        "span",
        "router handling of one multi-shard message: co-locating "
        "migrations plus the target shard's apply (single-shard messages "
        "skip this span and apply directly, bit-identically to an "
        "unsharded server)",
        attrs=("shards", "target"),
    ),
)


METRIC_NAMES: Tuple[str, ...] = tuple(spec.name for spec in METRICS)
EVENT_NAMES: Tuple[str, ...] = tuple(spec.name for spec in EVENTS)


def metric_spec(name: str) -> MetricSpec:
    """Look up a declared metric; raises ``KeyError`` for unknown names."""
    for spec in METRICS:
        if spec.name == name:
            return spec
    raise KeyError(name)


def event_spec(name: str) -> EventSpec:
    """Look up a declared event/span; raises ``KeyError`` for unknown names."""
    for spec in EVENTS:
        if spec.name == name:
            return spec
    raise KeyError(name)
