"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Mirrors the :class:`repro.cost.meter.CostMeter` pattern: instrumented code
charges a registry object it was handed, and callers that do not measure
hand out :data:`NULL_REGISTRY`, whose recording methods are no-ops — the
disabled path never allocates and never changes behaviour.

Design constraints (see ``docs/observability.md``):

- **Declared names only.** Every metric family must exist in
  :data:`repro.obs.names.METRICS` (or be added via :meth:`declare`), so the
  documented contract and the code cannot drift silently.
- **No wall clock.** Nothing here reads ``time``; durations are observed
  by callers from :class:`~repro.common.clock.VirtualClock`, keeping
  snapshots deterministic under seeded runs.
- **Deterministic snapshots.** :meth:`snapshot` orders families and label
  sets lexicographically; two identical seeded runs produce identical
  snapshots byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.names import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    METRICS,
    MetricSpec,
)

# A label set normalized to a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class _Histogram:
    """Fixed-bucket histogram: counts per bucket plus sum and count."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, object]:
        buckets = {}
        for bound, n in zip(self.bounds, self.counts):
            buckets[f"le_{bound:g}"] = n
        buckets["le_inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.total, "buckets": buckets}


class MetricsRegistry:
    """Accumulates declared metrics for one run.

    Counters, gauges, and histograms all accept free-form labels (e.g.
    ``inc("channel.up.bytes", size, type="UploadWrite")`` or
    ``observe("fleet.sync.latency", dt, shard=3)``); each distinct label
    set is a separate series under the declared family name. Every series
    of a histogram family shares the family's declared buckets.
    """

    def __init__(self, specs: Tuple[MetricSpec, ...] = METRICS):
        self._specs: Dict[str, MetricSpec] = {s.name: s for s in specs}
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, _Histogram]] = {}

    # -- declaration -------------------------------------------------------

    def declare(self, spec: MetricSpec) -> None:
        """Add a metric family beyond the built-in catalog."""
        existing = self._specs.get(spec.name)
        if existing is not None and existing != spec:
            raise ValueError(f"metric {spec.name!r} already declared differently")
        self._specs[spec.name] = spec

    def spec(self, name: str) -> MetricSpec:
        """The declaration for ``name``; raises ``KeyError`` if undeclared."""
        return self._specs[name]

    @property
    def declared_names(self) -> List[str]:
        """All declared family names, sorted."""
        return sorted(self._specs)

    def _require(self, name: str, kind: str) -> MetricSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not declared; add it to repro.obs.names "
                f"(and docs/observability.md) or registry.declare() it"
            )
        if spec.kind != kind:
            raise TypeError(f"metric {name!r} is a {spec.kind}, not a {kind}")
        return spec

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to a counter series (must be non-negative)."""
        self._require(name, COUNTER)
        if value < 0:
            raise ValueError("counters only go up")
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series to ``value``."""
        self._require(name, GAUGE)
        self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into a histogram series."""
        spec = self._require(name, HISTOGRAM)
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = _Histogram(spec.buckets or (1.0,))
        hist.observe(value)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0.0 if never incremented)."""
        self._require(name, COUNTER)
        return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        self._require(name, COUNTER)
        return sum(self._counters.get(name, {}).values())

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        """Current gauge value, or ``None`` if never set."""
        self._require(name, GAUGE)
        return self._gauges.get(name, {}).get(_label_key(labels))

    def histogram(self, name: str, **labels: object) -> Optional[Dict[str, object]]:
        """One histogram series as a dict, or ``None`` if never observed."""
        self._require(name, HISTOGRAM)
        hist = self._histograms.get(name, {}).get(_label_key(labels))
        return None if hist is None else hist.as_dict()

    def snapshot(self) -> Dict[str, object]:
        """Deterministic flat view of every *touched* series.

        Counters/gauges map rendered series name -> value; histograms map
        rendered series name -> ``{count, sum, buckets}`` (the bare family
        name when unlabelled). Keys are sorted, so equal runs produce
        equal snapshots.
        """
        out: Dict[str, object] = {}
        for name in sorted(self._counters):
            for key in sorted(self._counters[name]):
                out[_render_name(name, key)] = self._counters[name][key]
        for name in sorted(self._gauges):
            for key in sorted(self._gauges[name]):
                out[_render_name(name, key)] = self._gauges[name][key]
        for name in sorted(self._histograms):
            for key in sorted(self._histograms[name]):
                out[_render_name(name, key)] = self._histograms[name][key].as_dict()
        return out

    def scalar_snapshot(self) -> Dict[str, float]:
        """Only the counter/gauge series — what feeds ``RunResult.extra``."""
        out: Dict[str, float] = {}
        for name in sorted(self._counters):
            for key in sorted(self._counters[name]):
                out[_render_name(name, key)] = self._counters[name][key]
        for name in sorted(self._gauges):
            for key in sorted(self._gauges[name]):
                out[_render_name(name, key)] = self._gauges[name][key]
        return out

    def reset(self) -> None:
        """Zero every series, keeping declarations."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        series = sum(len(v) for v in self._counters.values()) + sum(
            len(v) for v in self._gauges.values()
        )
        hists = sum(len(v) for v in self._histograms.values())
        return f"MetricsRegistry({series} series, {hists} histograms)"


class _NullRegistry(MetricsRegistry):
    """Discards all recordings — the zero-cost disabled path."""

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass


NULL_REGISTRY = _NullRegistry()
