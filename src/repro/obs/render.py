"""Rendering a registry + tracer into human text or JSON.

``text_report`` is what ``python -m repro replay ... --metrics`` prints;
``to_json`` is the machine-readable equivalent (snapshot + trace summary)
for piping into other tools.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.report import format_table
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


def histogram_quantile(hist: Dict[str, object], q: float) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    ``hist`` is the ``{count, sum, buckets}`` dict produced by
    :meth:`repro.obs.registry.MetricsRegistry.histogram` (buckets are
    per-bucket counts keyed ``le_<bound>`` / ``le_inf``, *not* cumulative).
    The estimate interpolates linearly inside the bucket that holds the
    target rank — the same convention Prometheus' ``histogram_quantile``
    uses — so it is exact only at bucket boundaries. Samples past the last
    finite bound clamp to that bound. Returns ``nan`` for an empty
    histogram; ``q`` outside (0, 1] raises ``ValueError``.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    total = int(hist.get("count", 0))
    if total <= 0:
        return float("nan")
    bounds_counts: List[Tuple[float, int]] = []
    for key, n in hist["buckets"].items():  # type: ignore[union-attr]
        bound = math.inf if key == "le_inf" else float(key[len("le_"):])
        bounds_counts.append((bound, int(n)))
    bounds_counts.sort(key=lambda bc: bc[0])
    rank = q * total
    cumulative = 0
    lower = 0.0
    for bound, n in bounds_counts:
        if cumulative + n >= rank and n > 0:
            if math.isinf(bound):
                # No upper edge to interpolate toward: clamp to the last
                # finite bound (or its own lower edge when it is first).
                return lower
            fraction = (rank - cumulative) / n
            return lower + (bound - lower) * fraction
        cumulative += n
        if not math.isinf(bound):
            lower = bound
    return lower


def histogram_quantiles(
    hist: Dict[str, object], qs: Sequence[float] = (0.5, 0.9, 0.99)
) -> List[float]:
    """:func:`histogram_quantile` for several quantiles at once."""
    return [histogram_quantile(hist, q) for q in qs]


def text_report(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """An aligned, deterministic text report of every touched series."""
    lines: List[str] = []
    snapshot = registry.snapshot()
    scalars = [(k, v) for k, v in snapshot.items() if isinstance(v, (int, float))]
    if scalars:
        lines.append("-- metrics " + "-" * 45)
        lines.append(
            format_table(
                ["metric", "value"],
                [[name, f"{value:g}"] for name, value in scalars],
            )
        )
    hists = [(k, v) for k, v in snapshot.items() if isinstance(v, dict)]
    if hists:
        lines.append("")
        lines.append("-- histograms " + "-" * 42)
        rows = []
        for name, h in hists:
            count = h["count"]
            mean = (h["sum"] / count) if count else 0.0
            p50, p90, p99 = histogram_quantiles(h)
            populated = ",".join(
                f"{bucket}:{n}" for bucket, n in h["buckets"].items() if n
            )
            rows.append(
                [
                    name,
                    count,
                    f"{mean:.3g}",
                    f"{p50:.3g}",
                    f"{p90:.3g}",
                    f"{p99:.3g}",
                    populated,
                ]
            )
        lines.append(
            format_table(
                ["histogram", "count", "mean", "~p50", "~p90", "~p99", "buckets"],
                rows,
            )
        )
    if tracer is not None:
        events = tracer.events()
        if events:
            lines.append("")
            spans = sum(1 for e in events if e.type == "span_start")
            points = sum(1 for e in events if e.type == "event")
            lines.append(f"-- trace: {spans} spans, {points} events")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def to_json(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None, *, indent: int = 2
) -> str:
    """Snapshot (+ optional embedded trace) as a JSON document."""
    doc: Dict[str, object] = {"metrics": registry.snapshot()}
    if tracer is not None:
        doc["trace"] = [e.to_dict() for e in tracer.events()]
    return json.dumps(doc, sort_keys=True, indent=indent)
