"""Rendering a registry + tracer into human text or JSON.

``text_report`` is what ``python -m repro replay ... --metrics`` prints;
``to_json`` is the machine-readable equivalent (snapshot + trace summary)
for piping into other tools.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.metrics.report import format_table
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


def text_report(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """An aligned, deterministic text report of every touched series."""
    lines: List[str] = []
    snapshot = registry.snapshot()
    scalars = [(k, v) for k, v in snapshot.items() if isinstance(v, (int, float))]
    if scalars:
        lines.append("-- metrics " + "-" * 45)
        lines.append(
            format_table(
                ["metric", "value"],
                [[name, f"{value:g}"] for name, value in scalars],
            )
        )
    hists = [(k, v) for k, v in snapshot.items() if isinstance(v, dict)]
    if hists:
        lines.append("")
        lines.append("-- histograms " + "-" * 42)
        rows = []
        for name, h in hists:
            count = h["count"]
            mean = (h["sum"] / count) if count else 0.0
            populated = ",".join(
                f"{bucket}:{n}" for bucket, n in h["buckets"].items() if n
            )
            rows.append([name, count, f"{mean:.3g}", populated])
        lines.append(format_table(["histogram", "count", "mean", "buckets"], rows))
    if tracer is not None:
        events = tracer.events()
        if events:
            lines.append("")
            spans = sum(1 for e in events if e.type == "span_start")
            points = sum(1 for e in events if e.type == "event")
            lines.append(f"-- trace: {spans} spans, {points} events")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def to_json(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None, *, indent: int = 2
) -> str:
    """Snapshot (+ optional embedded trace) as a JSON document."""
    doc: Dict[str, object] = {"metrics": registry.snapshot()}
    if tracer is not None:
        doc["trace"] = [e.to_dict() for e in tracer.events()]
    return json.dumps(doc, sort_keys=True, indent=indent)
