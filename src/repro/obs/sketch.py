"""Fixed-memory streaming telemetry: quantile sketches + windowed rollups.

The fleet driver used to buffer every sync-latency sample in a Python
list — O(writes) memory, which caps the ROADMAP's 10⁵–10⁶-client rung.
This module replaces that with two fixed-memory primitives:

- :class:`QuantileSketch` — a deterministic DDSketch-style log-bucketed
  quantile sketch with *relative-error* guarantee: for any quantile q,
  the reported value v̂ satisfies ``|v̂ - v| <= alpha * v`` against the
  exact sample quantile v (values below ``min_value`` collapse into a
  zero bucket and report 0.0). Sketches over the same ``alpha`` merge
  exactly (bucket-wise addition), so per-shard sketches roll up into a
  fleet-wide one without re-reading samples.
- :class:`ShardWindows` — per-(shard, virtual-time window) rollups
  (write count, latency sketch, queue-depth peak, busy time) keyed by
  ``floor((ts - t0) / window_seconds)``. Memory is O(shards × windows ×
  bins), independent of write count.

Everything here is pure arithmetic over caller-supplied virtual
timestamps — no wall clock, no randomness — so fleet results stay
bit-deterministic under seeded runs (``repro check`` lints enforce
this repo-wide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


class QuantileSketch:
    """Deterministic mergeable log-bucket quantile sketch.

    ``alpha`` is the relative-error bound. Values map to bucket
    ``k = ceil(log_gamma(v))`` with ``gamma = (1 + alpha)/(1 - alpha)``;
    a bucket's representative value ``2·gamma^k / (gamma + 1)`` is within
    ``alpha`` (relatively) of anything stored in it. Exact ``count``,
    ``sum``, ``min`` and ``max`` are tracked on the side, so q=0 and q=1
    are exact.

    ``max_bins`` bounds memory: when exceeded, the smallest buckets
    collapse into one (quantile error grows only in the far-left tail,
    which never matters for p50+ latency reporting).
    """

    __slots__ = (
        "alpha",
        "gamma",
        "_log_gamma",
        "min_value",
        "max_bins",
        "_buckets",
        "_zero",
        "count",
        "sum",
        "min",
        "max",
    )

    def __init__(
        self,
        alpha: float = 0.005,
        *,
        min_value: float = 1e-9,
        max_bins: int = 2048,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.min_value = min_value
        self.max_bins = max_bins
        self._buckets: Dict[int, int] = {}
        self._zero = 0  # samples <= min_value (incl. exact zeros)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one sample (negatives clamp into the zero bucket)."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.min_value:
            self._zero += 1
            return
        k = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[k] = self._buckets.get(k, 0) + 1
        if len(self._buckets) > self.max_bins:
            self._collapse()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (same ``alpha`` required)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {other.alpha} into {self.alpha}"
            )
        for k, n in other._buckets.items():
            self._buckets[k] = self._buckets.get(k, 0) + n
        self._zero += other._zero
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        if len(self._buckets) > self.max_bins:
            self._collapse()

    def _collapse(self) -> None:
        # Fold the smallest buckets together until back under the bound.
        keys = sorted(self._buckets)
        while len(keys) > self.max_bins:
            lowest, second = keys[0], keys[1]
            self._buckets[second] += self._buckets.pop(lowest)
            keys.pop(0)

    # -- reading -----------------------------------------------------------

    @property
    def bins(self) -> int:
        """Live bucket count (memory footprint proxy)."""
        return len(self._buckets) + (1 if self._zero else 0)

    def _bucket_value(self, k: int) -> float:
        return 2.0 * self.gamma ** k / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile; 0.0 on an empty sketch.

        Matches the ``rank = q * (count - 1)`` convention of the exact
        interpolated quantile it replaces, up to the alpha error bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        seen = float(self._zero)
        if rank < seen:
            return 0.0
        for k in sorted(self._buckets):
            seen += self._buckets[k]
            if rank < seen:
                return min(self._bucket_value(k), self.max)
        return self.max

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def fraction_leq(self, threshold: float) -> float:
        """Approximate fraction of samples ≤ ``threshold`` (the CDF).

        This is what SLO attainment reads: the share of latencies at or
        under the objective, within the sketch's relative error around
        the threshold itself.
        """
        if self.count == 0:
            return 1.0
        if threshold >= self.max:
            return 1.0
        if threshold < 0.0:
            return 0.0
        covered = float(self._zero)
        for k, n in self._buckets.items():
            if self._bucket_value(k) <= threshold:
                covered += n
        return covered / self.count

    def to_dict(self) -> Dict[str, object]:
        """Summary stats for reports (not a lossless serialization)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "alpha": self.alpha,
            "bins": self.bins,
        }


@dataclass
class WindowStats:
    """Rollup of one (shard, window) cell."""

    shard: int
    window: int
    start: float
    end: float
    sketch: QuantileSketch
    writes: int = 0
    queue_peak: int = 0
    busy: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "window": self.window,
            "start": self.start,
            "end": self.end,
            "writes": self.writes,
            "queue_peak": self.queue_peak,
            "busy": self.busy,
            "p50": self.sketch.quantile(0.50),
            "p99": self.sketch.quantile(0.99),
        }


class ShardWindows:
    """Per-shard, per-virtual-time-window telemetry rollups.

    One :class:`WindowStats` per (shard, window) cell, created lazily on
    first sample — memory is O(shards × touched windows), never
    O(writes). Latencies are attributed to the window of their
    *completion* timestamp.
    """

    def __init__(
        self,
        n_shards: int,
        window_seconds: float,
        *,
        t0: float = 0.0,
        alpha: float = 0.005,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.n_shards = n_shards
        self.window_seconds = window_seconds
        self.t0 = t0
        self.alpha = alpha
        self._cells: Dict[Tuple[int, int], WindowStats] = {}

    def _index(self, ts: float) -> int:
        return max(0, int((ts - self.t0) // self.window_seconds))

    def _cell(self, shard: int, ts: float) -> WindowStats:
        idx = self._index(ts)
        key = (shard, idx)
        cell = self._cells.get(key)
        if cell is None:
            start = self.t0 + idx * self.window_seconds
            cell = self._cells[key] = WindowStats(
                shard=shard,
                window=idx,
                start=start,
                end=start + self.window_seconds,
                sketch=QuantileSketch(self.alpha),
            )
        return cell

    # -- recording ---------------------------------------------------------

    def record_latency(self, shard: int, done_ts: float, latency: float) -> None:
        cell = self._cell(shard, done_ts)
        cell.writes += 1
        cell.sketch.add(latency)

    def record_depth(self, shard: int, ts: float, depth: int) -> None:
        cell = self._cell(shard, ts)
        if depth > cell.queue_peak:
            cell.queue_peak = depth

    def record_busy(self, shard: int, ts: float, seconds: float) -> None:
        self._cell(shard, ts).busy += seconds

    # -- reading -----------------------------------------------------------

    @property
    def cells(self) -> int:
        return len(self._cells)

    def windows(self) -> List[WindowStats]:
        """All touched cells, ordered by (shard, window)."""
        return [self._cells[k] for k in sorted(self._cells)]

    def shard_sketch(self, shard: int) -> QuantileSketch:
        """All of one shard's windows merged into a single sketch."""
        out = QuantileSketch(self.alpha)
        for (s, _), cell in sorted(self._cells.items()):
            if s == shard:
                out.merge(cell.sketch)
        return out

    def overall_sketch(self) -> QuantileSketch:
        """Every cell merged — the fleet-wide latency distribution."""
        out = QuantileSketch(self.alpha)
        for key in sorted(self._cells):
            out.merge(self._cells[key].sketch)
        return out
