"""The structured event tracer: spans with causal parent ids, JSONL out.

A :class:`Tracer` records two things:

- **spans** — ``with tracer.span("client.pack", path=p): ...`` emits a
  ``span_start``/``span_end`` pair with a fresh span id and the id of the
  enclosing span as ``parent`` (``None`` at top level);
- **events** — ``tracer.event("queue.node.created", path=p, seq=3)`` emits
  a point event parented to the current span.

Timestamps come from the shared :class:`~repro.common.clock.VirtualClock`
— never the wall clock — so traces are deterministic and replayable. Span
ids are a plain counter starting at 1.

The JSONL schema (one object per line, documented in
``docs/observability.md``)::

    {"type": "span_start", "name": ..., "id": N, "parent": P, "ts": T, "attrs": {...}}
    {"type": "span_end",   "name": ..., "id": N, "parent": P, "ts": T, "duration": D}
    {"type": "event",      "name": ..., "parent": P, "ts": T, "attrs": {...}}

Like the registry, event/span names must be declared in
:data:`repro.obs.names.EVENTS` so the documented contract cannot drift.
:data:`NULL_TRACER` is the no-op used on the disabled path.

Distributed identity: a tracer may be named with ``source="client-1"``.
Named tracers stamp every record with a ``src`` key, making the triple
``(source, trace_id, span_id)`` globally unique across processes —
:meth:`Tracer.current_context` captures it as a :class:`TraceContext`
that can ride a transport envelope (uncosted) to the far side, where
``span(..., link=ctx)`` records the causal edge as a declared
``trace.link`` point event. Unnamed tracers emit the exact same records
as before this field existed, so single-source JSONL stays byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.obs.names import EVENT_NAMES, EventSpec

_JSON_PRIMITIVES = (str, int, float, bool, type(None))


def _clean_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    """Coerce attribute values to JSON-serializable primitives."""
    out: Dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, _JSON_PRIMITIVES):
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [
                v if isinstance(v, _JSON_PRIMITIVES) else str(v) for v in value
            ]
        else:
            out[key] = str(value)
    return out


@dataclass(frozen=True)
class TraceContext:
    """Globally unique identity of one open span, carried across processes.

    ``source`` names the emitting tracer, ``trace_id`` is the root span of
    the tracer's current stack (the request), and ``span_id`` the innermost
    open span (the immediate cause). The triple is unique fleet-wide as
    long as sources are distinct, which is what lets the offline analyzer
    stitch JSONL files from independent tracers into one causal tree.
    """

    source: str
    trace_id: int
    span_id: int


@dataclass
class TraceEvent:
    """One trace record (a span edge or a point event)."""

    type: str  # "span_start" | "span_end" | "event"
    name: str
    ts: float
    parent: Optional[int] = None
    id: Optional[int] = None  # span id; None for point events
    attrs: Dict[str, object] = field(default_factory=dict)
    duration: Optional[float] = None  # span_end only
    source: str = ""  # emitting tracer's name; "" for unnamed tracers

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": self.type,
            "name": self.name,
            "ts": self.ts,
        }
        if self.id is not None:
            out["id"] = self.id
        out["parent"] = self.parent
        if self.source:
            out["src"] = self.source
        if self.type == "span_end":
            out["duration"] = self.duration
        else:
            out["attrs"] = self.attrs
        return out


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "id", "parent", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.parent = tracer.current_span_id
        self.id = tracer._next_id()
        self._start = tracer._now()
        tracer._push(self)
        tracer._record(
            TraceEvent(
                type="span_start",
                name=name,
                ts=self._start,
                parent=self.parent,
                id=self.id,
                attrs=_clean_attrs(attrs),
            )
        )

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer._now()
        self._tracer._pop(self)
        self._tracer._record(
            TraceEvent(
                type="span_end",
                name=self.name,
                ts=end,
                parent=self.parent,
                id=self.id,
                duration=end - self._start,
            )
        )


class _NullSpan:
    """Reusable no-op span for the disabled path."""

    __slots__ = ()
    name = ""
    id = None
    parent = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace events against a virtual clock.

    Two storage modes:

    - **buffered** (default, ``sink=None``): every event is kept in an
      in-memory list; read it back with :meth:`events` / :meth:`to_jsonl`
      or persist it with :meth:`write_jsonl`.
    - **streaming** (``sink=<writable text stream>``): each record is
      serialized to one JSON line and written to ``sink`` the moment it is
      recorded, and *nothing* is buffered — a long run's memory stays flat
      no matter how many events it emits. The sink is borrowed, not owned:
      the caller opens and closes it (and can append further records, e.g.
      a metrics snapshot, after the run).
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        *,
        known_names: Tuple[str, ...] = EVENT_NAMES,
        sink=None,
        source: str = "",
    ):
        self.clock = clock if clock is not None else VirtualClock()
        self.source = source
        self._known = set(known_names)
        self._events: List[TraceEvent] = []
        self._stack: List[_SpanHandle] = []
        self._id_counter = 0
        self._sink = sink
        self._sink_records = 0

    # -- declaration -------------------------------------------------------

    def declare(self, spec: EventSpec) -> None:
        """Allow an event/span name beyond the built-in catalog."""
        self._known.add(spec.name)

    def _check(self, name: str) -> None:
        if name not in self._known:
            raise KeyError(
                f"trace event {name!r} is not declared; add it to "
                f"repro.obs.names (and docs/observability.md) or declare() it"
            )

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        link: Optional[TraceContext] = None,
        **attrs: object,
    ) -> _SpanHandle:
        """Open a span; use as a context manager.

        ``link`` records a causal edge from a span in another tracer: the
        new span gets a ``trace.link`` point event naming the remote
        ``(source, trace, span)`` triple, which the analyzer uses to
        stitch cross-process trees and the Chrome exporter renders as a
        flow arrow.
        """
        self._check(name)
        handle = _SpanHandle(self, name, attrs)
        if link is not None:
            self.event(
                "trace.link",
                src=link.source,
                trace=link.trace_id,
                span=link.span_id,
            )
        return handle

    def event(self, name: str, **attrs: object) -> None:
        """Record a point event parented to the current span."""
        self._check(name)
        self._record(
            TraceEvent(
                type="event",
                name=name,
                ts=self._now(),
                parent=self.current_span_id,
                attrs=_clean_attrs(attrs),
            )
        )

    # -- reading -----------------------------------------------------------

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, or ``None``."""
        return self._stack[-1].id if self._stack else None

    def current_context(self) -> Optional[TraceContext]:
        """The propagatable identity of the innermost open span.

        ``None`` when no span is open. The trace id is the root of the
        current stack, so every context minted during one request shares
        it even across nested spans.
        """
        if not self._stack:
            return None
        return TraceContext(
            source=self.source,
            trace_id=self._stack[0].id,
            span_id=self._stack[-1].id,
        )

    @property
    def streaming(self) -> bool:
        """True when records go straight to a sink instead of the buffer."""
        return self._sink is not None

    @property
    def records_recorded(self) -> int:
        """Total records recorded so far (buffered or streamed)."""
        return self._sink_records if self._sink is not None else len(self._events)

    def events(self) -> List[TraceEvent]:
        """Snapshot of all recorded events, in emission order.

        Empty in streaming mode — streamed records live at the sink only.
        """
        return list(self._events)

    def event_names(self) -> List[str]:
        """Names in emission order (handy for sequence assertions)."""
        return [e.name for e in self._events]

    def to_jsonl(self) -> str:
        """All events as JSON Lines (one compact object per line)."""
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in self._events
        )

    def write_jsonl(self, path: str) -> int:
        """Write the buffered trace to ``path``; returns the record count.

        Only meaningful in buffered mode; a streaming tracer has already
        written its records to the sink and raises ``RuntimeError``.
        """
        if self._sink is not None:
            raise RuntimeError(
                "streaming tracer does not buffer; its records are already "
                "at the sink"
            )
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._events)

    def reset(self) -> None:
        """Drop all buffered events and close the span stack."""
        self._events.clear()
        self._stack.clear()
        self._id_counter = 0
        self._sink_records = 0

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now()

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def _push(self, handle: _SpanHandle) -> None:
        self._stack.append(handle)

    def _pop(self, handle: _SpanHandle) -> None:
        if not self._stack or self._stack[-1] is not handle:
            raise RuntimeError(
                f"span {handle.name!r} closed out of order; spans must nest"
            )
        self._stack.pop()

    def _record(self, event: TraceEvent) -> None:
        if self.source and not event.source:
            event.source = self.source
        if self._sink is not None:
            self._sink.write(
                json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._sink_records += 1
        else:
            self._events.append(event)


class _NullTracer(Tracer):
    """Discards everything — the zero-cost disabled path."""

    def span(  # type: ignore[override]
        self,
        name: str,
        link: Optional[TraceContext] = None,
        **attrs: object,
    ) -> _NullSpan:
        return _NULL_SPAN

    def current_context(self) -> Optional[TraceContext]:
        return None

    def event(self, name: str, **attrs: object) -> None:
        pass


NULL_TRACER = _NullTracer()
