"""The DeltaCFS cloud server.

Applies incremental data to versioned files, reconciles concurrent updates
with first-write-wins, applies backindex groups transactionally, and
forwards accepted incremental data verbatim to other clients sharing the
namespace (Section III-D — "client B is virtually equivalent to the
cloud").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.bytesutil import apply_write, truncate as truncate_bytes
from repro.core.conflict import conflict_path
from repro.common.version import VersionStamp
from repro.cost.meter import CostMeter, NULL_METER
from repro.delta.patch import apply_delta
from repro.net.messages import (
    Ack,
    ConflictNotice,
    Envelope,
    Forward,
    Message,
    MetaOp,
    TxnGroup,
    UploadDelta,
    UploadFull,
    UploadTruncate,
    UploadWrite,
    UploadWriteBatch,
)
from repro.obs import NULL_OBS, Observability
from repro.server.storage import VersionedStore


@dataclass
class ApplyResult:
    """Outcome of applying one message (or group)."""

    status: str  # "applied" | "conflict"
    path: str = ""
    version: Optional[VersionStamp] = None
    conflict_paths: List[str] = field(default_factory=list)
    replies: List[Message] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "applied"


# A forward sink receives (origin_client_id, message) for fan-out.
ForwardSink = Callable[[int, Message], None]


class CloudServer:
    """Message application endpoint.

    Args:
        meter: server-side CPU meter (the Table II "Server" columns).
        store: the versioned backing store (created if not given).
    """

    def __init__(
        self,
        *,
        meter: CostMeter = NULL_METER,
        store: VersionedStore | None = None,
        obs: Observability = NULL_OBS,
    ):
        self.meter = meter
        self.obs = obs
        # Shard identity: 0 for a standalone server; the ShardRouter
        # renumbers its members. Stamped on envelope witness events so
        # the shard-home invariant can audit dedup placement.
        self.shard_id = 0
        self.store = store if store is not None else VersionedStore()
        self.dirs: Set[str] = {"/"}
        self._sinks: Dict[int, ForwardSink] = {}
        self._shares: Dict[int, Tuple[str, ...]] = {}
        # Fan-out index: normalized share prefix -> insertion-ordered set of
        # subscriber ids (dict used as an ordered set). Forwarding walks the
        # touched path's ancestor chain instead of every registered sink,
        # which is what keeps a 10^4-client fleet out of O(clients^2).
        self._share_index: Dict[str, Dict[int, None]] = {}
        # Registration sequence per client: candidate sinks gathered from
        # several index buckets are replayed in registration order so the
        # fan-out order is identical to the pre-index full scan.
        self._reg_seq: Dict[int, int] = {}
        self._reg_counter = 0
        self.apply_log: List[ApplyResult] = []
        # Order in which paths reached their current content — used by the
        # causal-ordering reliability test (Table IV "Causal" column).
        self.upload_order: List[str] = []
        # Reliable-delivery dedup: (origin_client, msg_id) -> cached replies.
        # Bounded per client; the transport's in-flight window is far
        # smaller, so evicted ids can no longer be retransmitted.
        self._dedup: Dict[int, "OrderedDict[int, Tuple[Message, ...]]"] = {}
        self.dedup_window = 4096
        self.dedup_drops = 0

    # -- client registry (multi-client sync) --------------------------------

    def register_client(
        self,
        client_id: int,
        sink: ForwardSink,
        *,
        shares: Tuple[str, ...] = ("/",),
    ) -> None:
        """Attach a client; it receives forwards of others' updates.

        ``shares`` lists the path prefixes this client subscribes to —
        Section III-D's sharing is selective ("if this client A also
        shares these files with another client B"). The default subscribes
        to everything, matching a whole-account sync folder.
        """
        if client_id in self._sinks:
            # Re-registration replaces the previous subscription in place.
            self._drop_registration(client_id)
        self._sinks[client_id] = sink
        self._shares[client_id] = shares
        self._reg_seq[client_id] = self._reg_counter
        self._reg_counter += 1
        for prefix in shares:
            bucket = self._share_index.setdefault(self._norm_prefix(prefix), {})
            bucket[client_id] = None

    def unregister_client(self, client_id: int) -> None:
        """Detach a client and drop all its per-session server state.

        Besides the fan-out sink and shares this releases the client's
        reliable-delivery dedup window — under churn (the fleet driver
        registers and retires thousands of clients) keeping those
        OrderedDicts alive leaks memory proportional to every client that
        ever connected. A client that re-registers after unregistering
        starts a fresh dedup window, which is correct: its transport also
        restarts msg_ids from 1.
        """
        self._drop_registration(client_id)
        self._dedup.pop(client_id, None)

    def _drop_registration(self, client_id: int) -> None:
        """Remove the fan-out subscription only (keeps dedup state).

        Used by re-registration and by the shard router when narrowing a
        client's shard set — neither of which should forget which msg_ids
        were already applied.
        """
        self._sinks.pop(client_id, None)
        self._reg_seq.pop(client_id, None)
        for prefix in self._shares.pop(client_id, ()):
            norm = self._norm_prefix(prefix)
            bucket = self._share_index.get(norm)
            if bucket is not None:
                bucket.pop(client_id, None)
                if not bucket:
                    del self._share_index[norm]

    @staticmethod
    def _norm_prefix(prefix: str) -> str:
        return prefix.rstrip("/") or "/"

    # -- entry point ---------------------------------------------------------

    def handle(
        self, message: Message, origin_client: int = 0, ctx=None
    ) -> ApplyResult:
        """Apply one message from ``origin_client``; fan out on success.

        ``ctx`` is the sender's :class:`~repro.obs.tracer.TraceContext`
        (usually lifted off an :class:`Envelope`); when present, the apply
        span links back to the client span that caused the send, so
        multi-source traces stitch into one causal tree.
        """
        kind = type(message).__name__
        with self.obs.span(
            "server.apply", link=ctx, type=kind, origin=origin_client
        ):
            if isinstance(message, TxnGroup):
                self.obs.inc("server.apply.groups")
                result = self._apply_group(message, origin_client)
            else:
                result = self._apply_one(message, {})
            self.apply_log.append(result)
            if self.obs.enabled:
                if result.ok:
                    self.obs.inc("server.apply.applied", type=kind)
                    self._note_accepted_versions(message)
                else:
                    self.obs.inc("server.apply.conflicts")
                    self.obs.event(
                        "server.conflict",
                        path=result.path,
                        conflict_path=result.conflict_paths[0]
                        if result.conflict_paths
                        else "",
                    )
            if result.ok:
                self._forward(message, origin_client)
        return result

    def handle_envelope(
        self, envelope: Envelope, origin_client: int = 0
    ) -> Tuple[List[Message], bool]:
        """Apply one reliable-delivery envelope exactly once.

        Returns ``(replies, duplicate)``. A retransmit of an already-applied
        ``msg_id`` is absorbed by the dedup table: the cached replies are
        returned verbatim (so a lost first ack is recoverable) and nothing
        touches the store — in particular the base-version conflict check
        never runs again, so a duplicate cannot misfire as a conflict.
        """
        cache = self._dedup.setdefault(origin_client, OrderedDict())
        cached = cache.get(envelope.msg_id)
        if cached is not None:
            self.dedup_drops += 1
            if self.obs.enabled:
                self.obs.inc("server.dedup.drops")
                self._note_envelope(envelope, origin_client, duplicate=True)
            return list(cached), True
        if self.obs.enabled:
            self._note_envelope(envelope, origin_client, duplicate=False)
        result = self.handle(
            envelope.inner, origin_client, getattr(envelope, "ctx", None)
        )
        cache[envelope.msg_id] = tuple(result.replies)
        while len(cache) > self.dedup_window:
            cache.popitem(last=False)
        return list(result.replies), False

    # -- transactional groups -------------------------------------------------

    def _apply_group(self, group: TxnGroup, origin_client: int) -> ApplyResult:
        """Apply members atomically: any conflict rolls back all of them.

        "if one file in this atomic operation has conflict, we label all
        the files in this operation as conflict" (Section III-E).
        """
        touched = self._touched_paths(group)
        backup: Dict[str, Optional[Tuple[bytes, Optional[VersionStamp]]]] = {}
        for path in touched:
            stored = self.store.lookup(path)
            backup[path] = None if stored is None else (stored.content, stored.version)

        placed: Dict[str, Set[Optional[VersionStamp]]] = {}
        results: List[ApplyResult] = []
        failed = False
        for member in group.members:
            result = self._apply_one(member, placed)
            results.append(result)
            if not result.ok:
                failed = True
                break

        if not failed:
            versions = [r.version for r in results if r.version is not None]
            return ApplyResult(
                status="applied",
                path=results[-1].path if results else "",
                version=versions[-1] if versions else None,
                replies=[Ack(path=r.path, version=r.version) for r in results],
            )

        # Roll back and materialize every incremental member as a conflict.
        for path, saved in backup.items():
            if saved is None:
                if self.store.exists(path):
                    self.store.delete(path)
            else:
                self.store.put(path, saved[0], saved[1])
        conflicts: List[str] = []
        replies: List[Message] = []
        for member in group.members:
            copy = self._materialize_conflict(member)
            if copy is not None:
                conflicts.append(copy)
                replies.append(
                    ConflictNotice(
                        path=self._path_of(member),
                        conflict_path=copy,
                        winning_version=self._current_version(self._path_of(member)),
                    )
                )
        return ApplyResult(
            status="conflict",
            path=self._path_of(group.members[0]) if group.members else "",
            conflict_paths=conflicts,
            replies=replies,
        )

    # -- single-message application -------------------------------------------

    def _apply_one(
        self,
        message: Message,
        placed: Dict[str, Set[Optional[VersionStamp]]],
    ) -> ApplyResult:
        if isinstance(message, MetaOp):
            return self._apply_meta(message, placed)
        if isinstance(message, UploadWrite):
            return self._apply_incremental(
                message,
                placed,
                lambda base: apply_write(base, message.offset, message.data),
            )
        if isinstance(message, UploadWriteBatch):
            def _apply_runs(base: bytes) -> bytes:
                for offset, data in message.runs:
                    base = apply_write(base, offset, data)
                return base

            return self._apply_incremental(message, placed, _apply_runs)
        if isinstance(message, UploadTruncate):
            return self._apply_incremental(
                message, placed, lambda base: truncate_bytes(base, message.length)
            )
        if isinstance(message, UploadDelta):
            return self._apply_delta_message(message, placed)
        if isinstance(message, UploadFull):
            return self._apply_incremental(
                message, placed, lambda base: message.data
            )
        raise TypeError(f"server cannot apply {type(message).__name__}")

    def _apply_meta(
        self, op: MetaOp, placed: Dict[str, Set[Optional[VersionStamp]]]
    ) -> ApplyResult:
        if op.kind == "create":
            self.store.put(op.path, b"", op.new_version)
            self._mark_placed(placed, op.path, op.new_version)
            self._note_upload(op.path)
        elif op.kind == "mkdir":
            self.dirs.add(op.path)
        elif op.kind == "rmdir":
            self.dirs.discard(op.path)
        elif op.kind == "rename":
            if self.store.exists(op.path):
                self.store.rename(op.path, op.dest)
                moved = self.store.get(op.dest)
                self._mark_placed(placed, op.dest, moved.version)
                self._note_upload(op.dest)
        elif op.kind == "link":
            if self.store.exists(op.path):
                self.store.copy(op.path, op.dest)
                self._mark_placed(placed, op.dest, self.store.get(op.dest).version)
        elif op.kind == "unlink":
            if self.store.exists(op.path):
                self.store.delete(op.path)
        else:
            raise ValueError(f"unknown meta op kind {op.kind!r}")
        return ApplyResult(status="applied", path=op.path, version=op.new_version)

    def _apply_incremental(
        self,
        message,
        placed: Dict[str, Set[Optional[VersionStamp]]],
        transform: Callable[[bytes], bytes],
    ) -> ApplyResult:
        path = message.path
        stored = self.store.lookup(path)

        if not self._base_ok(path, message.base_version, placed):
            return self._lone_conflict(message)

        base = stored.content if stored is not None else b""
        new_content = transform(base)
        self.meter.charge_bytes("apply_delta", self._payload_size(message))
        self.store.put(path, new_content, message.new_version)
        self._note_upload(path)
        return ApplyResult(
            status="applied",
            path=path,
            version=message.new_version,
            replies=[Ack(path=path, version=message.new_version)],
        )

    def _apply_delta_message(
        self,
        message: UploadDelta,
        placed: Dict[str, Set[Optional[VersionStamp]]],
    ) -> ApplyResult:
        """Apply a delta: conflict-check against ``base_version``, read COPY
        bytes from the ``content_base`` snapshot (the preserved old
        version — possibly renamed away or overwritten in the namespace by
        now, which is exactly why the snapshot window exists)."""
        path = message.path
        if not self._base_ok(path, message.base_version, placed):
            return self._lone_conflict(message)
        base = self._snapshot_or_none(message.content_base)
        if base is None:
            return self._lone_conflict(message)
        new_content = apply_delta(base, message.delta, meter=self.meter)
        self.store.put(path, new_content, message.new_version)
        self._note_upload(path)
        return ApplyResult(
            status="applied",
            path=path,
            version=message.new_version,
            replies=[Ack(path=path, version=message.new_version)],
        )

    # -- conflict machinery ------------------------------------------------

    def _base_ok(
        self,
        path: str,
        base_version: Optional[VersionStamp],
        placed: Dict[str, Set[Optional[VersionStamp]]],
    ) -> bool:
        stored = self.store.lookup(path)
        if stored is None:
            return base_version is None or self._snapshot_or_none(base_version) is not None
        if stored.version == base_version:
            return True
        return stored.version in placed.get(path, set())

    def _lone_conflict(self, message) -> ApplyResult:
        copy = self._materialize_conflict(message)
        path = self._path_of(message)
        notice = ConflictNotice(
            path=path,
            conflict_path=copy or "",
            winning_version=self._current_version(path),
        )
        return ApplyResult(
            status="conflict",
            path=path,
            conflict_paths=[copy] if copy else [],
            replies=[notice],
        )

    def _materialize_conflict(self, message) -> Optional[str]:
        """Rebuild the losing content from its base snapshot + increment."""
        if isinstance(message, MetaOp) or message is None:
            return None
        base = (
            b""
            if message.base_version is None
            else self._snapshot_or_none(message.base_version)
        )
        if base is None:
            return None  # base aged out of the snapshot window
        if isinstance(message, UploadWrite):
            content = apply_write(base, message.offset, message.data)
        elif isinstance(message, UploadWriteBatch):
            content = base
            for offset, data in message.runs:
                content = apply_write(content, offset, data)
        elif isinstance(message, UploadTruncate):
            content = truncate_bytes(base, message.length)
        elif isinstance(message, UploadDelta):
            content_base = self._snapshot_or_none(message.content_base)
            if content_base is None:
                return None
            content = apply_delta(content_base, message.delta, meter=self.meter)
        elif isinstance(message, UploadFull):
            content = message.data
        else:
            return None
        version = message.new_version or VersionStamp(0, 0)
        copy = conflict_path(message.path, version)
        self.store.put(copy, content, version)
        return copy

    # -- helpers ---------------------------------------------------------------

    def _note_envelope(
        self,
        envelope: Envelope,
        origin_client: int,
        *,
        duplicate: bool,
        home: Optional[int] = None,
    ) -> None:
        """Witness event for the invariant layer.

        ``home`` is the *router's* derivation of the client's home shard
        — an independent source the shard-home invariant diffs against
        this server's own ``shard_id``. A standalone server is its own
        home.
        """
        self.obs.event(
            "server.envelope",
            client=origin_client,
            msg_id=envelope.msg_id,
            attempt=envelope.attempt,
            duplicate=duplicate,
            shard=self.shard_id,
            home=self.shard_id if home is None else home,
        )

    def _note_accepted_versions(self, message: Message) -> None:
        """Trace every minted stamp the store just accepted.

        One event per member carrying a ``new_version`` — the witness
        stream the per-client version-monotonicity invariant
        (``repro.check.invariants``) is evaluated against.
        """
        members = message.members if isinstance(message, TxnGroup) else (message,)
        for member in members:
            version = getattr(member, "new_version", None)
            if version is None:
                continue
            self.obs.event(
                "server.version.accepted",
                path=self._path_of(member),
                client=version.client_id,
                counter=version.counter,
            )

    def _forward(self, message: Message, origin_client: int) -> None:
        paths = self._message_paths(message)
        if paths:
            candidates: Set[int] = set()
            for path in paths:
                for prefix in self._ancestor_prefixes(path):
                    bucket = self._share_index.get(prefix)
                    if bucket:
                        candidates.update(bucket)
            candidates.discard(origin_client)
            if not candidates:
                return
            recipients = sorted(candidates, key=self._reg_seq.__getitem__)
        else:
            # A path-less message is broadcast (matches the pre-index scan,
            # where no path meant no filter could exclude anyone).
            recipients = [cid for cid in self._sinks if cid != origin_client]
        for client_id in recipients:
            self.obs.inc("server.forwards.sent")
            self._sinks[client_id](
                origin_client, Forward(origin_client=origin_client, inner=message)
            )

    @staticmethod
    def _ancestor_prefixes(path: str) -> List[str]:
        """``/a/b/c`` -> ``['/a/b/c', '/a/b', '/a', '/']``.

        A share prefix matches exactly when it is one of these, so index
        lookup is O(path depth) instead of O(registered clients).
        """
        out = [path]
        cursor = path
        while True:
            cut = cursor.rfind("/")
            if cut <= 0:
                break
            cursor = cursor[:cut]
            out.append(cursor)
        if path != "/":
            out.append("/")
        return out

    def _message_paths(self, message: Message) -> List[str]:
        if isinstance(message, TxnGroup):
            out: List[str] = []
            for member in message.members:
                out.extend(self._message_paths(member))
            return out
        paths = []
        path = getattr(message, "path", "")
        if path:
            paths.append(path)
        dest = getattr(message, "dest", None)
        if dest:
            paths.append(dest)
        return paths

    def _touched_paths(self, group: TxnGroup) -> Set[str]:
        touched: Set[str] = set()
        for member in group.members:
            touched.add(self._path_of(member))
            dest = getattr(member, "dest", None)
            if dest:
                touched.add(dest)
        touched.discard("")
        return touched

    @staticmethod
    def _path_of(message) -> str:
        return getattr(message, "path", "")

    def _current_version(self, path: str) -> Optional[VersionStamp]:
        stored = self.store.lookup(path)
        return stored.version if stored is not None else None

    def _snapshot_or_none(self, version: Optional[VersionStamp]) -> Optional[bytes]:
        if version is None:
            return b""
        return self.store.snapshot(version)

    @staticmethod
    def _payload_size(message) -> int:
        if isinstance(message, (UploadWrite, UploadFull)):
            return len(message.data)
        if isinstance(message, UploadWriteBatch):
            return sum(len(data) for _, data in message.runs)
        return 0

    def _mark_placed(
        self,
        placed: Dict[str, Set[Optional[VersionStamp]]],
        path: str,
        version: Optional[VersionStamp],
    ) -> None:
        placed.setdefault(path, set()).add(version)

    def _note_upload(self, path: str) -> None:
        self.upload_order.append(path)

    # -- fine-grained version control (Section III-C) ------------------------

    def version_history(self, path: str) -> List[VersionStamp]:
        """Restorable versions of ``path``, oldest first."""
        return self.store.restorable_history(path)

    def restore_version(
        self,
        path: str,
        version: VersionStamp,
        *,
        as_version: Optional[VersionStamp] = None,
        origin_client: int = 0,
    ) -> bytes:
        """Roll ``path`` back to a recent ``version``.

        Restoring is itself an update: the old content becomes the new
        head under ``as_version`` (defaults to re-using ``version``) and
        fans out to shared clients like any other change. Raises
        ``NotFoundError`` if the version aged out of the snapshot window.
        """
        from repro.common.errors import NotFoundError

        content = self.store.snapshot(version)
        if content is None:
            raise NotFoundError(f"version {version} of {path} is not restorable")
        new_version = as_version if as_version is not None else version
        self.store.put(path, content, new_version)
        self._note_upload(path)
        message = UploadFull(
            path=path, data=content, base_version=None, new_version=new_version
        )
        self._forward(message, origin_client)
        return content

    # -- read access for tests and recovery downloads -----------------------

    def file_content(self, path: str) -> bytes:
        """Current content of ``path`` (raises if absent)."""
        return self.store.get(path).content

    def file_version(self, path: str) -> Optional[VersionStamp]:
        """Current version of ``path`` (raises if absent)."""
        return self.store.get(path).version

    def resync_versions(
        self, paths: List[str]
    ) -> List[Tuple[str, Optional[VersionStamp]]]:
        """Current version per path (``None`` = not on the cloud).

        The post-crash renegotiation: a recovering client learns which of
        its journaled updates already landed and what base its re-uploads
        must name. Metadata only — no content moves.
        """
        out: List[Tuple[str, Optional[VersionStamp]]] = []
        for path in paths:
            stored = self.store.lookup(path)
            out.append((path, stored.version if stored is not None else None))
        return out

    def file_range(
        self, path: str, offset: int, length: int
    ) -> Tuple[bytes, Optional[VersionStamp]]:
        """One byte range of ``path`` (clipped to the file end) + version.

        Serves the bounded crash repair: only the damaged span travels.
        """
        stored = self.store.get(path)
        return stored.content[offset : offset + length], stored.version
