"""Sharded multi-tenant cloud topology.

The paper scopes the server deliberately thin (Section VI: "we have
minimized the overhead on the DeltaCFS server, it only needs to apply
incremental data") and leaves "the full server system design including
load balancing" out of scope. This module supplies the minimum of that
missing half: a :class:`ShardRouter` that consistent-hashes **namespace
prefixes** (a path's top-level directory, e.g. ``/u123``) onto N
unmodified :class:`~repro.server.cloud.CloudServer` shards.

Design rules, in order of importance:

1. **Single-shard mode is the identity.** ``ShardRouter(n_shards=1)``
   must reproduce a bare ``CloudServer`` bit-for-bit (same ticks, same
   bytes, same apply log) — the capacity-scaling baseline depends on it.
2. **Per-client session state lives on the home shard.** The reliable
   -delivery dedup window for a client is kept in exactly one shard's
   ``_dedup`` table (the *home shard*, chosen by hashing the client id),
   so exactly-once semantics never depend on which shard a particular
   envelope's payload routes to, and unregistering a client releases the
   window in one place.
3. **Cross-shard rename is migrate-then-apply.** A rename whose source
   and destination namespaces hash to different shards first *migrates*
   the source file bundle (live content, version lineage, window
   snapshots) to the destination shard via
   ``VersionedStore.detach_entry``/``attach_entry``, records the hop in
   the router's bounded relocation table, then lets the destination
   shard apply the rename as a purely local op — so version stamps,
   forwards, and trace events come out of the ordinary apply path and
   INV-EXACTLY-ONCE / INV-VERSION-MONO hold unchanged in recorded
   traces. Transactional groups and links spanning shards co-locate the
   same way before applying.

Hashing is ``md5`` over ``(shard index, virtual node)`` labels — stable
across processes and Python versions (``hash()`` is salted and must not
be used; see DET lint rules).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.version import VersionStamp
from repro.cost.meter import CostMeter
from repro.net.messages import Envelope, Message, MetaOp, TxnGroup
from repro.obs import NULL_OBS, Observability
from repro.server.cloud import ApplyResult, CloudServer, ForwardSink


def namespace_of(path: str) -> str:
    """A path's routing namespace: its top-level directory.

    ``/u123/docs/a.txt`` -> ``/u123``; ``/file`` and ``/`` -> ``/``.
    """
    if not path.startswith("/"):
        return "/"
    cut = path.find("/", 1)
    top = path if cut < 0 else path[:cut]
    return top if len(top) > 1 else "/"


class HashRing:
    """Consistent-hash ring over shard indices with virtual nodes.

    Stable by construction: ring points are md5 digests of string labels,
    so every process — and every future version of this code base — maps
    a namespace to the same shard.
    """

    def __init__(self, n_shards: int, *, vnodes: int = 32):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(vnodes):
                points.append((self._point(f"shard-{shard}-vn-{vnode}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.md5(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def lookup(self, key: str) -> int:
        """Shard index owning ``key`` (first ring point clockwise)."""
        h = self._point(key)
        i = bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._shards[i]


class _StoreView:
    """Read-only namespace facade over all shard stores.

    Exposes the subset of :class:`VersionedStore` that clients and tests
    read through ``server.store`` — routing point lookups by path and
    searching all shards for stamp-addressed snapshots (a stamp does not
    say which shard's window holds it; N is small).
    """

    def __init__(self, router: "ShardRouter"):
        self._router = router

    def exists(self, path: str) -> bool:
        return self._router.shard_for_path(path).store.exists(path)

    def get(self, path: str):
        return self._router.shard_for_path(path).store.get(path)

    def lookup(self, path: str):
        return self._router.shard_for_path(path).store.lookup(path)

    def snapshot(self, version: VersionStamp) -> Optional[bytes]:
        for shard in self._router.shards:
            content = shard.store.snapshot(version)
            if content is not None:
                return content
        return None

    def history(self, path: str) -> List[VersionStamp]:
        return self._router.shard_for_path(path).store.history(path)

    def restorable_history(self, path: str) -> List[VersionStamp]:
        return self._router.shard_for_path(path).store.restorable_history(path)

    def paths(self) -> List[str]:
        out: List[str] = []
        for shard in self._router.shards:
            out.extend(shard.store.paths())
        return sorted(out)


class ShardRouter:
    """N CloudServer shards behind one CloudServer-shaped endpoint.

    Args:
        n_shards: number of shards.
        meter: when given, **all** shards charge this one meter — the
            single-tenant accounting mode the capacity harness uses so a
            1-shard router is indistinguishable from a bare server. When
            ``None``, each shard gets its own :class:`CostMeter` (read
            them via :attr:`shard_meters`) for per-shard load curves.
        vnodes: virtual nodes per shard on the hash ring.
        obs: observability hub, shared by the router and every shard.
        relocation_window: bound on remembered cross-shard moves. An
            entry aging out means later traffic for that path routes to
            its natural shard again — acceptable for the same reason the
            snapshot window is: only recent history must stay resolvable.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        meter: Optional[CostMeter] = None,
        vnodes: int = 32,
        obs: Observability = NULL_OBS,
        relocation_window: int = 4096,
    ):
        self.obs = obs
        self.ring = HashRing(n_shards, vnodes=vnodes)
        if meter is not None:
            self.shard_meters: List[CostMeter] = [meter] * n_shards
        else:
            self.shard_meters = [CostMeter() for _ in range(n_shards)]
        self.shards: List[CloudServer] = [
            CloudServer(meter=self.shard_meters[i], obs=obs)
            for i in range(n_shards)
        ]
        for index, shard in enumerate(self.shards):
            shard.shard_id = index
        self.store = _StoreView(self)
        # path -> shard index, for files moved off their natural shard by
        # a cross-shard link/group co-location. Bounded LRU.
        self._relocated: "OrderedDict[str, int]" = OrderedDict()
        self._relocation_window = relocation_window
        # client id -> (home shard index, registered shard indices).
        self._sessions: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        self.migrations = 0
        self.cross_shard_renames = 0

    # -- placement -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_index_for_path(self, path: str) -> int:
        """Owning shard index for ``path`` (honouring relocations)."""
        relocated = self._relocated.get(path)
        if relocated is not None:
            self._relocated.move_to_end(path)
            return relocated
        if len(self.shards) == 1:
            return 0
        return self.ring.lookup(namespace_of(path))

    def shard_for_path(self, path: str) -> CloudServer:
        return self.shards[self.shard_index_for_path(path)]

    def home_shard_index(self, client_id: int) -> int:
        if len(self.shards) == 1:
            return 0
        return self.ring.lookup(f"client-{client_id}")

    # -- client registry ------------------------------------------------------

    def register_client(
        self,
        client_id: int,
        sink: ForwardSink,
        *,
        shares: Tuple[str, ...] = ("/",),
    ) -> None:
        """Attach a client on every shard its share prefixes can touch.

        A share scoped inside one namespace (``/u123`` or deeper) lands
        on that namespace's shard only; a root or top-level-spanning
        share (``/``) must register everywhere, since any shard may apply
        a message the client is entitled to see.
        """
        targets = self._target_shards(shares)
        for index in range(len(self.shards)):
            if index in targets:
                self.shards[index].register_client(client_id, sink, shares=shares)
            else:
                # Re-registration may narrow the shard set; drop the stale
                # subscription but keep any dedup state (it lives on the
                # home shard and must survive re-registration).
                self.shards[index]._drop_registration(client_id)
        self._sessions[client_id] = (
            self.home_shard_index(client_id),
            tuple(sorted(targets)),
        )

    def unregister_client(self, client_id: int) -> None:
        """Detach a client everywhere and release its session state."""
        session = self._sessions.pop(client_id, None)
        if session is None:
            return
        home, targets = session
        for index in targets:
            self.shards[index]._drop_registration(client_id)
        self.shards[home]._dedup.pop(client_id, None)

    def _target_shards(self, shares: Sequence[str]) -> Set[int]:
        targets: Set[int] = set()
        for prefix in shares:
            if namespace_of(prefix) == "/":
                return set(range(len(self.shards)))
            targets.add(self.shard_index_for_path(prefix))
        return targets if targets else set(range(len(self.shards)))

    # -- apply path -----------------------------------------------------------

    def handle(
        self, message: Message, origin_client: int = 0, ctx=None
    ) -> ApplyResult:
        """Route one message to its owning shard, co-locating first when a
        rename / link / transactional group spans shards.

        Single-shard messages apply directly — bit-identically to an
        unsharded :class:`CloudServer` (``ctx`` just flows through to the
        apply span). Multi-shard messages get a ``server.shard.route``
        wrapper span covering the co-locating migrations plus the target
        shard's apply; the cross-process ``trace.link`` edge attaches to
        the router span there, so the migrate step is inside the stitched
        causal path.
        """
        indices = self._touched_shards(message)
        if len(indices) == 1:
            return self.shards[indices[0]].handle(message, origin_client, ctx)
        if not self.obs.enabled:
            target = self._colocate(message, indices)
            return self.shards[target].handle(message, origin_client)
        target, _ = self._colocation_target(message, indices)
        with self.obs.span(
            "server.shard.route", link=ctx, shards=len(indices), target=target
        ):
            self._colocate(message, indices)
            # The apply span nests inside the route span; the link edge
            # already names the client cause, so don't re-link it here.
            return self.shards[target].handle(message, origin_client)

    def handle_envelope(
        self, envelope: Envelope, origin_client: int = 0
    ) -> Tuple[List[Message], bool]:
        """Exactly-once apply with the dedup window on the home shard.

        The envelope witness events (``server.envelope``) and the dedup
        cache both live on the client's home shard regardless of where
        the payload routes, so INV-EXACTLY-ONCE is evaluated against one
        coherent stream per client.
        """
        home_index = self.home_shard_index(origin_client)
        home = self.shards[home_index]
        cache = home._dedup.setdefault(origin_client, OrderedDict())
        cached = cache.get(envelope.msg_id)
        if cached is not None:
            home.dedup_drops += 1
            if self.obs.enabled:
                self.obs.inc("server.dedup.drops")
                home._note_envelope(
                    envelope, origin_client, duplicate=True, home=home_index
                )
            return list(cached), True
        if self.obs.enabled:
            home._note_envelope(
                envelope, origin_client, duplicate=False, home=home_index
            )
        result = self.handle(
            envelope.inner, origin_client, getattr(envelope, "ctx", None)
        )
        cache[envelope.msg_id] = tuple(result.replies)
        while len(cache) > home.dedup_window:
            cache.popitem(last=False)
        return list(result.replies), False

    def _touched_shards(self, message: Message) -> List[int]:
        """Distinct shard indices the message touches, first-touch order."""
        paths = self._touched_paths(message)
        indices: List[int] = []
        for path in paths:
            index = self.shard_index_for_path(path)
            if index not in indices:
                indices.append(index)
        return indices if indices else [0]

    def _touched_paths(self, message: Message) -> List[str]:
        if isinstance(message, TxnGroup):
            out: List[str] = []
            for member in message.members:
                out.extend(self._touched_paths(member))
            return out
        out = []
        path = getattr(message, "path", "")
        if path:
            out.append(path)
        dest = getattr(message, "dest", None)
        if dest:
            out.append(dest)
        return out

    def _colocation_target(
        self, message: Message, indices: List[int]
    ) -> Tuple[int, str]:
        """Where a multi-shard message will land, and why (side-effect free)."""
        if isinstance(message, MetaOp) and message.kind in ("rename", "link"):
            # Land on the destination's shard so the new name is natural.
            return self.shard_index_for_path(message.dest), message.kind
        kind = "group" if isinstance(message, TxnGroup) else "meta"
        return indices[0], kind

    def _colocate(self, message: Message, indices: List[int]) -> int:
        """Move every touched file onto one shard; return its index.

        The rename two-step (and its generalization to links and
        transactional groups): step one migrates stray source bundles
        through the relocation table onto the *destination* shard — for a
        rename, the shard owning ``dest``, so the file ends up placed
        where its new name naturally routes; step two (the caller) hands
        the whole message to that shard's ordinary apply path.
        """
        target, kind = self._colocation_target(message, indices)
        if kind == "rename":
            self.cross_shard_renames += 1
            if self.obs.enabled:
                self.obs.event(
                    "server.shard.rename_forward",
                    path=message.path,
                    dest=message.dest,
                    src_shard=self.shard_index_for_path(message.path),
                    dst_shard=target,
                )
        for path in self._touched_paths(message):
            self._migrate(path, target, reason=kind)
        return target

    def _migrate(self, path: str, target: int, *, reason: str) -> None:
        source = self.shard_index_for_path(path)
        if source == target:
            return
        bundle = self.shards[source].store.detach_entry(path)
        if bundle is None:
            return
        stored, lineage, snapshots = bundle
        if self.obs.enabled:
            self.obs.event(
                "server.shard.detach",
                path=path,
                src_shard=source,
                dst_shard=target,
                reason=reason,
                versions=len(lineage),
            )
        self.shards[target].store.attach_entry(path, stored, lineage, snapshots)
        self._note_relocation(path, target)
        self.migrations += 1
        if self.obs.enabled:
            # versions is re-derived from the destination store *after*
            # the merge — an independent count the migration-safety
            # invariant diffs against the detach-side lineage length.
            self.obs.event(
                "server.shard.attach",
                path=path,
                src_shard=source,
                dst_shard=target,
                versions=len(self.shards[target].store.history(path)),
            )
            self.obs.inc("server.shard.migrations", reason=reason)

    def _note_relocation(self, path: str, target: int) -> None:
        natural = (
            0 if len(self.shards) == 1 else self.ring.lookup(namespace_of(path))
        )
        if natural == target:
            # Moved back home — no override needed.
            self._relocated.pop(path, None)
            return
        self._relocated[path] = target
        self._relocated.move_to_end(path)
        while len(self._relocated) > self._relocation_window:
            self._relocated.popitem(last=False)

    # -- aggregate accounting -------------------------------------------------

    @property
    def apply_log(self) -> List[ApplyResult]:
        """Interleaved apply log across shards is meaningless; expose the
        concatenation in shard order for coarse assertions only."""
        out: List[ApplyResult] = []
        for shard in self.shards:
            out.extend(shard.apply_log)
        return out

    @property
    def upload_order(self) -> List[str]:
        out: List[str] = []
        for shard in self.shards:
            out.extend(shard.upload_order)
        return out

    @property
    def dedup_drops(self) -> int:
        return sum(shard.dedup_drops for shard in self.shards)

    @property
    def dirs(self) -> Set[str]:
        out: Set[str] = set()
        for shard in self.shards:
            out.update(shard.dirs)
        return out

    # -- read API (routed verbatim) ------------------------------------------

    def file_content(self, path: str) -> bytes:
        return self.shard_for_path(path).file_content(path)

    def file_version(self, path: str) -> Optional[VersionStamp]:
        return self.shard_for_path(path).file_version(path)

    def file_range(
        self, path: str, offset: int, length: int
    ) -> Tuple[bytes, Optional[VersionStamp]]:
        return self.shard_for_path(path).file_range(path, offset, length)

    def resync_versions(
        self, paths: List[str]
    ) -> List[Tuple[str, Optional[VersionStamp]]]:
        out: List[Tuple[str, Optional[VersionStamp]]] = []
        for path in paths:
            out.extend(self.shard_for_path(path).resync_versions([path]))
        return out

    def version_history(self, path: str) -> List[VersionStamp]:
        return self.shard_for_path(path).version_history(path)

    def restore_version(
        self,
        path: str,
        version: VersionStamp,
        *,
        as_version: Optional[VersionStamp] = None,
        origin_client: int = 0,
    ) -> bytes:
        return self.shard_for_path(path).restore_version(
            path, version, as_version=as_version, origin_client=origin_client
        )
