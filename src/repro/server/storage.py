"""Versioned cloud file storage.

Keeps, per path, the current content and version stamp, plus a bounded
window of recent version snapshots addressable *by stamp*. Snapshots are
what let the server (a) apply a delta whose base content has already been
renamed or overwritten in the namespace, and (b) materialize a losing
update as a conflict copy (Section III-C: "servers keep recent versions of
files, the incremental data can still be applied to the proper file").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import NotFoundError
from repro.common.version import VersionStamp


@dataclass
class StoredFile:
    """Current state of one path on the cloud."""

    content: bytes = field(repr=False, default=b"")
    version: Optional[VersionStamp] = None

    @property
    def size(self) -> int:
        return len(self.content)


class VersionedStore:
    """Path namespace + stamp-addressed snapshot window."""

    def __init__(self, *, snapshot_window: int = 64):
        if snapshot_window <= 0:
            raise ValueError("snapshot_window must be positive")
        self._files: Dict[str, StoredFile] = {}
        self._snapshots: "OrderedDict[VersionStamp, bytes]" = OrderedDict()
        self._snapshot_window = snapshot_window
        # Per-path version lineage (newest last) — the fine-grained version
        # control of Section III-C: one entry per applied Sync Queue node.
        self._history: Dict[str, List[VersionStamp]] = {}

    # -- namespace ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def get(self, path: str) -> StoredFile:
        stored = self._files.get(path)
        if stored is None:
            raise NotFoundError(f"cloud has no file {path}")
        return stored

    def lookup(self, path: str) -> Optional[StoredFile]:
        """Like :meth:`get` but returns ``None`` when absent."""
        return self._files.get(path)

    def put(self, path: str, content: bytes, version: Optional[VersionStamp]) -> None:
        """Set current content+version and snapshot the new version.

        An existing entry is mutated *in place*: other names hard-linked to
        the same file (see :meth:`copy`) observe the update, mirroring the
        client file system's inode semantics.
        """
        stored = self._files.get(path)
        if stored is None:
            self._files[path] = StoredFile(content=content, version=version)
        else:
            stored.content = content
            stored.version = version
        if version is not None:
            self._remember(version, content)
            lineage = self._history.setdefault(path, [])
            if not lineage or lineage[-1] != version:
                lineage.append(version)

    def rename(self, src: str, dst: str) -> None:
        """Move a path (replacing any existing destination).

        Version lineage is *copied* to the destination, extending any
        lineage the destination already has, and the source keeps a copy
        too: in the transactional-save dance (rename f -> t0; rename
        t1 -> f) the document's history must survive both hops so that
        "restore yesterday's version of f" stays meaningful.
        """
        stored = self._files.pop(src, None)
        if stored is None:
            raise NotFoundError(f"cloud has no file {src}")
        self._files[dst] = stored
        src_lineage = self._history.get(src, [])
        dst_lineage = self._history.setdefault(dst, [])
        for version in src_lineage:
            if not dst_lineage or dst_lineage[-1] != version:
                dst_lineage.append(version)

    def copy(self, src: str, dst: str) -> None:
        """Bind ``dst`` to the same file as ``src`` (hard-link replay).

        The two names share one :class:`StoredFile`, so in-place updates
        through either name are visible through both — until a rename or
        a fresh create rebinds one of them (exactly POSIX's detachment
        semantics, which is what the gedit backup pattern relies on).
        """
        self._files[dst] = self.get(src)

    def delete(self, path: str) -> None:
        """Remove a path; snapshots of its versions survive the window."""
        if path not in self._files:
            raise NotFoundError(f"cloud has no file {path}")
        del self._files[path]

    def paths(self) -> List[str]:
        """All live paths, sorted."""
        return sorted(self._files)

    # -- shard migration (cross-shard rename/link/group co-location) -------

    def detach_entry(
        self, path: str
    ) -> Optional[Tuple[StoredFile, List[VersionStamp], List[Tuple[VersionStamp, bytes]]]]:
        """Remove ``path`` and return everything another store needs to host it.

        Returns ``(stored, lineage, snapshots)`` — the live file object, its
        version lineage, and the lineage snapshots still inside this store's
        window — or ``None`` when the path is absent. Used by the shard
        router to move a file between shards before applying a cross-shard
        rename; the caller re-homes the bundle with :meth:`attach_entry`.
        Snapshots are copied out, not dropped: an aged-out base on the old
        shard behaves exactly like one that aged out of a single server.
        """
        stored = self._files.pop(path, None)
        if stored is None:
            return None
        lineage = self._history.pop(path, [])
        snapshots = [
            (version, self._snapshots[version])
            for version in lineage
            if version in self._snapshots
        ]
        return stored, lineage, snapshots

    def attach_entry(
        self,
        path: str,
        stored: StoredFile,
        lineage: List[VersionStamp],
        snapshots: List[Tuple[VersionStamp, bytes]],
    ) -> None:
        """Adopt a file bundle produced by :meth:`detach_entry`.

        Lineage extends (without duplicating the junction stamp) any
        lineage this store already has for ``path``, mirroring
        :meth:`rename`'s merge rule; migrated snapshots enter this store's
        window and age out under its normal eviction policy.
        """
        self._files[path] = stored
        dst_lineage = self._history.setdefault(path, [])
        for version in lineage:
            if not dst_lineage or dst_lineage[-1] != version:
                dst_lineage.append(version)
        for version, content in snapshots:
            self._remember(version, content)

    # -- version history (fine-grained version control, Section III-C) -----

    def history(self, path: str) -> List[VersionStamp]:
        """Version lineage of ``path``, oldest first (Sync Queue node
        granularity — between open-to-close and per-write)."""
        return list(self._history.get(path, []))

    def restorable_history(self, path: str) -> List[VersionStamp]:
        """The subset of :meth:`history` whose content is still snapshotted."""
        return [v for v in self._history.get(path, []) if v in self._snapshots]

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, version: VersionStamp) -> Optional[bytes]:
        """Content of a recent version, or ``None`` if it aged out."""
        return self._snapshots.get(version)

    def _remember(self, version: VersionStamp, content: bytes) -> None:
        self._snapshots[version] = content
        self._snapshots.move_to_end(version)
        while len(self._snapshots) > self._snapshot_window:
            self._snapshots.popitem(last=False)
