"""High-level simulation facade.

Wires the pieces a study needs — one cloud, N DeltaCFS clients on shared
virtual time, accounted channels, per-principal meters — behind one
object, so examples and downstream experiments don't repeat the plumbing:

    from repro.sim import Simulation

    sim = Simulation(clients=2)
    laptop, phone = sim.clients
    laptop.create("/f")
    laptop.write("/f", 0, b"hello")
    laptop.close("/f")
    sim.settle()
    assert phone.read("/f", 0, None) == b"hello"
    print(sim.report())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.clock import VirtualClock
from repro.common.config import DeltaCFSConfig
from repro.core.client import DeltaCFSClient
from repro.cost.meter import CostMeter
from repro.cost.profile import CostProfile, PC_PROFILE
from repro.metrics.report import format_bytes, format_table
from repro.net.transport import Channel, NetworkModel, PC_NETWORK
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import MemoryFileSystem


class Simulation:
    """A cloud plus ``clients`` DeltaCFS devices on one virtual clock.

    Args:
        clients: number of devices sharing the sync namespace.
        config: DeltaCFS tunables applied to every client.
        network: link model for every client<->cloud channel.
        profile: CPU-cost profile for the clients.
    """

    def __init__(
        self,
        clients: int = 1,
        *,
        config: Optional[DeltaCFSConfig] = None,
        network: NetworkModel = PC_NETWORK,
        profile: CostProfile = PC_PROFILE,
    ):
        if clients < 1:
            raise ValueError("need at least one client")
        self.clock = VirtualClock()
        self.server_meter = CostMeter(profile)
        self.server = CloudServer(meter=self.server_meter)
        self.clients: List[DeltaCFSClient] = []
        self.channels: Dict[int, Channel] = {}
        self.meters: Dict[int, CostMeter] = {}
        for client_id in range(1, clients + 1):
            meter = CostMeter(profile)
            channel = Channel(
                model=network, client_meter=meter, server_meter=self.server_meter
            )
            client = DeltaCFSClient(
                MemoryFileSystem(),
                server=self.server,
                channel=channel,
                clock=self.clock,
                client_id=client_id,
                meter=meter,
                config=config,
            )
            self.clients.append(client)
            self.channels[client_id] = channel
            self.meters[client_id] = meter

    @property
    def client(self) -> DeltaCFSClient:
        """The first client (convenience for single-device studies)."""
        return self.clients[0]

    def settle(self, seconds: float = 6.0, step: float = 1.0) -> None:
        """Advance virtual time, pumping every client, then flush all.

        ``seconds`` should exceed the upload delay (default 3 s) so every
        queued node becomes due.
        """
        elapsed = 0.0
        while elapsed < seconds:
            tick = min(step, seconds - elapsed)
            self.clock.advance(tick)
            elapsed += tick
            for client in self.clients:
                client.pump()
        for client in self.clients:
            client.flush()
        # one more round so flush-time fan-out reaches all peers
        for client in self.clients:
            client.pump()

    def converged(self) -> bool:
        """True when every client's synced tree matches the cloud."""
        cloud = {
            p: self.server.file_content(p)
            for p in self.server.store.paths()
            if "conflicted copy" not in p
        }
        for client in self.clients:
            tmp = client.config.tmp_dir
            local = {
                p: client.inner.read_file(p)
                for p in client.inner.walk_files()
                if not p.startswith(tmp)
            }
            if local != cloud:
                return False
        return True

    def report(self) -> str:
        """A per-principal traffic/CPU table."""
        rows = []
        for client in self.clients:
            stats = self.channels[client.client_id].stats
            rows.append(
                [
                    f"client {client.client_id}",
                    f"{self.meters[client.client_id].total:.1f}",
                    format_bytes(stats.up_bytes),
                    format_bytes(stats.down_bytes),
                    int(client.stats.deltas_kept),
                    int(client.stats.conflicts),
                ]
            )
        rows.append(
            ["cloud", f"{self.server_meter.total:.1f}", "-", "-", "-", "-"]
        )
        return format_table(
            ["principal", "CPU ticks", "up", "down", "deltas", "conflicts"], rows
        )
