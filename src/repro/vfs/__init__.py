"""A virtual file system with operation interception — the FUSE substitute.

The paper's prototype sits inside the FUSE request path, seeing every file
operation (with data) before forwarding it to the local file system. We
reproduce that structure exactly, in-process:

- :mod:`repro.vfs.ops` — typed records of the file operations that flow
  through the stack.
- :mod:`repro.vfs.filesystem` — ``MemoryFileSystem``, a POSIX-like
  in-memory file system with hard links, sparse writes, and rename/unlink
  semantics.
- :mod:`repro.vfs.interception` — ``PassthroughFileSystem``, the layering
  mechanism (DeltaCFS and the NFS client subclass it), and
  ``OperationLog`` for trace capture.
- :mod:`repro.vfs.watcher` — inotify-style change notification *without*
  data, which is all Dropbox-like watchers get (the root cause of the
  "abuse of delta sync").
"""

from repro.vfs.filesystem import FileSystemAPI, MemoryFileSystem, Stat
from repro.vfs.disk import LocalDirFileSystem
from repro.vfs.interception import PassthroughFileSystem, OperationLog
from repro.vfs.watcher import InotifyEvent, Watcher, WatchedFileSystem
from repro.vfs.ops import (
    FileOp,
    CreateOp,
    WriteOp,
    ReadOp,
    TruncateOp,
    RenameOp,
    LinkOp,
    UnlinkOp,
    CloseOp,
    MkdirOp,
    RmdirOp,
)

__all__ = [
    "FileSystemAPI",
    "MemoryFileSystem",
    "LocalDirFileSystem",
    "Stat",
    "PassthroughFileSystem",
    "OperationLog",
    "InotifyEvent",
    "Watcher",
    "WatchedFileSystem",
    "FileOp",
    "CreateOp",
    "WriteOp",
    "ReadOp",
    "TruncateOp",
    "RenameOp",
    "LinkOp",
    "UnlinkOp",
    "CloseOp",
    "MkdirOp",
    "RmdirOp",
]
