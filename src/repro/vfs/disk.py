"""``LocalDirFileSystem``: the FileSystemAPI over a real directory.

Everything in this repository runs against ``MemoryFileSystem`` for speed
and determinism, but the client engine only needs the ``FileSystemAPI``
contract — so this adapter lets a ``DeltaCFSClient`` manage actual files
under a chosen root directory, the deployment shape of the paper's FUSE
prototype (mount point -> local file system).

Paths are the usual absolute POSIX paths of the sync namespace; they map
to ``root/<path>``. Escaping the root (``..``) is rejected.
"""

from __future__ import annotations

import os
import posixpath
from typing import List

from repro.common.errors import NotFoundError
from repro.vfs.filesystem import FileSystemAPI, Stat


class LocalDirFileSystem(FileSystemAPI):
    """A sync namespace rooted at a real directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # -- path mapping ------------------------------------------------------

    def _real(self, path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        normalized = posixpath.normpath(path)
        real = os.path.normpath(os.path.join(self.root, normalized.lstrip("/")))
        if not (real == self.root or real.startswith(self.root + os.sep)):
            raise ValueError(f"path escapes the sync root: {path}")
        return real

    def _require_file(self, path: str) -> str:
        real = self._real(path)
        if not os.path.isfile(real):
            raise NotFoundError(f"no such file: {path}")
        return real

    # -- FileSystemAPI -------------------------------------------------------

    def create(self, path: str) -> None:
        real = self._real(path)
        if os.path.isdir(real):
            raise FileExistsError(f"is a directory: {path}")
        parent = os.path.dirname(real)
        if not os.path.isdir(parent):
            raise NotFoundError(f"no such directory: {os.path.dirname(path)}")
        # O_CREAT without truncation
        fd = os.open(real, os.O_CREAT | os.O_WRONLY, 0o644)
        os.close(fd)

    def write(self, path: str, offset: int, data: bytes) -> None:
        real = self._require_file(path)
        with open(real, "r+b") as fh:
            size = fh.seek(0, os.SEEK_END)
            if offset > size:
                fh.write(b"\x00" * (offset - size))
            fh.seek(offset)
            fh.write(data)

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        real = self._require_file(path)
        with open(real, "rb") as fh:
            fh.seek(offset)
            return fh.read() if length is None else fh.read(length)

    def truncate(self, path: str, length: int) -> None:
        real = self._require_file(path)
        size = os.path.getsize(real)
        with open(real, "r+b") as fh:
            if length > size:
                fh.seek(size)
                fh.write(b"\x00" * (length - size))
            else:
                fh.truncate(length)

    def rename(self, src: str, dst: str) -> None:
        real_src = self._real(src)
        if not os.path.exists(real_src):
            raise NotFoundError(f"no such file: {src}")
        os.replace(real_src, self._real(dst))

    def link(self, src: str, dst: str) -> None:
        real_dst = self._real(dst)
        if os.path.exists(real_dst):
            raise FileExistsError(f"link target exists: {dst}")
        os.link(self._require_file(src), real_dst)

    def unlink(self, path: str) -> None:
        os.unlink(self._require_file(path))

    def close(self, path: str) -> None:
        self._require_file(path)  # path-addressed: nothing held open

    def mkdir(self, path: str) -> None:
        real = self._real(path)
        if os.path.exists(real):
            raise FileExistsError(f"exists: {path}")
        os.mkdir(real)

    def rmdir(self, path: str) -> None:
        real = self._real(path)
        if not os.path.isdir(real):
            raise NotFoundError(f"no such directory: {path}")
        os.rmdir(real)

    def exists(self, path: str) -> bool:
        return os.path.exists(self._real(path))

    def stat(self, path: str) -> Stat:
        real = self._real(path)
        if not os.path.exists(real):
            raise NotFoundError(f"no such file: {path}")
        info = os.stat(real)
        return Stat(
            path=path,
            size=info.st_size if os.path.isfile(real) else 0,
            nlink=info.st_nlink,
            is_dir=os.path.isdir(real),
            inode=info.st_ino,
        )

    def listdir(self, path: str) -> List[str]:
        real = self._real(path)
        if not os.path.isdir(real):
            raise NotFoundError(f"no such directory: {path}")
        return sorted(os.listdir(real))

    def linked_paths(self, path: str) -> List[str]:
        """Names under the root sharing ``path``'s inode (same-device scan)."""
        target = os.stat(self._require_file(path))
        if target.st_nlink <= 1:
            return [path]
        matches: List[str] = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                full = os.path.join(dirpath, name)
                try:
                    info = os.stat(full)
                except OSError:
                    continue
                if info.st_ino == target.st_ino and info.st_dev == target.st_dev:
                    rel = os.path.relpath(full, self.root)
                    matches.append("/" + rel.replace(os.sep, "/"))
        return sorted(matches) if matches else [path]

    def walk_files(self) -> List[str]:
        """All regular-file paths under the root, sorted (test helper)."""
        out: List[str] = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                rel = os.path.relpath(os.path.join(dirpath, name), self.root)
                out.append("/" + rel.replace(os.sep, "/"))
        return sorted(out)
