"""``MemoryFileSystem``: the POSIX-like backing store.

Semantics implemented (the subset the paper's update patterns exercise):

- regular files with sparse writes (zero-fill on gaps) and truncate;
- hard links via an inode table (``link f f~`` — the gedit pattern);
- ``rename`` atomically replaces an existing destination;
- ``unlink`` removes a directory entry; inode data lives until nlink = 0;
- directories with mkdir/rmdir/listdir;
- an optional capacity so ENOSPC behaviour is testable (Section III-A's
  escape hatch for preserving unlinked files).
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.common.bytesutil import apply_write, truncate as truncate_bytes
from repro.common.errors import NoSpaceError, NotFoundError


@dataclass(frozen=True)
class Stat:
    """File metadata snapshot."""

    path: str
    size: int
    nlink: int
    is_dir: bool
    inode: int


class _Inode:
    __slots__ = ("data", "nlink")

    def __init__(self, data: bytes = b""):
        self.data = data
        self.nlink = 1


def _norm(path: str) -> str:
    """Normalize to an absolute, canonical POSIX path."""
    if not path.startswith("/"):
        path = "/" + path
    return posixpath.normpath(path)


class FileSystemAPI:
    """The operation surface every layer of the stack implements.

    ``PassthroughFileSystem`` forwards these verbatim; ``MemoryFileSystem``
    terminates them. Paths are absolute POSIX paths.
    """

    def create(self, path: str) -> None:
        """Create a regular file; a no-op if it already exists (O_CREAT)."""
        raise NotImplementedError

    def write(self, path: str, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, zero-filling any gap (sparse)."""
        raise NotImplementedError

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes at ``offset`` (to EOF when ``None``)."""
        raise NotImplementedError

    def truncate(self, path: str, length: int) -> None:
        """Set the file length: shrink, or zero-extend when growing."""
        raise NotImplementedError

    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` to ``dst``, replacing any existing dst."""
        raise NotImplementedError

    def link(self, src: str, dst: str) -> None:
        """Create a hard link: ``dst`` becomes another name for ``src``."""
        raise NotImplementedError

    def unlink(self, path: str) -> None:
        """Remove the directory entry; data lives while other links do."""
        raise NotImplementedError

    def close(self, path: str) -> None:
        """Close the (path-addressed) file; packs its Sync Queue node."""
        raise NotImplementedError

    def mkdir(self, path: str) -> None:
        """Create a directory (parent must exist)."""
        raise NotImplementedError

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        """Whether a file or directory exists at ``path``."""
        raise NotImplementedError

    def stat(self, path: str) -> Stat:
        """Metadata snapshot (size, nlink, inode, is_dir)."""
        raise NotImplementedError

    def listdir(self, path: str) -> List[str]:
        """Names directly under the directory ``path``, sorted."""
        raise NotImplementedError

    def linked_paths(self, path: str) -> List[str]:
        """All names bound to the same file as ``path`` (hard links).

        Always contains ``path`` itself. Layers without inode knowledge
        return just ``[path]``.
        """
        return [path]

    # convenience built on the primitives -------------------------------

    def size(self, path: str) -> int:
        """File size in bytes."""
        return self.stat(path).size

    def write_file(self, path: str, data: bytes) -> None:
        """create-if-missing + truncate + single write + close."""
        if not self.exists(path):
            self.create(path)
        self.truncate(path, 0)
        self.write(path, 0, data)
        self.close(path)

    def read_file(self, path: str) -> bytes:
        """Whole-file read."""
        return self.read(path, 0, None)


class MemoryFileSystem(FileSystemAPI):
    """In-memory file system with inode-based hard links.

    Args:
        capacity: total data bytes allowed across all inodes; ``None``
            means unlimited. Exceeding it raises :class:`NoSpaceError`,
            which the DeltaCFS unlink-preservation logic must tolerate.
    """

    def __init__(self, capacity: int | None = None):
        self._entries: Dict[str, int] = {}  # path -> inode id
        self._inodes: Dict[int, _Inode] = {}
        self._dirs = {"/"}
        self._next_inode = 1
        self._capacity = capacity
        self._used = 0

    # -- internals -------------------------------------------------------

    def _inode_of(self, path: str) -> _Inode:
        path = _norm(path)
        inode_id = self._entries.get(path)
        if inode_id is None:
            raise NotFoundError(f"no such file: {path}")
        return self._inodes[inode_id]

    def _charge(self, delta_bytes: int) -> None:
        if self._capacity is not None and self._used + delta_bytes > self._capacity:
            raise NoSpaceError(
                f"device full: used {self._used}, need {delta_bytes}, "
                f"capacity {self._capacity}"
            )
        self._used += delta_bytes

    def _require_parent(self, path: str) -> None:
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise NotFoundError(f"no such directory: {parent}")

    # -- FileSystemAPI ----------------------------------------------------

    def create(self, path: str) -> None:
        path = _norm(path)
        if path in self._dirs:
            raise FileExistsError(f"is a directory: {path}")
        self._require_parent(path)
        if path in self._entries:
            # POSIX open(O_CREAT) on an existing file: keep its data.
            return
        inode_id = self._next_inode
        self._next_inode += 1
        self._inodes[inode_id] = _Inode()
        self._entries[path] = inode_id

    def write(self, path: str, offset: int, data: bytes) -> None:
        inode = self._inode_of(path)
        new_data = apply_write(inode.data, offset, data)
        self._charge(len(new_data) - len(inode.data))
        inode.data = new_data

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        inode = self._inode_of(path)
        if length is None:
            return inode.data[offset:]
        return inode.data[offset : offset + length]

    def truncate(self, path: str, length: int) -> None:
        inode = self._inode_of(path)
        new_data = truncate_bytes(inode.data, length)
        self._charge(len(new_data) - len(inode.data))
        inode.data = new_data

    def rename(self, src: str, dst: str) -> None:
        src, dst = _norm(src), _norm(dst)
        if src not in self._entries:
            raise NotFoundError(f"no such file: {src}")
        self._require_parent(dst)
        if src == dst:
            return
        if dst in self._entries:
            self._drop_entry(dst)
        self._entries[dst] = self._entries.pop(src)

    def link(self, src: str, dst: str) -> None:
        src, dst = _norm(src), _norm(dst)
        inode_id = self._entries.get(src)
        if inode_id is None:
            raise NotFoundError(f"no such file: {src}")
        self._require_parent(dst)
        if dst in self._entries:
            raise FileExistsError(f"link target exists: {dst}")
        self._entries[dst] = inode_id
        self._inodes[inode_id].nlink += 1

    def unlink(self, path: str) -> None:
        path = _norm(path)
        if path not in self._entries:
            raise NotFoundError(f"no such file: {path}")
        self._drop_entry(path)

    def close(self, path: str) -> None:
        # MemoryFileSystem is path-addressed; close is a no-op here but is
        # forwarded through the stack because DeltaCFS packs write nodes on
        # it (Section III-B).
        self._inode_of(path)

    def mkdir(self, path: str) -> None:
        path = _norm(path)
        if path in self._dirs:
            raise FileExistsError(f"directory exists: {path}")
        if path in self._entries:
            raise FileExistsError(f"file exists: {path}")
        self._require_parent(path)
        self._dirs.add(path)

    def rmdir(self, path: str) -> None:
        path = _norm(path)
        if path == "/":
            raise ValueError("cannot remove root")
        if path not in self._dirs:
            raise NotFoundError(f"no such directory: {path}")
        if any(p != path and self._is_under(p, path) for p in self._dirs) or any(
            self._is_under(p, path) for p in self._entries
        ):
            raise OSError(f"directory not empty: {path}")
        self._dirs.discard(path)

    def exists(self, path: str) -> bool:
        path = _norm(path)
        return path in self._entries or path in self._dirs

    def stat(self, path: str) -> Stat:
        path = _norm(path)
        if path in self._dirs:
            return Stat(path=path, size=0, nlink=1, is_dir=True, inode=0)
        inode_id = self._entries.get(path)
        if inode_id is None:
            raise NotFoundError(f"no such file: {path}")
        inode = self._inodes[inode_id]
        return Stat(
            path=path,
            size=len(inode.data),
            nlink=inode.nlink,
            is_dir=False,
            inode=inode_id,
        )

    def listdir(self, path: str) -> List[str]:
        path = _norm(path)
        if path not in self._dirs:
            raise NotFoundError(f"no such directory: {path}")
        out = set()
        for entry in list(self._entries) + [d for d in self._dirs if d != "/"]:
            if posixpath.dirname(entry) == path:
                out.add(posixpath.basename(entry))
        return sorted(out)

    def linked_paths(self, path: str) -> List[str]:
        path = _norm(path)
        inode_id = self._entries.get(path)
        if inode_id is None:
            raise NotFoundError(f"no such file: {path}")
        return sorted(p for p, i in self._entries.items() if i == inode_id)

    # -- extras used by fault injection and tests --------------------------

    def corrupt(self, path: str, byte_offset: int, flip_mask: int = 0x01) -> None:
        """Flip bits in a file *bypassing* the operation stack.

        This models the paper's debugfs-based corruption injection
        (Section IV-E): the change is invisible to any interception layer.
        """
        inode = self._inode_of(path)
        if not 0 <= byte_offset < len(inode.data):
            raise ValueError("corruption offset outside file")
        data = bytearray(inode.data)
        data[byte_offset] ^= flip_mask
        inode.data = bytes(data)

    def walk_files(self) -> Iterator[str]:
        """All regular-file paths, sorted."""
        return iter(sorted(self._entries))

    @property
    def used_bytes(self) -> int:
        """Total data bytes across inodes (what capacity limits)."""
        return self._used

    @staticmethod
    def _is_under(path: str, directory: str) -> bool:
        return path.startswith(directory.rstrip("/") + "/")

    def _drop_entry(self, path: str) -> None:
        inode_id = self._entries.pop(path)
        inode = self._inodes[inode_id]
        inode.nlink -= 1
        if inode.nlink == 0:
            self._used -= len(inode.data)
            del self._inodes[inode_id]
