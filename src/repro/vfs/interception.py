"""Operation interception: the layering mechanism of the stack.

``PassthroughFileSystem`` plays the role FUSE plays in the paper's Figure 4:
every file operation arrives at the layer *with its data*, the layer may act
on it (DeltaCFS enqueues it, the NFS client ships it), and then forwards it
to the layer below, terminating at a ``MemoryFileSystem``.

``OperationLog`` is the trace-capture layer ("we use a loopback user-space
file system to collect file operations including the content of the written
data", Section IV-A).
"""

from __future__ import annotations

from typing import List

from repro.vfs.filesystem import FileSystemAPI, Stat
from repro.vfs.ops import (
    CloseOp,
    CreateOp,
    FileOp,
    LinkOp,
    MkdirOp,
    ReadOp,
    RenameOp,
    RmdirOp,
    TruncateOp,
    UnlinkOp,
    WriteOp,
)


class PassthroughFileSystem(FileSystemAPI):
    """Forwards every operation to ``inner``; subclasses override to act.

    Overrides should do their work and then call ``super()`` (or forward
    explicitly) so the operation reaches the backing store — exactly how
    the FUSE request path works.
    """

    def __init__(self, inner: FileSystemAPI):
        self.inner = inner

    def create(self, path: str) -> None:
        self.inner.create(path)

    def write(self, path: str, offset: int, data: bytes) -> None:
        self.inner.write(path, offset, data)

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        return self.inner.read(path, offset, length)

    def truncate(self, path: str, length: int) -> None:
        self.inner.truncate(path, length)

    def rename(self, src: str, dst: str) -> None:
        self.inner.rename(src, dst)

    def link(self, src: str, dst: str) -> None:
        self.inner.link(src, dst)

    def unlink(self, path: str) -> None:
        self.inner.unlink(path)

    def close(self, path: str) -> None:
        self.inner.close(path)

    def mkdir(self, path: str) -> None:
        self.inner.mkdir(path)

    def rmdir(self, path: str) -> None:
        self.inner.rmdir(path)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def stat(self, path: str) -> Stat:
        return self.inner.stat(path)

    def listdir(self, path: str) -> List[str]:
        return self.inner.listdir(path)

    def linked_paths(self, path: str) -> List[str]:
        return self.inner.linked_paths(path)


class OperationLog(PassthroughFileSystem):
    """Records every mutating operation that flows through it.

    The recorded list replays through :func:`repro.workloads.traces.replay`,
    which is how the benchmark harness feeds one identical operation stream
    to every sync solution.
    """

    def __init__(self, inner: FileSystemAPI, clock=None):
        super().__init__(inner)
        self.ops: List[FileOp] = []
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def create(self, path: str) -> None:
        super().create(path)
        self.ops.append(CreateOp(path, timestamp=self._now()))

    def write(self, path: str, offset: int, data: bytes) -> None:
        super().write(path, offset, data)
        self.ops.append(WriteOp(path, offset, data, timestamp=self._now()))

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        data = super().read(path, offset, length)
        self.ops.append(
            ReadOp(path, offset, len(data), timestamp=self._now())
        )
        return data

    def truncate(self, path: str, length: int) -> None:
        super().truncate(path, length)
        self.ops.append(TruncateOp(path, length, timestamp=self._now()))

    def rename(self, src: str, dst: str) -> None:
        super().rename(src, dst)
        self.ops.append(RenameOp(src, dst, timestamp=self._now()))

    def link(self, src: str, dst: str) -> None:
        super().link(src, dst)
        self.ops.append(LinkOp(src, dst, timestamp=self._now()))

    def unlink(self, path: str) -> None:
        super().unlink(path)
        self.ops.append(UnlinkOp(path, timestamp=self._now()))

    def close(self, path: str) -> None:
        super().close(path)
        self.ops.append(CloseOp(path, timestamp=self._now()))

    def mkdir(self, path: str) -> None:
        super().mkdir(path)
        self.ops.append(MkdirOp(path, timestamp=self._now()))

    def rmdir(self, path: str) -> None:
        super().rmdir(path)
        self.ops.append(RmdirOp(path, timestamp=self._now()))
