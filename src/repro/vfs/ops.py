"""Typed file-operation records.

These are the events that flow through the interception stack and make up
replayable traces (the Word/WeChat traces of Section IV-A are sequences of
these). ``WriteOp`` carries the written payload — the whole point of
NFS-like file RPC is that the payload is available at interception time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class CreateOp:
    """Create an empty regular file."""

    path: str
    timestamp: float = 0.0


@dataclass(frozen=True)
class WriteOp:
    """Write ``data`` at ``offset``; extends the file if needed."""

    path: str
    offset: int
    data: bytes = field(repr=False)
    timestamp: float = 0.0

    @property
    def length(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # keep giant payloads out of test output
        return (
            f"WriteOp(path={self.path!r}, offset={self.offset}, "
            f"length={len(self.data)}, timestamp={self.timestamp})"
        )


@dataclass(frozen=True)
class ReadOp:
    """Read ``length`` bytes at ``offset``."""

    path: str
    offset: int
    length: int
    timestamp: float = 0.0


@dataclass(frozen=True)
class TruncateOp:
    """Set the file length (shrink or zero-extend)."""

    path: str
    length: int
    timestamp: float = 0.0


@dataclass(frozen=True)
class RenameOp:
    """Atomically rename ``src`` to ``dst`` (replacing ``dst`` if present)."""

    src: str
    dst: str
    timestamp: float = 0.0


@dataclass(frozen=True)
class LinkOp:
    """Create a hard link ``dst`` to the file at ``src``."""

    src: str
    dst: str
    timestamp: float = 0.0


@dataclass(frozen=True)
class UnlinkOp:
    """Remove the directory entry at ``path``."""

    path: str
    timestamp: float = 0.0


@dataclass(frozen=True)
class CloseOp:
    """Close the (path-addressed) file — packs its Sync Queue write node."""

    path: str
    timestamp: float = 0.0


@dataclass(frozen=True)
class MkdirOp:
    """Create a directory."""

    path: str
    timestamp: float = 0.0


@dataclass(frozen=True)
class RmdirOp:
    """Remove an empty directory."""

    path: str
    timestamp: float = 0.0


FileOp = Union[
    CreateOp,
    WriteOp,
    ReadOp,
    TruncateOp,
    RenameOp,
    LinkOp,
    UnlinkOp,
    CloseOp,
    MkdirOp,
    RmdirOp,
]
