"""inotify-style change notification — what Dropbox-like clients see.

The crucial asymmetry the paper exploits: a watcher learns *that* a file
changed, never *what* changed. A Dropbox-like client must therefore re-scan
the whole file (chunk, fingerprint, delta-encode) on every event — the
"abuse of delta sync". DeltaCFS, sitting in the operation path, gets the
written bytes for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.vfs.filesystem import FileSystemAPI, Stat
from repro.vfs.interception import PassthroughFileSystem


@dataclass(frozen=True)
class InotifyEvent:
    """One change notification.

    ``kind`` is one of ``create``, ``modify``, ``delete``, ``move``
    (mirroring IN_CREATE / IN_MODIFY / IN_DELETE / IN_MOVED_*).
    For ``move``, ``path`` is the source and ``dest`` the destination.
    """

    kind: str
    path: str
    dest: str | None = None
    timestamp: float = 0.0


class Watcher:
    """Collects events; sync clients subscribe with a callback or poll."""

    def __init__(self):
        self.events: List[InotifyEvent] = []
        self._subscribers: List[Callable[[InotifyEvent], None]] = []

    def subscribe(self, callback: Callable[[InotifyEvent], None]) -> None:
        """Register a callback invoked synchronously on each event."""
        self._subscribers.append(callback)

    def emit(self, event: InotifyEvent) -> None:
        """Record and fan out one event."""
        self.events.append(event)
        for callback in self._subscribers:
            callback(event)

    def drain(self) -> List[InotifyEvent]:
        """Return and clear all pending events (poll-style consumption)."""
        events, self.events = self.events, []
        return events


class WatchedFileSystem(PassthroughFileSystem):
    """Emits inotify events for mutating operations as they pass through."""

    def __init__(self, inner: FileSystemAPI, watcher: Watcher, clock=None):
        super().__init__(inner)
        self.watcher = watcher
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def _emit(self, kind: str, path: str, dest: str | None = None) -> None:
        self.watcher.emit(
            InotifyEvent(kind=kind, path=path, dest=dest, timestamp=self._now())
        )

    def create(self, path: str) -> None:
        super().create(path)
        self._emit("create", path)

    def write(self, path: str, offset: int, data: bytes) -> None:
        super().write(path, offset, data)
        self._emit("modify", path)

    def truncate(self, path: str, length: int) -> None:
        super().truncate(path, length)
        self._emit("modify", path)

    def rename(self, src: str, dst: str) -> None:
        super().rename(src, dst)
        self._emit("move", src, dest=dst)

    def link(self, src: str, dst: str) -> None:
        super().link(src, dst)
        self._emit("create", dst)

    def unlink(self, path: str) -> None:
        super().unlink(path)
        self._emit("delete", path)
