"""Workload generation: the paper's traces, synthesized deterministically.

Section IV-A's four traces:

- **append write** — 40 appends of ~800 KB, 15 s apart, file grows 0→32 MB.
- **random write** — 40 writes of 1010 bytes into a preloaded 20 MB file.
- **Word trace** — 61 transactional saves of a document growing
  12.1→16.7 MB (the rename-dance of Figure 3).
- **WeChat trace** — 373 journaled SQLite modifications of a chat database
  growing 131→137 MB.

Real traces are not redistributable; these synthesizers match the published
statistics (file sizes, op counts, op sequences, update volumes) — see
DESIGN.md's substitution table. All take a ``scale`` divisor so tests can
run the same shapes at a fraction of the size.
"""

from repro.workloads.traces import Trace, TraceStats, replay
from repro.workloads.generators import append_write_trace, random_write_trace
from repro.workloads.word import word_trace
from repro.workloads.wechat import wechat_trace
from repro.workloads.gedit import gedit_trace
from repro.workloads.filebench import (
    FilebenchOp,
    fileserver_ops,
    varmail_ops,
    webserver_ops,
)

__all__ = [
    "Trace",
    "TraceStats",
    "replay",
    "append_write_trace",
    "random_write_trace",
    "word_trace",
    "wechat_trace",
    "gedit_trace",
    "FilebenchOp",
    "fileserver_ops",
    "varmail_ops",
    "webserver_ops",
]
