"""filebench-style microbenchmark op streams (paper Table III).

Three canonical personalities with their standard mixes:

- **fileserver** — metadata- and write-heavy: create/write whole files,
  append, whole-file read, delete. This is the workload that fills the
  Sync Queue fastest ("Sync Queue becomes full very quickly").
- **varmail** — mail-spool: many small files, create-write-fsync-read-
  delete cycles; latencies dominated by (simulated) disk seeks.
- **webserver** — read-dominated: whole-file reads plus a small append to
  a shared log file; barely touches the write path, which is why FUSE and
  DeltaCFS tie in Table III.

The streams are pure op sequences; :mod:`repro.harness.microbench` runs
them through a file-system stack under a latency model to produce the MB/s
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.rng import DeterministicRandom


@dataclass(frozen=True)
class FilebenchOp:
    """One microbenchmark operation.

    ``kind`` is one of create/write/append/read/delete/open/close/fsync;
    ``size`` is the byte count moved (0 for metadata ops).
    """

    kind: str
    path: str
    size: int = 0
    offset: int = 0


def _file_size(rng: DeterministicRandom, mean: int) -> int:
    """File sizes around the mean (uniform half-to-double, like filebench's
    gamma-ish spread at this fidelity)."""
    return max(1, rng.randint(mean // 2, mean * 2))


def fileserver_ops(
    *,
    nfiles: int = 64,
    mean_file_size: int = 64 * 1024,
    append_size: int = 16 * 1024,
    operations: int = 400,
    seed: int = 10,
) -> List[FilebenchOp]:
    """The fileserver personality: create/append/read/delete mix."""
    rng = DeterministicRandom(seed).fork("fileserver")
    ops: List[FilebenchOp] = []
    live: List[str] = []
    counter = 0
    for i in range(nfiles // 2):
        path = f"/fset/f{counter:05d}"
        counter += 1
        size = _file_size(rng, mean_file_size)
        ops.append(FilebenchOp("create", path))
        ops.append(FilebenchOp("write", path, size=size))
        ops.append(FilebenchOp("close", path))
        live.append(path)
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.25 or not live:
            path = f"/fset/f{counter:05d}"
            counter += 1
            size = _file_size(rng, mean_file_size)
            ops.append(FilebenchOp("create", path))
            ops.append(FilebenchOp("write", path, size=size))
            ops.append(FilebenchOp("close", path))
            live.append(path)
        elif roll < 0.50:
            path = rng.choice(live)
            ops.append(FilebenchOp("append", path, size=append_size))
            ops.append(FilebenchOp("close", path))
        elif roll < 0.75:
            path = rng.choice(live)
            ops.append(FilebenchOp("read", path))
        else:
            path = rng.choice(live)
            live.remove(path)
            ops.append(FilebenchOp("delete", path))
    return ops


def varmail_ops(
    *,
    nfiles: int = 128,
    mean_file_size: int = 16 * 1024,
    operations: int = 400,
    seed: int = 11,
) -> List[FilebenchOp]:
    """The varmail personality: small-file create/fsync/read/delete."""
    rng = DeterministicRandom(seed).fork("varmail")
    ops: List[FilebenchOp] = []
    live: List[str] = []
    counter = 0
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.4 or not live:
            path = f"/mail/m{counter:05d}"
            counter += 1
            size = _file_size(rng, mean_file_size)
            ops.append(FilebenchOp("create", path))
            ops.append(FilebenchOp("write", path, size=size))
            ops.append(FilebenchOp("fsync", path))
            ops.append(FilebenchOp("close", path))
            live.append(path)
            if len(live) > nfiles:
                doomed = live.pop(0)
                ops.append(FilebenchOp("delete", doomed))
        elif roll < 0.7:
            path = rng.choice(live)
            ops.append(FilebenchOp("read", path))
        else:
            path = rng.choice(live)
            size = _file_size(rng, mean_file_size) // 2
            ops.append(FilebenchOp("append", path, size=size))
            ops.append(FilebenchOp("fsync", path))
            ops.append(FilebenchOp("close", path))
    return ops


def webserver_ops(
    *,
    nfiles: int = 128,
    mean_file_size: int = 16 * 1024,
    log_append_size: int = 8 * 1024,
    operations: int = 600,
    seed: int = 12,
) -> List[FilebenchOp]:
    """The webserver personality: whole-file reads + a log append per cycle."""
    rng = DeterministicRandom(seed).fork("webserver")
    ops: List[FilebenchOp] = []
    pages = []
    for i in range(nfiles):
        path = f"/htdocs/p{i:05d}.html"
        size = _file_size(rng, mean_file_size)
        ops.append(FilebenchOp("create", path))
        ops.append(FilebenchOp("write", path, size=size))
        ops.append(FilebenchOp("close", path))
        pages.append(path)
    ops.append(FilebenchOp("create", "/weblog"))
    for _ in range(operations):
        for _ in range(10):  # 10 reads per log append, the standard mix
            ops.append(FilebenchOp("read", rng.choice(pages)))
        ops.append(FilebenchOp("append", "/weblog", size=log_append_size))
        ops.append(FilebenchOp("close", "/weblog"))
    return ops
