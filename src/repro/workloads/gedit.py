"""The gedit save pattern (Figure 3): link-based transactional update.

    1-2 create-write tmp, 3 link f f~, 4 rename tmp f

Used by the relation-table tests and the quickstart example; the paper does
not benchmark it separately but cites it as the second transactional-update
shape (trigger rule 2: "file's name already exists").
"""

from __future__ import annotations

from repro.common.rng import DeterministicRandom
from repro.vfs.ops import CloseOp, CreateOp, LinkOp, RenameOp, UnlinkOp, WriteOp
from repro.workloads.traces import Trace, TraceStats


def gedit_trace(
    *,
    saves: int = 10,
    file_size: int = 256 * 1024,
    edit_size: int = 2048,
    save_interval: float = 10.0,
    seed: int = 5,
    path: str = "/notes.txt",
) -> Trace:
    """A text file saved ``saves`` times via the gedit link/rename dance."""
    rng = DeterministicRandom(seed).fork("gedit")
    trace = Trace(name="gedit")
    content = rng.random_bytes(file_size)
    trace.preload[path] = content

    backup = path + "~"
    total_written = 0
    total_update = 0
    t = 0.0
    for save in range(saves):
        t += save_interval
        data = bytearray(content)
        pos = rng.randint(0, max(0, len(data) - edit_size - 1))
        data[pos : pos + edit_size] = rng.random_bytes(edit_size)
        content = bytes(data)
        total_update += edit_size

        tmp = f"/.goutputstream-{save:04d}"
        step = 0.01
        trace.ops.append(CreateOp(tmp, timestamp=t))
        trace.ops.append(WriteOp(tmp, 0, content, timestamp=t + step))
        trace.ops.append(CloseOp(tmp, timestamp=t + 2 * step))
        total_written += len(content)
        if save > 0:
            trace.ops.append(UnlinkOp(backup, timestamp=t + 3 * step))
        trace.ops.append(LinkOp(path, backup, timestamp=t + 3.5 * step))
        trace.ops.append(RenameOp(tmp, path, timestamp=t + 4 * step))
    trace.stats = TraceStats(
        op_count=len(trace.ops),
        bytes_written=total_written,
        update_bytes=total_update,
    )
    return trace
