"""The two artificial traces (paper Section IV-A).

"The two artificial traces are append write (40 append operations, each
append is around 800KB, the final size of the file is 32MB) and random
write (40 write operations to a 20MB file, each write is 1010 bytes)
respectively, the interval of the writes are 15 sec."
"""

from __future__ import annotations

from repro.common.rng import DeterministicRandom
from repro.vfs.ops import CloseOp, CreateOp, WriteOp
from repro.workloads.traces import Trace, TraceStats


def append_write_trace(
    *,
    scale: int = 1,
    appends: int = 40,
    append_size: int = 800 * 1024,
    interval: float = 15.0,
    seed: int = 1,
    path: str = "/append.dat",
) -> Trace:
    """The append-write trace: the file grows from zero, one append a tick.

    ``scale`` divides the append size (op count and timing are preserved so
    sync scheduling behaves identically at any scale).
    """
    rng = DeterministicRandom(seed).fork("append")
    size = max(1, append_size // scale)
    trace = Trace(name="append_write")
    trace.ops.append(CreateOp(path, timestamp=0.0))
    offset = 0
    for i in range(appends):
        t = (i + 1) * interval
        data = rng.random_bytes(size)
        trace.ops.append(WriteOp(path, offset, data, timestamp=t))
        trace.ops.append(CloseOp(path, timestamp=t))
        offset += len(data)
    trace.stats = TraceStats(
        op_count=len(trace.ops), bytes_written=offset, update_bytes=offset
    )
    return trace


def random_write_trace(
    *,
    scale: int = 1,
    writes: int = 40,
    write_size: int = 1010,
    file_size: int = 20 * 1024 * 1024,
    interval: float = 15.0,
    seed: int = 2,
    path: str = "/random.dat",
) -> Trace:
    """The random-write trace: small writes into a preloaded 20 MB file.

    The file is preloaded (already synced) so the measured traffic is pure
    update cost — the paper's Figure 8(b) regime where Dropbox's 4 KB block
    granularity makes it upload ~4× the logical update.
    """
    rng = DeterministicRandom(seed).fork("random")
    fsize = max(write_size + 1, file_size // scale)
    trace = Trace(name="random_write")
    trace.preload[path] = rng.random_bytes(fsize)
    total = 0
    for i in range(writes):
        t = (i + 1) * interval
        offset = rng.randint(0, fsize - write_size - 1)
        data = rng.random_bytes(write_size)
        trace.ops.append(WriteOp(path, offset, data, timestamp=t))
        trace.ops.append(CloseOp(path, timestamp=t))
        total += write_size
    trace.stats = TraceStats(
        op_count=len(trace.ops), bytes_written=total, update_bytes=total
    )
    return trace
