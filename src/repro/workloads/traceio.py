"""Trace (de)serialization.

The paper publishes its evaluation traces alongside the prototype; this
module provides the equivalent: a compact, versioned binary format for
operation streams (including write payloads), so captured or synthesized
traces can be stored, shared, and replayed byte-identically.

Format: an 8-byte magic+version header, a JSON metadata block (name,
stats, preload index), then one length-prefixed record per operation:

    [kind u8][timestamp f64][path len u16][path][fields...]

Payload-carrying records append ``[length u32][bytes]``.
"""

from __future__ import annotations

import io
import json
import struct
from typing import BinaryIO, Dict

from repro.vfs.ops import (
    CloseOp,
    CreateOp,
    FileOp,
    LinkOp,
    MkdirOp,
    ReadOp,
    RenameOp,
    RmdirOp,
    TruncateOp,
    UnlinkOp,
    WriteOp,
)
from repro.workloads.traces import Trace, TraceStats

_MAGIC = b"DCFSTRC1"

_KINDS = {
    CreateOp: 1,
    WriteOp: 2,
    ReadOp: 3,
    TruncateOp: 4,
    RenameOp: 5,
    LinkOp: 6,
    UnlinkOp: 7,
    CloseOp: 8,
    MkdirOp: 9,
    RmdirOp: 10,
}
_BY_KIND = {v: k for k, v in _KINDS.items()}

_HEAD = struct.Struct("<Bd")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _write_str(out: BinaryIO, text: str) -> None:
    raw = text.encode()
    out.write(_U16.pack(len(raw)))
    out.write(raw)


def _read_str(buf: BinaryIO) -> str:
    (n,) = _U16.unpack(buf.read(2))
    raw = buf.read(n)
    if len(raw) != n:
        raise ValueError("truncated string field")
    return raw.decode()


def _write_bytes(out: BinaryIO, data: bytes) -> None:
    out.write(_U32.pack(len(data)))
    out.write(data)


def _read_bytes(buf: BinaryIO) -> bytes:
    (n,) = _U32.unpack(buf.read(4))
    data = buf.read(n)
    if len(data) != n:
        raise ValueError("truncated payload")
    return data


def dump_trace(trace: Trace, out: BinaryIO) -> None:
    """Serialize ``trace`` (ops, stats, and preload content) to ``out``."""
    out.write(_MAGIC)
    meta = {
        "name": trace.name,
        "stats": {
            "op_count": trace.stats.op_count,
            "bytes_written": trace.stats.bytes_written,
            "update_bytes": trace.stats.update_bytes,
        },
        "preload_paths": sorted(trace.preload),
        "op_records": len(trace.ops),
    }
    raw_meta = json.dumps(meta).encode()
    out.write(_U32.pack(len(raw_meta)))
    out.write(raw_meta)
    for path in sorted(trace.preload):
        _write_bytes(out, trace.preload[path])
    for op in trace.ops:
        kind = _KINDS.get(type(op))
        if kind is None:
            raise TypeError(f"cannot serialize {type(op).__name__}")
        out.write(_HEAD.pack(kind, op.timestamp))
        if isinstance(op, (RenameOp, LinkOp)):
            _write_str(out, op.src)
            _write_str(out, op.dst)
        else:
            _write_str(out, op.path)
        if isinstance(op, WriteOp):
            out.write(_U64.pack(op.offset))
            _write_bytes(out, op.data)
        elif isinstance(op, ReadOp):
            out.write(_U64.pack(op.offset))
            out.write(_U64.pack(op.length))
        elif isinstance(op, TruncateOp):
            out.write(_U64.pack(op.length))


def load_trace(buf: BinaryIO) -> Trace:
    """Parse a trace written by :func:`dump_trace`.

    Raises ``ValueError`` on a bad magic or truncated stream.
    """
    try:
        return _load_trace(buf)
    except struct.error as exc:  # short read inside a record
        raise ValueError(f"truncated trace stream: {exc}") from exc


def _load_trace(buf: BinaryIO) -> Trace:
    magic = buf.read(len(_MAGIC))
    if magic != _MAGIC:
        raise ValueError(f"not a DeltaCFS trace (magic {magic!r})")
    (meta_len,) = _U32.unpack(buf.read(4))
    meta = json.loads(buf.read(meta_len).decode())

    preload: Dict[str, bytes] = {}
    for path in meta["preload_paths"]:
        preload[path] = _read_bytes(buf)

    trace = Trace(name=meta["name"], preload=preload)
    trace.stats = TraceStats(**meta["stats"])
    for _ in range(meta["op_records"]):
        head = buf.read(_HEAD.size)
        if len(head) != _HEAD.size:
            raise ValueError("truncated op stream")
        kind, timestamp = _HEAD.unpack(head)
        op_type = _BY_KIND.get(kind)
        if op_type is None:
            raise ValueError(f"unknown op kind {kind}")
        if op_type in (RenameOp, LinkOp):
            src = _read_str(buf)
            dst = _read_str(buf)
            trace.ops.append(op_type(src, dst, timestamp=timestamp))
            continue
        path = _read_str(buf)
        if op_type is WriteOp:
            (offset,) = _U64.unpack(buf.read(8))
            data = _read_bytes(buf)
            trace.ops.append(WriteOp(path, offset, data, timestamp=timestamp))
        elif op_type is ReadOp:
            (offset,) = _U64.unpack(buf.read(8))
            (length,) = _U64.unpack(buf.read(8))
            trace.ops.append(ReadOp(path, offset, length, timestamp=timestamp))
        elif op_type is TruncateOp:
            (length,) = _U64.unpack(buf.read(8))
            trace.ops.append(TruncateOp(path, length, timestamp=timestamp))
        else:
            trace.ops.append(op_type(path, timestamp=timestamp))
    return trace


def save_trace_file(trace: Trace, path: str) -> None:
    """Write a trace to ``path``."""
    with open(path, "wb") as fh:
        dump_trace(trace, fh)


def load_trace_file(path: str) -> Trace:
    """Read a trace from ``path``."""
    with open(path, "rb") as fh:
        return load_trace(fh)


def trace_to_bytes(trace: Trace) -> bytes:
    """Serialize to an in-memory buffer."""
    out = io.BytesIO()
    dump_trace(trace, out)
    return out.getvalue()


def trace_from_bytes(raw: bytes) -> Trace:
    """Deserialize from an in-memory buffer."""
    return load_trace(io.BytesIO(raw))
