"""Trace container and replay driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.clock import VirtualClock
from repro.vfs.filesystem import FileSystemAPI
from repro.vfs.ops import (
    CloseOp,
    CreateOp,
    FileOp,
    LinkOp,
    MkdirOp,
    ReadOp,
    RenameOp,
    RmdirOp,
    TruncateOp,
    UnlinkOp,
    WriteOp,
)


@dataclass
class TraceStats:
    """Logical characteristics of a trace (for TUE and sanity checks)."""

    op_count: int = 0
    bytes_written: int = 0
    update_bytes: int = 0  # logical new data (the TUE denominator)


@dataclass
class Trace:
    """A replayable operation stream.

    Attributes:
        name: identifier used in benchmark output.
        ops: timestamped operations, in order.
        preload: files that exist (and are already synced) before the trace
            starts — their upload is *not* part of the measured run, mirroring
            the paper's setup where the sync folder is seeded first.
        stats: logical update statistics.
    """

    name: str
    ops: List[FileOp] = field(default_factory=list)
    preload: Dict[str, bytes] = field(default_factory=dict)
    stats: TraceStats = field(default_factory=TraceStats)

    @property
    def duration(self) -> float:
        return self.ops[-1].timestamp if self.ops else 0.0


def apply_op(fs: FileSystemAPI, op: FileOp) -> None:
    """Apply one trace operation to a file system layer."""
    if isinstance(op, CreateOp):
        fs.create(op.path)
    elif isinstance(op, WriteOp):
        fs.write(op.path, op.offset, op.data)
    elif isinstance(op, ReadOp):
        fs.read(op.path, op.offset, op.length)
    elif isinstance(op, TruncateOp):
        fs.truncate(op.path, op.length)
    elif isinstance(op, RenameOp):
        fs.rename(op.src, op.dst)
    elif isinstance(op, LinkOp):
        fs.link(op.src, op.dst)
    elif isinstance(op, UnlinkOp):
        fs.unlink(op.path)
    elif isinstance(op, CloseOp):
        fs.close(op.path)
    elif isinstance(op, MkdirOp):
        fs.mkdir(op.path)
    elif isinstance(op, RmdirOp):
        fs.rmdir(op.path)
    else:
        raise TypeError(f"cannot replay {type(op).__name__}")


def replay(
    trace: Trace,
    fs: FileSystemAPI,
    clock: VirtualClock,
    *,
    pump: Optional[Callable[[float], object]] = None,
    pump_interval: float = 1.0,
) -> None:
    """Replay a trace against a file system layer under virtual time.

    ``pump`` (the sync engine's background work) is invoked at
    ``pump_interval`` ticks while the clock advances between operations —
    exactly how the prototype's upload threads interleave with application
    IO.
    """
    for op in trace.ops:
        while op.timestamp > clock.now():
            step = min(pump_interval, op.timestamp - clock.now())
            clock.advance(step)
            if pump is not None:
                pump(clock.now())
        apply_op(fs, op)
    if pump is not None:
        pump(clock.now())
