"""The WeChat (SQLite) trace synthesizer.

Paper Section IV-A: "In the WeChat trace, the SQLite file which stores chat
history is modified 373 times, and its size changes from 131MB to 137MB."
Each modification is the journaled in-place pattern of Figure 3:

    1-2 create-write f_journal, 3 write f, 4 truncate f_journal 0

A modification writes a handful of B-tree pages: some rewritten in place
(index/interior pages scattered through the file) and some appended (new
leaf pages — the database grows). The journal receives the pre-images of
the rewritten pages first. Writes are page-aligned except the SQLite
header update, reproducing the mix that gives NFS its fetch-before-write
downloads.
"""

from __future__ import annotations

from repro.common.rng import DeterministicRandom
from repro.vfs.ops import CloseOp, CreateOp, TruncateOp, UnlinkOp, WriteOp
from repro.workloads.traces import Trace, TraceStats

_PAGE = 4096


def wechat_trace(
    *,
    scale: int = 16,
    modifications: int = 373,
    initial_size: int = 131 * 1024 * 1024,
    final_size: int = 137 * 1024 * 1024,
    interval: float = 5.0,
    seed: int = 4,
    path: str = "/chat.sqlite",
    rewrites_range: tuple = (1, 3),
) -> Trace:
    """Synthesize the WeChat SQLite trace at ``1/scale`` of paper size.

    ``rewrites_range`` bounds the pages rewritten per modification; the
    Figure 1 variant of this workload uses few modifications with many
    writes each (85 writes across 4 modifications)."""
    rng = DeterministicRandom(seed).fork("wechat")
    size0 = max(16 * _PAGE, (initial_size // scale) // _PAGE * _PAGE)
    size1 = max(size0 + modifications * _PAGE, (final_size // scale) // _PAGE * _PAGE)
    grow_pages_total = (size1 - size0) // _PAGE
    journal = path + "-journal"

    trace = Trace(name="wechat")
    trace.preload[path] = rng.random_bytes(size0)

    size = size0
    total_written = 0
    total_update = 0
    t = 0.0
    grown = 0
    for mod in range(modifications):
        t += interval
        step = 0.01
        # how many pages this message touches
        rewrite_pages = rng.randint(*rewrites_range)
        grow_pages = 1 if grown < grow_pages_total and rng.random() < (
            grow_pages_total / modifications
        ) * 1.5 else 0

        # 1-2: journal the pre-images of the pages about to change
        trace.ops.append(CreateOp(journal, timestamp=t))
        joff = 0
        for _ in range(rewrite_pages):
            pre_image = rng.random_bytes(_PAGE)
            trace.ops.append(
                WriteOp(journal, joff, pre_image, timestamp=t + step)
            )
            joff += _PAGE
            total_written += _PAGE
        # 3: in-place page rewrites, scattered through the B-tree
        for _ in range(rewrite_pages):
            page_index = rng.randint(1, size // _PAGE - 1)
            data = rng.random_bytes(_PAGE)
            trace.ops.append(
                WriteOp(path, page_index * _PAGE, data, timestamp=t + 2 * step)
            )
            total_written += _PAGE
            total_update += _PAGE
        # appended leaf pages (database growth)
        for _ in range(grow_pages):
            data = rng.random_bytes(_PAGE)
            trace.ops.append(WriteOp(path, size, data, timestamp=t + 2 * step))
            size += _PAGE
            grown += 1
            total_written += _PAGE
            total_update += _PAGE
        # header touch: a small unaligned write (change counter)
        header = rng.random_bytes(24)
        trace.ops.append(WriteOp(path, 24, header, timestamp=t + 3 * step))
        total_written += len(header)
        total_update += len(header)
        # 4: commit — truncate the journal
        trace.ops.append(TruncateOp(journal, 0, timestamp=t + 4 * step))
        trace.ops.append(CloseOp(path, timestamp=t + 4 * step))
        trace.ops.append(CloseOp(journal, timestamp=t + 4 * step))
        if mod == modifications - 1:
            trace.ops.append(UnlinkOp(journal, timestamp=t + 5 * step))
    trace.stats = TraceStats(
        op_count=len(trace.ops),
        bytes_written=total_written,
        update_bytes=total_update,
    )
    return trace
