"""The Microsoft Word trace synthesizer.

Paper Section IV-A: "The Word trace is collected when we edit and save a
Word document 61 times with its size changing from 12.1MB to 16.7MB."
Each save follows the transactional-update sequence of Figure 3:

    1 rename f t0, 2-3 create-write t1, 4 rename t1 f, 5 delete t0

The content evolution per save models a document editing session:

- a small *insertion* at an editing point (shifting everything after it —
  what defeats Dropbox's 4 MB-aligned dedup and degrades its within-unit
  rsync);
- a handful of in-place replacements (tracked-changes metadata, styles);
- growth appended near the tail (Word's incremental save area).

After the rename dance the application re-reads the document (editors
reload state; this is what triggers NFS's cache-invalidation download —
"f's content becomes stale, so its new content will be retrieved from the
server again").
"""

from __future__ import annotations

from repro.common.rng import DeterministicRandom
from repro.vfs.ops import CloseOp, CreateOp, ReadOp, RenameOp, UnlinkOp, WriteOp
from repro.workloads.traces import Trace, TraceStats

_WRITE_CHUNK = 128 * 1024  # applications write large files in buffer chunks
# Seconds between buffer flushes: a whole save completes in under a second,
# matching the paper's observation that "a file update by operating system
# usually can be done within 1 second" (the relation-timeout rationale).
_CHUNK_INTERVAL = 0.05


def _evolve(
    content: bytes,
    rng: DeterministicRandom,
    *,
    insert_size: int,
    replace_count: int,
    replace_size: int,
    growth: int,
) -> tuple[bytes, int]:
    """One editing step; returns (new_content, logical_update_bytes)."""
    data = bytearray(content)
    update = 0
    # insertion at an editing point in the latter half of the document
    # (users extend documents near the end; everything after the insertion
    # shifts, which is what defeats 4 MB-aligned deduplication)
    if insert_size > 0 and len(data) > 4:
        pos = rng.randint(len(data) // 2, len(data) - 1)
        data[pos:pos] = rng.random_bytes(insert_size)
        update += insert_size
    # scattered in-place replacements
    for _ in range(replace_count):
        if len(data) <= replace_size:
            break
        pos = rng.randint(0, len(data) - replace_size - 1)
        data[pos : pos + replace_size] = rng.random_bytes(replace_size)
        update += replace_size
    # tail growth
    if growth > 0:
        data.extend(rng.random_bytes(growth))
        update += growth
    return bytes(data), update


def word_trace(
    *,
    scale: int = 16,
    saves: int = 61,
    initial_size: int = 12_100 * 1024,
    final_size: int = 16_700 * 1024,
    save_interval: float = 20.0,
    seed: int = 3,
    path: str = "/report.docx",
) -> Trace:
    """Synthesize the Word editing trace at ``1/scale`` of paper size."""
    rng = DeterministicRandom(seed).fork("word")
    size0 = max(4096, initial_size // scale)
    size1 = max(size0 + saves, final_size // scale)
    growth_per_save = (size1 - size0) // saves
    insert_size = max(64, 2048 // max(1, scale // 8))
    replace_size = max(64, 1536 // max(1, scale // 8))

    trace = Trace(name="word")
    content = rng.random_bytes(size0)
    trace.preload[path] = content

    total_written = 0
    total_update = 0
    t = 0.0
    for save in range(saves):
        t += save_interval
        content, update = _evolve(
            content,
            rng,
            insert_size=insert_size,
            replace_count=4,
            replace_size=replace_size,
            growth=growth_per_save,
        )
        total_update += update
        t0 = f"/~wrd{save:04d}.tmp"
        t1 = f"/~wrl{save:04d}.tmp"
        step = 0.01
        trace.ops.append(RenameOp(path, t0, timestamp=t))
        trace.ops.append(CreateOp(t1, timestamp=t + step))
        offset = 0
        write_t = t + 2 * step
        # The save takes real time: the editor flushes buffer-sized chunks
        # a few times a second. Event-triggered sync clients (Dropbox) see
        # a modification event per flush and re-scan the growing temp file
        # repeatedly — the paper's "triggered ... much more frequently than
        # our relation triggered delta encoding".
        while offset < len(content):
            chunk = content[offset : offset + _WRITE_CHUNK]
            trace.ops.append(WriteOp(t1, offset, chunk, timestamp=write_t))
            offset += len(chunk)
            total_written += len(chunk)
            write_t += _CHUNK_INTERVAL
        trace.ops.append(CloseOp(t1, timestamp=write_t + step))
        trace.ops.append(RenameOp(t1, path, timestamp=write_t + 2 * step))
        trace.ops.append(UnlinkOp(t0, timestamp=write_t + 3 * step))
        # the editor reloads the saved document
        trace.ops.append(
            ReadOp(path, 0, len(content), timestamp=write_t + 4 * step)
        )
    trace.stats = TraceStats(
        op_count=len(trace.ops),
        bytes_written=total_written,
        update_bytes=total_update,
    )
    return trace
