"""Tests for the shared watcher-client machinery."""

from repro.baselines.base import WatcherSyncClient
from repro.net.transport import Channel, NetworkModel


class RecordingClient(WatcherSyncClient):
    """Minimal concrete client that records its sync calls."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.synced = []
        self.deleted = []

    def _sync_file(self, path, now):
        self.synced.append((path, now))

    def _sync_delete(self, path, now):
        self.deleted.append((path, now))


def test_dirty_tracking_and_debounce():
    client = RecordingClient(sync_interval=5.0)
    client.fs.create("/f")
    client.fs.write("/f", 0, b"x")
    assert client.pump(now=0.0) == 1
    client.fs.write("/f", 0, b"y")
    assert client.pump(now=2.0) == 0  # inside the debounce window
    assert client.pump(now=6.0) == 1


def test_delete_clears_dirty():
    client = RecordingClient(sync_interval=0.0)
    client.fs.create("/f")
    client.fs.unlink("/f")
    client.pump(now=1.0)
    assert client.synced == []
    assert [p for p, _ in client.deleted] == ["/f"]


def test_rename_redirects_dirtiness():
    client = RecordingClient(sync_interval=0.0)
    client.fs.create("/a")
    client.fs.write("/a", 0, b"x")
    client.fs.rename("/a", "/b")
    client.pump(now=1.0)
    assert [p for p, _ in client.synced] == ["/b"]


def test_vanished_file_skipped():
    client = RecordingClient(sync_interval=0.0)
    client.fs.create("/f")
    client.fs.write("/f", 0, b"x")
    # delete beneath the event horizon (no event)
    client.fs.inner.unlink("/f")
    client.pump(now=1.0)
    assert client.synced == []


def test_idle_link_gating():
    channel = Channel(model=NetworkModel(bandwidth_up=10))
    client = RecordingClient(
        sync_interval=0.0, wait_for_idle_link=True, channel=channel
    )
    client.fs.create("/f")
    client.fs.write("/f", 0, b"x")
    from repro.net.messages import UploadFull

    channel.upload(UploadFull(path="/busy", data=b"z" * 1000), now=0.0)
    assert client.pump(now=1.0) == 0  # uplink busy for 100s
    assert client.pump(now=200.0) == 1


def test_flush_overrides_everything():
    channel = Channel(model=NetworkModel(bandwidth_up=10))
    client = RecordingClient(
        sync_interval=100.0, wait_for_idle_link=True, channel=channel
    )
    client.fs.create("/f")
    client.fs.write("/f", 0, b"x")
    from repro.net.messages import UploadFull

    channel.upload(UploadFull(path="/busy", data=b"z" * 1000), now=0.0)
    assert client.flush(now=0.5) == 1
    # gating restored afterwards
    assert client.wait_for_idle_link is True
    assert client.sync_interval == 100.0


def test_sync_rounds_counter():
    client = RecordingClient(sync_interval=0.0)
    for i in range(3):
        client.fs.create(f"/f{i}")
    client.pump(now=1.0)
    assert client.sync_rounds == 3
