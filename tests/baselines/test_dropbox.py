"""Tests for the Dropbox-like baseline."""

from repro.common.rng import DeterministicRandom
from repro.cost.meter import CostMeter
from repro.net.transport import Channel
from repro.server.cloud import CloudServer
from repro.baselines.dropbox import DropboxClient


def build(dedup_size=64 * 1024, block_size=4096):
    server = CloudServer()
    meter = CostMeter()
    channel = Channel(client_meter=meter)
    client = DropboxClient(
        server=server,
        channel=channel,
        meter=meter,
        sync_interval=0.0,
        dedup_size=dedup_size,
        block_size=block_size,
    )
    return client, server, channel, meter


def test_first_sync_uploads_content():
    client, server, channel, _ = build()
    data = DeterministicRandom(1).random_bytes(100_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    assert server.store.get("/f").content == data
    assert channel.stats.up_bytes > 50_000  # compressed full upload


def test_unchanged_units_dedup():
    client, server, channel, _ = build()
    data = DeterministicRandom(2).random_bytes(256 * 1024)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    before = channel.stats.up_bytes
    # touch one byte: only the containing 64KB unit re-ships (as a delta)
    client.fs.write("/f", 100_000, b"\x00")
    client.pump(now=2.0)
    uploaded = channel.stats.up_bytes - before
    assert uploaded < 16 * 1024  # a delta inside one unit, not 256KB


def test_rsync_confined_to_units():
    # an edit in unit 0 must not cause unit 1..3 traffic
    client, server, channel, _ = build()
    data = DeterministicRandom(3).random_bytes(256 * 1024)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    before = channel.stats.up_bytes
    client.fs.write("/f", 10, b"edit!")
    client.pump(now=2.0)
    delta_bytes = channel.stats.up_bytes - before
    assert delta_bytes < 64 * 1024


def test_inotify_blindness_costs_scans():
    # every sync round re-reads the whole file: the paper's IO observation
    client, server, channel, meter = build()
    data = DeterministicRandom(4).random_bytes(500_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    for i in range(5):
        client.fs.write("/f", 0, b"x")
        client.pump(now=2.0 + i)
    assert meter.bytes_by_category["scan_read"] >= 6 * len(data)


def test_strong_checksums_paid_every_round():
    client, server, channel, meter = build()
    data = DeterministicRandom(5).random_bytes(200_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    before = meter.by_category.get("strong_checksum", 0.0)
    client.fs.write("/f", 0, b"y")
    client.pump(now=2.0)
    assert meter.by_category["strong_checksum"] > before


def test_delete_propagates():
    client, server, channel, _ = build()
    client.fs.write_file("/f", b"data")
    client.pump(now=1.0)
    client.fs.unlink("/f")
    client.pump(now=2.0)
    assert not server.store.exists("/f")


def test_rename_moves_server_state():
    client, server, channel, _ = build()
    client.fs.write_file("/a", b"data")
    client.pump(now=1.0)
    client.fs.rename("/a", "/b")
    client.pump(now=2.0)
    assert server.store.exists("/b")
    assert not server.store.exists("/a")


def test_compression_shrinks_payload():
    client, server, channel, _ = build()
    data = DeterministicRandom(6).random_bytes(128 * 1024)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    assert channel.stats.up_bytes < len(data)  # 0.8 compression model
