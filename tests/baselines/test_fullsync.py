"""Tests for the full-upload (Dropsync) baseline."""

from repro.baselines.fullsync import FullUploadClient
from repro.common.rng import DeterministicRandom
from repro.cost.meter import CostMeter
from repro.net.transport import Channel, NetworkModel
from repro.server.cloud import CloudServer


def build(bandwidth=1e9, wait_for_idle=True):
    server = CloudServer()
    meter = CostMeter()
    channel = Channel(
        model=NetworkModel(bandwidth_up=bandwidth), client_meter=meter
    )
    client = FullUploadClient(
        server=server,
        channel=channel,
        meter=meter,
        sync_interval=0.0,
        wait_for_idle_link=wait_for_idle,
    )
    return client, server, channel, meter


def test_whole_file_per_change():
    client, server, channel, _ = build()
    data = DeterministicRandom(1).random_bytes(100_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    before = channel.stats.up_bytes
    client.fs.write("/f", 0, b"\x01")  # one byte changed...
    client.pump(now=2.0)
    assert channel.stats.up_bytes - before >= len(data)  # ...whole file sent


def test_slow_link_batches_updates():
    # the paper's mobile observation: the saturated uplink skips rounds,
    # involuntarily batching several edits into one upload
    client, server, channel, _ = build(bandwidth=1_000)  # 1KB/s
    data = DeterministicRandom(2).random_bytes(50_000)
    client.fs.write_file("/f", data)
    client.pump(now=0.0)
    assert client.uploads == 1
    for i in range(20):
        client.fs.write("/f", i, b"\xaa")
        client.pump(now=float(i))  # link still busy: all skipped
    assert client.uploads == 1
    client.pump(now=1e6)  # link finally idle
    assert client.uploads == 2  # 20 edits collapsed into one round


def test_flush_overrides_gating():
    client, server, channel, _ = build(bandwidth=1_000)
    client.fs.write_file("/f", b"x" * 10_000)
    client.pump(now=0.0)
    client.fs.write("/f", 0, b"y")
    client.flush(now=0.1)
    assert server.store.get("/f").content[0:1] == b"y"


def test_scan_cost_per_round():
    client, server, channel, meter = build()
    data = DeterministicRandom(3).random_bytes(80_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    client.fs.write("/f", 0, b"z")
    client.pump(now=2.0)
    assert meter.bytes_by_category["scan_read"] >= 2 * len(data)


def test_delete_and_rename_propagate():
    client, server, channel, _ = build()
    client.fs.write_file("/a", b"data")
    client.pump(now=1.0)
    client.fs.rename("/a", "/b")
    client.pump(now=2.0)
    assert server.store.exists("/b") and not server.store.exists("/a")
    client.fs.unlink("/b")
    client.pump(now=3.0)
    assert not server.store.exists("/b")
