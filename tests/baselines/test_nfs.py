"""Tests for the NFSv4-like baseline."""

from repro.baselines.nfs import NFSClient
from repro.common.rng import DeterministicRandom
from repro.net.transport import Channel, NetworkModel
from repro.server.cloud import CloudServer
from repro.vfs.filesystem import MemoryFileSystem

PAGE = 4096


def build():
    server = CloudServer()
    channel = Channel(model=NetworkModel(encrypted=False))
    client = NFSClient(
        MemoryFileSystem(), server=server, channel=channel, page_size=PAGE
    )
    return client, server, channel


def test_writes_are_write_through():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"hello")
    assert server.file_content("/f") == b"hello"


def test_every_write_crosses_the_wire():
    client, server, channel = build()
    client.create("/f")
    for i in range(10):
        client.write("/f", i * 100, b"x" * 100)
    assert channel.stats.up_bytes >= 1000


def test_aligned_write_no_fetch():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"\x00" * PAGE * 4)
    down_before = channel.stats.down_bytes
    client.write("/f", PAGE, b"\x01" * PAGE)  # full page overwrite
    assert channel.stats.down_bytes == down_before


def test_fetch_before_write_on_unaligned():
    # Section IV-C: "the data block is first retrieved from the server"
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"\x00" * PAGE * 4)
    # simulate a fresh client cache (e.g. after memory pressure)
    client._cached_pages["/f"] = set()
    down_before = channel.stats.down_bytes
    client.write("/f", PAGE + 10, b"partial")
    assert channel.stats.down_bytes > down_before


def test_append_beyond_server_end_no_fetch():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"x" * 100)
    client._cached_pages["/f"] = set()
    down_before = channel.stats.down_bytes
    client.write("/f", PAGE * 10, b"appended far beyond")  # sparse append
    assert channel.stats.down_bytes == down_before


def test_rename_invalidates_cache():
    # the Word pathology: after rename tmp->f, reading f re-downloads it
    client, server, channel = build()
    data = DeterministicRandom(1).random_bytes(PAGE * 8)
    client.create("/tmp1")
    client.write("/tmp1", 0, data)
    client.rename("/tmp1", "/f")
    down_before = channel.stats.down_bytes
    assert client.read("/f", 0, None) == data
    downloaded = channel.stats.down_bytes - down_before
    assert downloaded >= len(data)  # full re-fetch despite identical bytes


def test_cached_read_free():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"cached!")
    down_before = channel.stats.down_bytes
    assert client.read("/f", 0, None) == b"cached!"  # writes populated cache
    assert channel.stats.down_bytes == down_before


def test_truncate_and_unlink_propagate():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"0123456789")
    client.truncate("/f", 4)
    assert server.file_content("/f") == b"0123"
    client.unlink("/f")
    assert not server.store.exists("/f")


def test_link_copies_server_side():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"shared")
    client.link("/f", "/g")
    assert server.file_content("/g") == b"shared"


def test_traffic_not_encrypted():
    client, server, channel = build()
    client.create("/f")
    client.write("/f", 0, b"x" * 10000)
    assert channel.client_meter.by_category.get("encrypt", 0) == 0
