"""Tests for the Seafile-like (CDC) baseline."""

from repro.baselines.seafile import SeafileClient
from repro.common.rng import DeterministicRandom
from repro.cost.meter import CostMeter
from repro.net.transport import Channel
from repro.server.cloud import CloudServer

CHUNK = 32 * 1024


def build():
    server = CloudServer()
    meter = CostMeter()
    channel = Channel(client_meter=meter)
    client = SeafileClient(
        server=server,
        channel=channel,
        meter=meter,
        sync_interval=0.0,
        chunk_size=CHUNK,
    )
    return client, server, channel, meter


def test_first_sync_ships_all_chunks():
    client, server, channel, _ = build()
    data = DeterministicRandom(1).random_bytes(200_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    assert server.store.get("/f").content == data
    assert channel.stats.up_bytes > len(data)


def test_one_byte_edit_ships_whole_chunk():
    # the paper's criticism: large chunks make small edits expensive
    client, server, channel, _ = build()
    data = DeterministicRandom(2).random_bytes(300_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    before = channel.stats.up_bytes
    client.fs.write("/f", 150_000, b"\x01")
    client.pump(now=2.0)
    uploaded = channel.stats.up_bytes - before
    assert uploaded > CHUNK // 4  # at least a chunk-scale body
    assert uploaded < len(data) // 2  # but not the whole file


def test_unchanged_chunks_skip_hash():
    # "only needs to compute the checksums of changed blocks"
    client, server, channel, meter = build()
    data = DeterministicRandom(3).random_bytes(300_000)
    client.fs.write_file("/f", data)
    client.pump(now=1.0)
    first_hash = meter.bytes_by_category["dedup_hash"]
    client.fs.write("/f", 10, b"z")
    client.pump(now=2.0)
    second_hash = meter.bytes_by_category["dedup_hash"] - first_hash
    assert second_hash < len(data) // 2
    assert meter.bytes_by_category["bitwise_compare"] > 0


def test_identical_content_different_file_dedups():
    client, server, channel, _ = build()
    data = DeterministicRandom(4).random_bytes(100_000)
    client.fs.write_file("/a", data)
    client.pump(now=1.0)
    before = channel.stats.up_bytes
    client.fs.write_file("/b", data)
    client.pump(now=2.0)
    # same chunks: only fingerprints travel
    assert channel.stats.up_bytes - before < 5000


def test_delete_and_rename():
    client, server, channel, _ = build()
    client.fs.write_file("/a", b"data")
    client.pump(now=1.0)
    client.fs.rename("/a", "/b")
    client.pump(now=2.0)
    client.fs.write_file("/c", b"x")
    client.fs.unlink("/c")
    client.pump(now=3.0)
    assert server.store.exists("/b")
    assert not server.store.exists("/a")
    assert not server.store.exists("/c")


def test_server_does_no_checksum_work():
    client, server, channel, _ = build()
    client.fs.write_file("/f", DeterministicRandom(5).random_bytes(100_000))
    client.pump(now=1.0)
    categories = server.meter.by_category
    assert categories.get("strong_checksum", 0) == 0
    assert categories.get("dedup_hash", 0) == 0
    assert categories.get("cdc_chunking", 0) == 0
