"""The content-hash analysis cache behind ``repro check --cache``.

The contract: a cache hit must be indistinguishable from a fresh run
(raw findings are config-independent, so filtering happens after the
cache), a changed file must miss on its digest, a changed engine must
invalidate everything via the catalog fingerprint, and a corrupt cache
file must degrade to empty rather than crash or poison results.
"""

import json

from repro.check import AnalysisCache, catalog_fingerprint
from repro.check.linter import lint_paths


BAD = "import time\nT = time.time()\n"
GOOD = "X = 1\n"


def run(paths, cache):
    return lint_paths([str(p) for p in paths], cache=cache)


class TestCacheRoundTrip:
    def test_second_run_hits_and_agrees(self, tmp_path):
        planted = tmp_path / "bad.py"
        planted.write_text(BAD)
        cache = AnalysisCache()
        first = run([planted], cache)
        assert cache.stats.file_misses == 1
        assert cache.stats.semantic_misses == 1

        cache2 = AnalysisCache(
            catalog=cache.catalog, files=dict(cache.files),
            semantic=dict(cache.semantic),
        )
        second = run([planted], cache2)
        assert cache2.stats.file_hits == 1
        assert cache2.stats.file_misses == 0
        assert cache2.stats.semantic_hits == 1
        # Byte-for-byte the same findings either way.
        assert [f.__dict__ for f in first] == [f.__dict__ for f in second]
        assert any(f.rule == "DET001" for f in second)

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        a, b = tmp_path / "a.py", tmp_path / "b.py"
        a.write_text(BAD)
        b.write_text(GOOD)
        cache = AnalysisCache()
        run([a, b], cache)

        a.write_text(GOOD)  # fixed: the old digest must not resurrect DET001
        cache.stats = type(cache.stats)()
        findings = run([a, b], cache)
        assert cache.stats.file_misses == 1  # a.py re-analyzed
        assert cache.stats.file_hits == 1   # b.py served from cache
        assert not any(f.rule == "DET001" for f in findings)

    def test_semantic_layer_keyed_on_project_fingerprint(self, tmp_path):
        a, b = tmp_path / "a.py", tmp_path / "b.py"
        a.write_text(GOOD)
        b.write_text(GOOD)
        cache = AnalysisCache()
        run([a, b], cache)
        assert cache.stats.semantic_misses == 1

        # Any file changing changes the project fingerprint: the
        # semantic entry must miss even though b.py itself still hits.
        b.write_text("Y = 2\n")
        cache.stats = type(cache.stats)()
        run([a, b], cache)
        assert cache.stats.semantic_misses == 1
        assert cache.stats.file_hits == 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        planted = tmp_path / "bad.py"
        planted.write_text(BAD)
        cache_file = tmp_path / "cache.json"
        cache = AnalysisCache()
        run([planted], cache)
        cache.save(str(cache_file))
        assert cache_file.exists()

        loaded = AnalysisCache.load(str(cache_file))
        findings = run([planted], loaded)
        assert loaded.stats.file_hits == 1
        assert any(f.rule == "DET001" for f in findings)

    def test_clean_cache_skips_the_write(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        AnalysisCache().save(str(cache_file))
        assert not cache_file.exists()

    def test_catalog_change_drops_everything(self, tmp_path):
        planted = tmp_path / "bad.py"
        planted.write_text(BAD)
        cache_file = tmp_path / "cache.json"
        cache = AnalysisCache()
        run([planted], cache)
        cache.save(str(cache_file))

        # Simulate a rule-engine upgrade by rewriting the fingerprint.
        data = json.loads(cache_file.read_text())
        data["catalog"] = "sha256:not-this-engine"
        cache_file.write_text(json.dumps(data))
        stale = AnalysisCache.load(str(cache_file))
        assert stale.files == {} and stale.semantic == {}
        assert stale.catalog == catalog_fingerprint()

    def test_corrupt_cache_degrades_to_empty(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        assert AnalysisCache.load(str(cache_file)).files == {}
        cache_file.write_text(json.dumps(["wrong", "shape"]))
        assert AnalysisCache.load(str(cache_file)).files == {}

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        planted = tmp_path / "bad.py"
        planted.write_text(BAD)
        cache = AnalysisCache()
        run([planted], cache)
        (entry,) = cache.files.values()
        entry["findings"] = [{"not": "a finding"}]
        cache.stats = type(cache.stats)()
        findings = run([planted], cache)
        assert cache.stats.file_misses == 1
        assert any(f.rule == "DET001" for f in findings)
