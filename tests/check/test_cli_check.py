"""The `repro check` CLI surface: lint + trace verification + exit codes."""

import json

from repro.cli import main
from repro.faults.network import NetworkFaults
from repro.harness.runner import run_trace
from repro.kvstore.kv import MemoryKV
from repro.net.reliable import RetryPolicy
from repro.obs import Observability
from repro.obs.export import snapshot_record
from repro.workloads import gedit_trace


def write_lossy_trace(path, saves=3):
    obs = Observability()
    run_trace(
        "deltacfs",
        gedit_trace(saves=saves),
        obs=obs,
        faults=NetworkFaults(drop_prob=0.2, dup_prob=0.1),
        retry=RetryPolicy(),
        fault_seed=5,
        journal_kv=MemoryKV(),
    )
    lines = obs.tracer.to_jsonl().splitlines()
    lines.append(json.dumps(snapshot_record(obs.metrics, obs.clock.now())))
    path.write_text("\n".join(lines) + "\n")


class TestCheckCommand:
    def test_lint_of_the_installed_tree_is_green(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_planted_file_fails(self, tmp_path, capsys):
        planted = tmp_path / "bad.py"
        planted.write_text("import time\nT = time.time()\n")
        assert main(["check", str(planted)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_traces_verified(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        write_lossy_trace(trace)
        assert main(["check", "--no-lint", "--traces", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "ok   INV-EXACTLY-ONCE" in out
        assert "ok   INV-JOURNAL-ORDER" in out
        assert "FAIL" not in out

    def test_violated_trace_fails_with_pointed_report(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        records = [
            {"type": "event", "name": "server.envelope", "ts": 0.0,
             "parent": None,
             "attrs": {"client": 1, "msg_id": 1, "duplicate": False}},
            {"type": "event", "name": "server.envelope", "ts": 1.0,
             "parent": None,
             "attrs": {"client": 1, "msg_id": 1, "duplicate": False}},
        ]
        trace.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert main(["check", "--no-lint", "--traces", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "FAIL INV-EXACTLY-ONCE" in out
        assert "msg_id 1" in out

    def test_json_output(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        write_lossy_trace(trace)
        assert main(["check", "--json", "--traces", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        statuses = {
            r["id"]: r["status"]
            for r in payload["invariants"][str(trace)]
        }
        assert statuses["INV-EXACTLY-ONCE"] == "ok"
        assert len(statuses) == 8

    def test_missing_trace_is_usage_error(self, tmp_path):
        assert main(
            ["check", "--no-lint", "--traces", str(tmp_path / "absent.jsonl")]
        ) == 2
